"""Serving throughput — sequential vs batched vs sharded QPS.

The acceptance bar for the serving subsystem: on a synthetic mixed
workload (n >= 20,000 points, 200 queries; tight dominant cluster ->
linear-bound queries, mid clusters -> collision-heavy LSH queries,
uniform background -> easy queries) the batched/sharded engine must
reach >= 3x the QPS of the seed's sequential single-query loop while
returning bit-identical results.

Emits ``BENCH_throughput.json`` at the repo root so later PRs (async
serving, multi-backend, persistence) can track the perf trajectory.

Environment knobs: ``REPRO_BENCH_THROUGHPUT_N`` (default 20,000),
``REPRO_BENCH_QUERIES`` (default 200 here), ``REPRO_BENCH_SHARDS``
(default 4), ``REPRO_BENCH_REPEATS`` (default 2; best-of timing).
The 3x bar is calibrated for the default scale — shrinking the
workload shrinks the fixed per-query overheads batching amortises,
so reduced runs may land below it (n=8,000 measures ~3.0x).

Runs under pytest (``pytest benchmarks/bench_throughput.py``) or
directly (``PYTHONPATH=src python benchmarks/bench_throughput.py``).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core import CostModel
from repro.evaluation import (
    format_throughput,
    mixed_workload,
    throughput_experiment,
    write_throughput_json,
)

THROUGHPUT_N = int(os.environ.get("REPRO_BENCH_THROUGHPUT_N", "20000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "200"))
NUM_SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "4"))
NUM_TABLES = int(os.environ.get("REPRO_BENCH_TABLES", "50"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"

MIN_SPEEDUP = 3.0


def _run_throughput():
    points, queries, radius = mixed_workload(
        THROUGHPUT_N, num_queries=NUM_QUERIES, seed=0
    )
    rows = throughput_experiment(
        points,
        queries,
        metric="l2",
        radius=radius,
        num_tables=NUM_TABLES,
        num_shards=NUM_SHARDS,
        cost_model=CostModel.from_ratio(6.0),
        repeats=REPEATS,
        seed=0,
    )
    title = (
        f"Serving throughput: n = {THROUGHPUT_N}, {NUM_QUERIES} queries, "
        f"K = {NUM_SHARDS}, L = {NUM_TABLES}, r = {radius:.3g}"
    )
    print()
    print(f"=== {title} ===")
    print(format_throughput(rows))
    write_throughput_json(
        rows,
        str(ARTIFACT),
        meta={
            "n": THROUGHPUT_N,
            "num_shards": NUM_SHARDS,
            "num_tables": NUM_TABLES,
            "radius": radius,
            "seed": 0,
        },
    )
    print(f"wrote {ARTIFACT}")
    return rows


try:
    import pytest
except ImportError:  # direct execution without pytest installed
    pytest = None


if pytest is not None:

    @pytest.fixture(scope="module")
    def throughput_rows():
        return _run_throughput()

    def test_batched_matches_sequential_exactly(throughput_rows):
        """Bit-identical ids and distances: batching must not change answers."""
        by_mode = {row.mode: row for row in throughput_rows}
        assert by_mode["batched"].matches
        assert by_mode["sharded"].matches  # batch path == its own per-query loop

    def test_workload_is_mixed(throughput_rows):
        """Both strategies must actually run, else the comparison is vacuous."""
        seq = next(row for row in throughput_rows if row.mode == "sequential")
        assert 0.05 <= seq.linear_fraction <= 0.95, seq

    def test_serving_speedup(throughput_rows):
        """Acceptance: batched/sharded serving >= 3x the sequential loop."""
        by_mode = {row.mode: row for row in throughput_rows}
        best = max(by_mode["batched"].qps, by_mode["sharded"].qps)
        assert best >= MIN_SPEEDUP * by_mode["sequential"].qps, by_mode


if __name__ == "__main__":
    rows = _run_throughput()
    by_mode = {row.mode: row for row in rows}
    best = max(by_mode["batched"].qps, by_mode["sharded"].qps)
    assert by_mode["batched"].matches and by_mode["sharded"].matches
    assert best >= MIN_SPEEDUP * by_mode["sequential"].qps, by_mode
    print(f"speedup {best / by_mode['sequential'].qps:.2f}x >= {MIN_SPEEDUP}x: OK")
