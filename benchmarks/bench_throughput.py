"""Serving throughput — sequential vs batched vs frozen vs sharded QPS.

The acceptance bars for the serving subsystem, on a synthetic mixed
workload (n >= 20,000 points, 200 queries; tight dominant cluster ->
linear-bound queries, mid clusters -> collision-heavy LSH queries,
uniform background -> easy queries), all while returning bit-identical
results to the sequential single-query loop:

* the batched/sharded engine must reach >= 3x sequential QPS;
* the ``frozen_batched`` engine — the same batch over the index
  compacted into the frozen CSR layout (``LSHIndex.freeze()``) — must
  reach >= 5x sequential QPS, so a regression in the contiguous-array
  hot path fails loudly;
* the ``workers`` mode — the same shards frozen, persisted, and served
  by a process pool mmap'ing the saved arrays — must stay bit-identical
  to the thread path *always*, and on hosts with more than one core
  must beat the thread-pool ``sharded`` mode by >= 1.5x QPS (on 1-core
  hosts the speedup bar is skipped: a process pool cannot outrun
  threads without real cores, and the mode is still recorded);
* the ``frozen_multiprobe`` mode — a multi-probe index (2 extra probed
  buckets per table) compacted into the frozen CSR layout and
  batch-served — must stay bit-identical to the multi-probe sequential
  loop (``multiprobe_sequential``) and reach >= 3x its QPS: multi-probe
  examines ``1 + P`` buckets per table, so the vectorised
  probe-sequence lookups have proportionally more per-bucket Python
  overhead to delete;
* the ``adaptive_budget`` mode — the same multi-probe frozen spec under
  a per-query candidate budget — must answer with an id-subset of the
  fixed-fan-out ``adaptive_fixed`` row, examine at most 0.7x its
  candidates, and hold recall against the brute-force radius ground
  truth within 0.005 of the fixed row: the estimates-driven policy
  must genuinely trade examined candidates for nothing at this scale.

Emits ``BENCH_throughput.json`` at the repo root so later PRs (async
serving, multi-backend, persistence) can track the perf trajectory.

Environment knobs: ``REPRO_BENCH_THROUGHPUT_N`` (default 20,000),
``REPRO_BENCH_QUERIES`` (default 200 here), ``REPRO_BENCH_SHARDS``
(default 4), ``REPRO_BENCH_REPEATS`` (default 3; best-of timing),
``REPRO_BENCH_WORKERS`` (pool width; default min(shards, cpus)),
``REPRO_BENCH_PROBES`` (multi-probe extra buckets; default 2),
``REPRO_BENCH_ADAPTIVE_TARGET`` (adaptive candidate budget; default
``max(32, n // 100)``).
The bars are calibrated for the default scale — shrinking the
workload shrinks the fixed per-query overheads batching amortises,
so reduced runs may land below them.

Runs under pytest (``pytest benchmarks/bench_throughput.py``) or
directly (``PYTHONPATH=src python benchmarks/bench_throughput.py``).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core import CostModel
from repro.evaluation import (
    format_throughput,
    mixed_workload,
    throughput_experiment,
    write_throughput_json,
)

THROUGHPUT_N = int(os.environ.get("REPRO_BENCH_THROUGHPUT_N", "20000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "200"))
NUM_SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "4"))
NUM_TABLES = int(os.environ.get("REPRO_BENCH_TABLES", "50"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
NUM_WORKERS = (
    int(os.environ["REPRO_BENCH_WORKERS"])
    if "REPRO_BENCH_WORKERS" in os.environ
    else None
)
NUM_PROBES = int(os.environ.get("REPRO_BENCH_PROBES", "2"))
ADAPTIVE_TARGET = (
    int(os.environ["REPRO_BENCH_ADAPTIVE_TARGET"])
    if "REPRO_BENCH_ADAPTIVE_TARGET" in os.environ
    else None
)
ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"

MIN_SPEEDUP = 3.0
MIN_FROZEN_SPEEDUP = 5.0
#: workers-over-sharded bar; only enforced where the pool has >1 core.
MIN_WORKERS_SPEEDUP = 1.5
#: frozen_multiprobe over its own sequential loop (multiprobe_sequential).
MIN_MULTIPROBE_SPEEDUP = 3.0
#: adaptive_budget candidates over adaptive_fixed candidates (at most).
MAX_ADAPTIVE_CANDIDATES = 0.7
#: adaptive_budget recall may trail adaptive_fixed by at most this much.
MAX_ADAPTIVE_RECALL_GAP = 0.005
#: enabled-tracing QPS tax target on frozen_batched (recorded in the
#: artifact; asserted loosely — wall-clock noise on shared CI hosts
#: makes a tight 5% gate flaky, so the hard bar is 3x the target).
TRACING_OVERHEAD_TARGET = 0.05
MAX_TRACING_OVERHEAD = 0.15
MULTI_CORE = (os.cpu_count() or 1) > 1


def _tracing_overhead(by_mode) -> float:
    """Fractional QPS loss of frozen_batched_traced vs frozen_batched."""
    frozen = by_mode["frozen_batched"].qps
    traced = by_mode["frozen_batched_traced"].qps
    return 1.0 - traced / frozen if frozen else 0.0


def _run_throughput():
    points, queries, radius = mixed_workload(
        THROUGHPUT_N, num_queries=NUM_QUERIES, seed=0
    )
    rows = throughput_experiment(
        points,
        queries,
        metric="l2",
        radius=radius,
        num_tables=NUM_TABLES,
        num_shards=NUM_SHARDS,
        cost_model=CostModel.from_ratio(6.0),
        repeats=REPEATS,
        seed=0,
        include_workers=True,
        num_workers=NUM_WORKERS,
        include_multiprobe=True,
        num_probes=NUM_PROBES,
        include_adaptive=True,
        adaptive_target=ADAPTIVE_TARGET,
    )
    title = (
        f"Serving throughput: n = {THROUGHPUT_N}, {NUM_QUERIES} queries, "
        f"K = {NUM_SHARDS}, L = {NUM_TABLES}, r = {radius:.3g}"
    )
    print()
    print(f"=== {title} ===")
    print(format_throughput(rows))
    by_mode = {row.mode: row for row in rows}
    overhead = _tracing_overhead(by_mode)
    print(
        f"enabled-tracing overhead on frozen_batched: {overhead:.1%} "
        f"(target <= {TRACING_OVERHEAD_TARGET:.0%})"
    )
    write_throughput_json(
        rows,
        str(ARTIFACT),
        meta={
            "n": THROUGHPUT_N,
            "num_shards": NUM_SHARDS,
            "num_tables": NUM_TABLES,
            "radius": radius,
            "seed": 0,
            # Fractional QPS lost with stage tracing enabled on the
            # frozen batch path; the target is advisory, the artifact
            # records the measured value for the perf trajectory.
            "tracing_overhead_fraction": overhead,
            "tracing_overhead_target": TRACING_OVERHEAD_TARGET,
        },
    )
    print(f"wrote {ARTIFACT}")
    return rows


try:
    import pytest
except ImportError:  # direct execution without pytest installed
    pytest = None


if pytest is not None:

    @pytest.fixture(scope="module")
    def throughput_rows():
        return _run_throughput()

    def test_batched_matches_sequential_exactly(throughput_rows):
        """Bit-identical ids and distances: batching must not change answers."""
        by_mode = {row.mode: row for row in throughput_rows}
        assert by_mode["batched"].matches
        assert by_mode["frozen_batched"].matches  # CSR layout == dict layout
        assert by_mode["frozen_batched_traced"].matches  # tracing is timing-only
        assert by_mode["sharded"].matches  # batch path == its own per-query loop
        assert by_mode["workers"].matches  # process pool == thread path
        assert by_mode["frozen_multiprobe"].matches  # frozen probes == dict probes
        assert by_mode["adaptive_budget"].matches  # id-subset of adaptive_fixed

    def test_latency_percentiles_recorded(throughput_rows):
        """Every mode's latency pass must yield ordered, finite percentiles."""
        import math

        for row in throughput_rows:
            assert not math.isnan(row.p50), row
            assert row.p50 <= row.p95 <= row.p99, row

    def test_tracing_overhead_within_bound(throughput_rows):
        """Enabled tracing may not tax frozen-batch QPS beyond the loose bar."""
        by_mode = {row.mode: row for row in throughput_rows}
        overhead = _tracing_overhead(by_mode)
        assert overhead <= MAX_TRACING_OVERHEAD, (
            f"tracing overhead {overhead:.1%} > {MAX_TRACING_OVERHEAD:.0%}"
        )

    def test_workload_is_mixed(throughput_rows):
        """Both strategies must actually run, else the comparison is vacuous."""
        seq = next(row for row in throughput_rows if row.mode == "sequential")
        assert 0.05 <= seq.linear_fraction <= 0.95, seq

    def test_serving_speedup(throughput_rows):
        """Acceptance: batched/sharded serving >= 3x the sequential loop."""
        by_mode = {row.mode: row for row in throughput_rows}
        best = max(by_mode["batched"].qps, by_mode["sharded"].qps)
        assert best >= MIN_SPEEDUP * by_mode["sequential"].qps, by_mode

    def test_frozen_layout_speedup(throughput_rows):
        """Acceptance: the frozen CSR layout >= 5x the sequential loop."""
        by_mode = {row.mode: row for row in throughput_rows}
        frozen = by_mode["frozen_batched"]
        assert frozen.matches
        assert frozen.qps >= MIN_FROZEN_SPEEDUP * by_mode["sequential"].qps, by_mode

    def test_frozen_multiprobe_speedup(throughput_rows):
        """Acceptance: frozen multi-probe >= 3x its own sequential loop."""
        by_mode = {row.mode: row for row in throughput_rows}
        frozen_mp = by_mode["frozen_multiprobe"]
        assert frozen_mp.matches
        assert (
            frozen_mp.qps
            >= MIN_MULTIPROBE_SPEEDUP * by_mode["multiprobe_sequential"].qps
        ), by_mode

    def test_adaptive_budget_candidate_reduction(throughput_rows):
        """Acceptance: the candidate budget examines <= 0.7x at equal recall.

        ``adaptive_budget`` shares every spec knob with ``adaptive_fixed``
        except the :class:`~repro.core.adaptive.AdaptivePolicy`, so the
        candidate gap is attributable to the estimates-driven trimming
        and budget-capped dispatch alone.
        """
        by_mode = {row.mode: row for row in throughput_rows}
        ad, fx = by_mode["adaptive_budget"], by_mode["adaptive_fixed"]
        assert ad.matches, "budget answers are not an id-subset of fixed"
        assert ad.candidates <= MAX_ADAPTIVE_CANDIDATES * fx.candidates, (
            f"adaptive_budget examined {ad.candidates / fx.candidates:.2f}x "
            f"the fixed candidates > {MAX_ADAPTIVE_CANDIDATES}x bar"
        )
        assert ad.recall >= fx.recall - MAX_ADAPTIVE_RECALL_GAP, (
            f"adaptive_budget recall {ad.recall:.4f} trails fixed "
            f"{fx.recall:.4f} by more than {MAX_ADAPTIVE_RECALL_GAP}"
        )

    def test_workers_speedup_over_thread_sharding(throughput_rows):
        """Acceptance: the process pool >= 1.5x the thread fan-out.

        Only meaningful with real cores — the whole point of the pool is
        side-stepping the GIL — so 1-core hosts record the mode (the
        bit-identity gate above still ran) and skip the bar.
        """
        if not MULTI_CORE:
            pytest.skip("single-core host: a process pool cannot beat threads")
        by_mode = {row.mode: row for row in throughput_rows}
        workers = by_mode["workers"]
        assert workers.qps >= MIN_WORKERS_SPEEDUP * by_mode["sharded"].qps, by_mode


if __name__ == "__main__":
    rows = _run_throughput()
    by_mode = {row.mode: row for row in rows}
    best = max(by_mode["batched"].qps, by_mode["sharded"].qps)
    frozen = by_mode["frozen_batched"]
    workers = by_mode["workers"]
    frozen_mp = by_mode["frozen_multiprobe"]
    ad, fx = by_mode["adaptive_budget"], by_mode["adaptive_fixed"]
    assert by_mode["batched"].matches and frozen.matches and by_mode["sharded"].matches
    assert by_mode["frozen_batched_traced"].matches, "tracing changed an answer"
    assert workers.matches, "workers mode diverged from the thread path"
    assert frozen_mp.matches, "frozen multiprobe diverged from the dict layout"
    assert ad.matches, "adaptive_budget is not an id-subset of adaptive_fixed"
    assert ad.candidates <= MAX_ADAPTIVE_CANDIDATES * fx.candidates, by_mode
    assert ad.recall >= fx.recall - MAX_ADAPTIVE_RECALL_GAP, by_mode
    overhead = _tracing_overhead(by_mode)
    assert overhead <= MAX_TRACING_OVERHEAD, f"tracing overhead {overhead:.1%}"
    assert best >= MIN_SPEEDUP * by_mode["sequential"].qps, by_mode
    assert frozen.qps >= MIN_FROZEN_SPEEDUP * by_mode["sequential"].qps, by_mode
    assert (
        frozen_mp.qps >= MIN_MULTIPROBE_SPEEDUP * by_mode["multiprobe_sequential"].qps
    ), by_mode
    print(f"speedup {best / by_mode['sequential'].qps:.2f}x >= {MIN_SPEEDUP}x: OK")
    print(
        f"frozen_batched {frozen.qps / by_mode['sequential'].qps:.2f}x "
        f">= {MIN_FROZEN_SPEEDUP}x: OK"
    )
    print(
        f"frozen_multiprobe {frozen_mp.qps / by_mode['multiprobe_sequential'].qps:.2f}x "
        f">= {MIN_MULTIPROBE_SPEEDUP}x: OK"
    )
    print(
        f"adaptive_budget {ad.candidates / fx.candidates:.2f}x candidates "
        f"<= {MAX_ADAPTIVE_CANDIDATES}x at recall {ad.recall:.4f}: OK"
    )
    if MULTI_CORE:
        assert workers.qps >= MIN_WORKERS_SPEEDUP * by_mode["sharded"].qps, by_mode
        print(
            f"workers {workers.qps / by_mode['sharded'].qps:.2f}x over sharded "
            f">= {MIN_WORKERS_SPEEDUP}x: OK"
        )
    else:
        print("workers bit-identical: OK (speedup bar skipped on 1-core host)")
