"""Ablation A5 — Step-S2 implementation shifts the cost structure.

Equation (1)'s ``alpha`` is the per-collision cost of duplicate
removal.  The paper's techniques (hash table, n-bit bitvector) probe
once per collision; a numpy implementation can instead scatter whole
buckets at once, shrinking ``alpha`` by an order of magnitude — and
with it the very bottleneck hybrid search exists to route around.

This ablation runs pure LSH search over the Webspam-like query set
with both dedup implementations and reports total time plus the
re-calibrated ``beta/alpha``.

Expected shape: vectorised dedup makes hard queries far cheaper for
LSH (collisions stop dominating), so the hybrid/linear crossover moves
to much larger radii.  This is why the library defaults to the
faithful scalar path for paper reproduction and why Section 4.2's
calibration step matters: the right decisions fall out of measuring
*your* implementation.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import NUM_QUERIES, NUM_TABLES
from repro.core import LSHSearch
from repro.core.calibration import measure_alpha
from repro.core.presets import paper_parameters
from repro.datasets import split_queries
from repro.evaluation.report import format_table
from repro.index import LSHIndex


@pytest.fixture(scope="module")
def variants(webspam_bench):
    data, queries = split_queries(webspam_bench.points, num_queries=NUM_QUERIES, seed=0)
    params = paper_parameters("cosine", dim=data.shape[1], radius=0.08,
                              num_tables=NUM_TABLES, seed=0)
    built = {}
    rows = []
    for dedup in ("scalar", "vectorized"):
        # seed= re-seeds the family so both variants draw identical hash
        # functions and the answer sets are comparable.
        index = LSHIndex(
            params.family,
            k=params.k,
            num_tables=params.num_tables,
            hll_precision=7,
            dedup=dedup,
            seed=123,
        ).build(data)
        searcher = LSHSearch(index)
        start = time.perf_counter()
        sizes = [searcher.query(q, 0.08).output_size for q in queries]
        elapsed = time.perf_counter() - start
        built[dedup] = (searcher, queries)
        rows.append((dedup, elapsed, int(np.sum(sizes))))
    scalar_alpha = measure_alpha(n=data.shape[0], num_collisions=10_000, seed=0)
    print("\n=== Ablation A5: Step-S2 dedup implementation (webspam-like) ===")
    print(format_table(
        ["dedup", "LSH total s", "total reported"],
        [[name, f"{s:.3f}", str(total)] for name, s, total in rows],
    ))
    print(f"scalar per-collision alpha ~ {1e9 * scalar_alpha:.0f} ns")
    return built, rows


@pytest.mark.parametrize("dedup", ["scalar", "vectorized"])
def test_lsh_search_by_dedup(benchmark, dedup, variants):
    built, _ = variants
    searcher, queries = built[dedup]

    def run():
        return [searcher.query(q, 0.08).output_size for q in queries[:15]]

    benchmark(run)


def test_results_identical_across_dedup(variants):
    """The dedup implementation must not change the answers."""
    built, _ = variants
    scalar, queries = built["scalar"]
    vectorized, _ = built["vectorized"]
    for q in queries[:10]:
        a = scalar.query(q, 0.08).ids
        b = vectorized.query(q, 0.08).ids
        assert np.array_equal(a, b)


def test_vectorized_is_faster_on_hard_queries(variants):
    """Vectorised scatter must beat per-collision probes in wall-clock."""
    _, rows = variants
    times = {name: s for name, s, _ in rows}
    assert times["vectorized"] <= times["scalar"]
