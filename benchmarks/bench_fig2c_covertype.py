"""Figure 2(c) — CPU time vs radius on CoverType (L1, Cauchy p-stable).

Paper shape (r = 3000..4000, k = 8, w = 4r, L = 50): LSH and hybrid
are comparable at the small end of the sweep; as r grows the output
sizes blow up and hybrid departs from LSH toward the flat linear line.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import NUM_QUERIES, NUM_TABLES, REPEATS
from repro.core import CostModel, HybridSearcher, LinearScan, LSHSearch
from repro.datasets import split_queries
from repro.evaluation import figure2_experiment
from repro.evaluation.experiments import build_paper_index
from repro.evaluation.report import format_figure2


@pytest.fixture(scope="module")
def fig2c_rows(covertype_bench):
    rows = figure2_experiment(
        covertype_bench,
        num_queries=NUM_QUERIES,
        repeats=REPEATS,
        num_tables=NUM_TABLES,
        seed=0,
    )
    print("\n=== Figure 2(c): CoverType-like, L1 distance ===")
    print(format_figure2(rows))
    print("paper shape: hybrid tracks lsh at small r, bends to linear at large r")
    return rows


@pytest.fixture(scope="module")
def strategies(covertype_bench):
    radius = 3600.0
    data, queries = split_queries(covertype_bench.points, num_queries=NUM_QUERIES, seed=0)
    index = build_paper_index(data, "l1", radius, num_tables=NUM_TABLES, seed=0)
    model = CostModel.from_ratio(covertype_bench.beta_over_alpha)
    return {
        "hybrid": HybridSearcher(index, model),
        "lsh": LSHSearch(index),
        "linear": LinearScan(data, "l1"),
    }, queries, radius


@pytest.mark.parametrize("strategy", ["hybrid", "lsh", "linear"])
def test_fig2c_query_set(benchmark, strategy, strategies, fig2c_rows):
    searchers, queries, radius = strategies
    searcher = searchers[strategy]

    def run():
        return [searcher.query(q, radius).output_size for q in queries]

    sizes = benchmark(run)
    assert len(sizes) == len(queries)


def test_fig2c_shape(fig2c_rows):
    for row in fig2c_rows:
        best = min(row.lsh_seconds, row.linear_seconds)
        assert row.hybrid_seconds <= 2.0 * best, row
