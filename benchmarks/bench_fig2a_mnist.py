"""Figure 2(a) — CPU time vs radius on MNIST (Hamming, bit sampling).

Paper shape (r = 12..17, 64-bit fingerprints, L = 50): at small r all
of hybrid/LSH beat linear decisively; as r grows LSH-based search
degrades and hybrid bends toward (and converges to) the flat linear
line, staying at or below the better of the two at every radius.

The printed series is the regenerated artifact; the pytest-benchmark
entries time one full query-set pass per strategy at the largest
radius (the regime where the strategies separate most).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import NUM_QUERIES, NUM_TABLES, REPEATS
from repro.core import CostModel, HybridSearcher, LinearScan, LSHSearch
from repro.datasets import split_queries
from repro.evaluation import figure2_experiment
from repro.evaluation.experiments import build_paper_index
from repro.evaluation.report import format_figure2


@pytest.fixture(scope="module")
def fig2a_rows(mnist_bench):
    rows = figure2_experiment(
        mnist_bench,
        num_queries=NUM_QUERIES,
        repeats=REPEATS,
        num_tables=NUM_TABLES,
        seed=0,
    )
    print("\n=== Figure 2(a): MNIST-like, Hamming distance ===")
    print(format_figure2(rows))
    print("paper shape: hybrid <= min(lsh, linear); converges to linear at large r")
    return rows


@pytest.fixture(scope="module")
def strategies(mnist_bench):
    radius = float(max(mnist_bench.radii))
    data, queries = split_queries(mnist_bench.points, num_queries=NUM_QUERIES, seed=0)
    index = build_paper_index(data, "hamming", radius, num_tables=NUM_TABLES, seed=0)
    model = CostModel.from_ratio(mnist_bench.beta_over_alpha)
    return {
        "hybrid": HybridSearcher(index, model),
        "lsh": LSHSearch(index),
        "linear": LinearScan(data, "hamming"),
    }, queries, radius


@pytest.mark.parametrize("strategy", ["hybrid", "lsh", "linear"])
def test_fig2a_query_set(benchmark, strategy, strategies, fig2a_rows):
    searchers, queries, radius = strategies
    searcher = searchers[strategy]

    def run():
        return [searcher.query(q, radius).output_size for q in queries]

    sizes = benchmark(run)
    assert len(sizes) == len(queries)


def test_fig2a_shape(fig2a_rows):
    """Shape check: hybrid is never far above the per-radius best."""
    for row in fig2a_rows:
        best = min(row.lsh_seconds, row.linear_seconds)
        assert row.hybrid_seconds <= 2.0 * best, row
