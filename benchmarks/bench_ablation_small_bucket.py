"""Ablation A1 — the paper's small-bucket trick (lazy sketches).

The complexity analysis in Section 3.2 observes that buckets with fewer
than ``m`` points do not need a materialised HLL: their raw ids can be
folded into the merged sketch on demand at query time, saving the
``O(m)`` space per small bucket at negligible query cost.

This ablation builds the same index three ways — eager sketches
everywhere (``lazy_threshold=0``), the paper's default threshold
(``m``), and a large threshold (``4m``) — and reports sketch memory,
build time, and per-query estimation time.

Expected shape: the default threshold cuts sketch memory by an order
of magnitude on long-tailed bucket-size distributions while leaving
query-time estimation cost essentially unchanged (small buckets are
small by definition).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import NUM_TABLES
from repro.core.presets import paper_parameters
from repro.datasets import split_queries
from repro.evaluation.report import format_table
from repro.index import LSHIndex

_THRESHOLDS = {"eager (0)": 0, "paper (m)": None, "large (4m)": 512}


@pytest.fixture(scope="module")
def variants(webspam_bench):
    data, queries = split_queries(webspam_bench.points, num_queries=25, seed=0)
    params = paper_parameters("cosine", dim=data.shape[1], radius=0.08,
                              num_tables=NUM_TABLES, seed=0)
    built = {}
    rows = []
    for name, threshold in _THRESHOLDS.items():
        start = time.perf_counter()
        # seed= re-seeds the family so every variant draws identical hash
        # functions; only the sketch laziness differs between them.
        index = LSHIndex(
            params.family,
            k=params.k,
            num_tables=params.num_tables,
            hll_precision=7,
            lazy_threshold=threshold,
            seed=123,
        ).build(data)
        build_seconds = time.perf_counter() - start
        query_start = time.perf_counter()
        estimates = [index.merged_sketch(index.lookup(q)).estimate() for q in queries]
        query_seconds = (time.perf_counter() - query_start) / len(queries)
        built[name] = (index, queries)
        rows.append(
            (name, index.sketch_memory_bytes / 1024, build_seconds, 1000 * query_seconds,
             float(np.mean(estimates)))
        )
    print("\n=== Ablation A1: small-bucket trick (webspam-like) ===")
    print(format_table(
        ["variant", "sketch KiB", "build s", "estimate ms/q", "mean estimate"],
        [[n, f"{kib:.0f}", f"{b:.2f}", f"{q:.3f}", f"{e:.0f}"] for n, kib, b, q, e in rows],
    ))
    return built, rows


@pytest.mark.parametrize("variant", list(_THRESHOLDS))
def test_estimation_time(benchmark, variant, variants):
    built, _ = variants
    index, queries = built[variant]
    lookups = [index.lookup(q) for q in queries[:10]]

    def estimate_all():
        return [index.merged_sketch(lookup).estimate() for lookup in lookups]

    benchmark(estimate_all)


def test_memory_savings(variants):
    """The paper's threshold must save sketch memory vs eager sketches."""
    _, rows = variants
    memory = {name: kib for name, kib, _, _, _ in rows}
    assert memory["paper (m)"] < memory["eager (0)"]
    assert memory["large (4m)"] <= memory["paper (m)"]


def test_estimates_agree_across_variants(variants):
    """Laziness must not change the merged estimates (exact same sketch)."""
    built, _ = variants
    reference = None
    for index, queries in built.values():
        estimates = [index.merged_sketch(index.lookup(q)).estimate() for q in queries[:10]]
        if reference is None:
            reference = estimates
        else:
            assert np.allclose(estimates, reference)
