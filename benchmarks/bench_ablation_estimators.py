"""Ablation A3 — estimator choice: HLL vs KMV vs exact counting.

The paper picks HyperLogLog for the per-bucket sketches.  The credible
alternatives are K-Minimum-Values (mergeable, 8 bytes per retained
hash) and exact counting (what Step S2 would pay anyway).  This
ablation estimates candSize for the same queries three ways and
reports accuracy and per-query time.

Expected shape: HLL and KMV are both accurate (sub-10% error) but HLL
merges byte registers in O(mL) while KMV re-sorts value sets; exact
counting is error-free but costs time proportional to #collisions —
the very cost the estimate exists to avoid paying blindly.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import NUM_TABLES
from repro.core.presets import paper_parameters
from repro.datasets import split_queries
from repro.evaluation.report import format_table
from repro.index import LSHIndex
from repro.sketches import get_estimator


@pytest.fixture(scope="module")
def setup(webspam_bench):
    data, queries = split_queries(webspam_bench.points, num_queries=25, seed=0)
    params = paper_parameters("cosine", dim=data.shape[1], radius=0.08,
                              num_tables=NUM_TABLES, seed=0)
    index = LSHIndex(
        params.family, k=params.k, num_tables=params.num_tables, hll_precision=7
    ).build(data)
    lookups = [index.lookup(q) for q in queries]
    exact_counts = [index.candidate_ids(lookup).size for lookup in lookups]
    return index, lookups, exact_counts


# The three candidates, resolved from the estimator registry — the same
# names an IndexSpec's ``estimator`` field accepts.
_ESTIMATORS = {name: get_estimator(name) for name in ("hll", "kmv", "exact")}


@pytest.fixture(scope="module")
def report(setup):
    index, lookups, exact_counts = setup
    rows = []
    for name, estimator in _ESTIMATORS.items():
        start = time.perf_counter()
        estimates = [estimator(index, lookup) for lookup in lookups]
        per_query_ms = 1000 * (time.perf_counter() - start) / len(lookups)
        errors = [
            abs(est - exact) / exact
            for est, exact in zip(estimates, exact_counts)
            if exact >= 10
        ]
        rows.append((name, float(np.mean(errors)), per_query_ms))
    print("\n=== Ablation A3: candSize estimator choice (webspam-like) ===")
    print(format_table(
        ["estimator", "mean rel error", "ms/query"],
        [[n, f"{err:.4f}", f"{ms:.3f}"] for n, err, ms in rows],
    ))
    return rows


@pytest.mark.parametrize("name", list(_ESTIMATORS))
def test_estimator_speed(benchmark, name, setup, report):
    index, lookups, _ = setup
    estimator = _ESTIMATORS[name]

    def run():
        return [estimator(index, lookup) for lookup in lookups[:10]]

    benchmark(run)


def test_hll_is_accurate(report):
    errors = {name: err for name, err, _ in report}
    assert errors["exact"] == 0.0
    assert errors["hll"] < 0.2
    assert errors["kmv"] < 0.2
