"""The paper's omitted experiment — recall: hybrid vs LSH vs theory.

Section 4.2 closes with: "We note that hybrid search gives higher
recall ratio than LSH-based search since it uses linear search for
'hard' queries.  Due to the limit of space, we do not report it here."

This benchmark reports it: measured recall of hybrid and pure LSH
across the Webspam radius sweep, next to the analytic expectation
``mean 1 - (1 - p(c)^k)^L`` over the true neighbors' distances.

Expected shape: hybrid recall >= LSH recall at every radius (its
linear branch is exact), with the gap widening as the %linear-call
share grows; LSH recall tracks the analytic line.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import NUM_QUERIES, NUM_TABLES
from repro.core import HybridSearcher
from repro.core.calibration import calibrate_cost_model
from repro.datasets import split_queries
from repro.evaluation import GroundTruth, mean_recall, recall_experiment
from repro.evaluation.experiments import build_paper_index
from repro.evaluation.report import format_recall


@pytest.fixture(scope="module")
def recall_rows(webspam_bench):
    rows = recall_experiment(
        webspam_bench, num_queries=NUM_QUERIES, num_tables=NUM_TABLES, seed=0
    )
    print("\n=== Recall vs radius (webspam-like) — the paper's omitted result ===")
    print(format_recall(rows))
    print("expected shape: hybrid >= lsh at every radius; lsh tracks analytic")
    return rows


def test_recall_measurement(benchmark, webspam_bench, recall_rows):
    """Time the recall measurement pipeline at one radius."""
    data, queries = split_queries(webspam_bench.points, num_queries=10, seed=0)
    index = build_paper_index(data, "cosine", 0.08, num_tables=NUM_TABLES, seed=0)
    model = calibrate_cost_model(data, "cosine", seed=0).model
    hybrid = HybridSearcher(index, model)
    truth = GroundTruth(data, queries, "cosine")
    truth_sets = truth.neighbor_sets(0.08)

    def run():
        reported = [hybrid.query(q, 0.08).ids for q in queries]
        return mean_recall(reported, truth_sets)

    value = benchmark(run)
    assert 0.5 <= value <= 1.0


def test_hybrid_recall_dominates(recall_rows):
    """The paper's claim, verified at every radius."""
    for row in recall_rows:
        assert row.hybrid_recall >= row.lsh_recall - 1e-9, row


def test_lsh_recall_tracks_theory(recall_rows):
    for row in recall_rows:
        assert abs(row.lsh_recall - row.analytic_recall) < 0.15, row
