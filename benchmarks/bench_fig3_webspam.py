"""Figure 3 — output-size spread and %linear-search calls on Webspam.

Left panel (paper): even at r <= 0.1 the maximum output size exceeds
n/2 while the minimum is near zero — Webspam has both very hard and
very easy queries at every radius.

Right panel (paper): the share of hybrid queries dispatched to linear
search grows from ~10% at r = 0.05 to ~50% at r = 0.1.

The printed series regenerates both panels; the pytest-benchmark entry
times the *decision step alone* (lookup + collision count + HLL merge
+ cost comparison), which is the entire overhead hybrid adds on top of
whichever strategy it picks.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import NUM_QUERIES, NUM_TABLES
from repro.core import CostModel, HybridSearcher
from repro.datasets import split_queries
from repro.evaluation import figure3_experiment
from repro.evaluation.experiments import build_paper_index
from repro.evaluation.report import format_figure3


@pytest.fixture(scope="module")
def fig3_rows(webspam_bench):
    rows = figure3_experiment(
        webspam_bench, num_queries=NUM_QUERIES, num_tables=NUM_TABLES, seed=0
    )
    print("\n=== Figure 3: Webspam-like output sizes and %LS calls ===")
    print(format_figure3(rows))
    print("paper shape: max output ~ n/2, min ~ 0; %LS grows with r")
    return rows


def test_fig3_decision_overhead(benchmark, webspam_bench, fig3_rows):
    """Time the Algorithm 2 decision (the hybrid-added overhead)."""
    data, queries = split_queries(webspam_bench.points, num_queries=10, seed=0)
    index = build_paper_index(data, "cosine", 0.08, num_tables=NUM_TABLES, seed=0)
    hybrid = HybridSearcher(index, CostModel.from_ratio(10.0))

    def decide_all():
        return [hybrid.decide(q) for q in queries]

    decisions = benchmark(decide_all)
    assert len(decisions) == 10


def test_fig3_shape(fig3_rows):
    """Shape checks for both panels."""
    largest = fig3_rows[-1]
    # Left panel: wide output spread (hard and easy queries coexist).
    assert largest.max_output > largest.n / 4
    assert fig3_rows[0].min_output <= largest.n / 100
    # Right panel: linear-call share grows (weakly) across the sweep.
    assert fig3_rows[-1].linear_call_percent >= fig3_rows[0].linear_call_percent
    # And at the largest radius a sizable share of queries go linear.
    assert fig3_rows[-1].linear_call_percent >= 10.0
