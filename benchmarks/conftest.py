"""Shared fixtures for the benchmark harness.

Dataset sizes are laptop-scale (the paper used 60k-581k points; we
default to 6,000 so the full suite regenerates every table and figure
in minutes).  The *shape* conclusions — who wins at which radius, where
the crossover falls, how the %linear-calls curve grows — are scale-free
because both sides of the Algorithm 2 comparison scale linearly in n.

Set the environment variable ``REPRO_BENCH_N`` to run larger instances.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import corel_like, covertype_like, mnist_like, webspam_like

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "12000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "50"))
NUM_TABLES = int(os.environ.get("REPRO_BENCH_TABLES", "50"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))


@pytest.fixture(scope="session")
def webspam_bench():
    return webspam_like(n=BENCH_N, seed=0)


@pytest.fixture(scope="session")
def corel_bench():
    return corel_like(n=BENCH_N, seed=0)


@pytest.fixture(scope="session")
def covertype_bench():
    return covertype_like(n=BENCH_N, seed=0)


@pytest.fixture(scope="session")
def mnist_bench():
    return mnist_like(n=BENCH_N, seed=0)
