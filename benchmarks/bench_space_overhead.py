"""Space-overhead claims of Section 3.2 — sketch memory accounting.

The paper's complexity analysis: "the space overhead of HLLs is
usually smaller than large buckets (e.g., #points > m).  For small
buckets (e.g., #points < m), we might not need HLL" (the lazy trick).

This benchmark builds the Webspam-like index at several register
counts and prints the byte-level breakdown — data matrix, bucket ids,
bucket keys, sketches — verifying that with the lazy threshold the
sketch overhead stays a small fraction of the structure it annotates.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import NUM_TABLES
from repro.core.presets import paper_parameters
from repro.datasets import split_queries
from repro.evaluation.report import format_table
from repro.index import LSHIndex

_PRECISIONS = (5, 7, 9)  # m = 32, 128, 512


@pytest.fixture(scope="module")
def reports(webspam_bench):
    data, _ = split_queries(webspam_bench.points, num_queries=25, seed=0)
    params = paper_parameters(
        "cosine", dim=data.shape[1], radius=0.08, num_tables=NUM_TABLES, seed=0
    )
    rows = []
    built = {}
    for p in _PRECISIONS:
        index = LSHIndex(
            params.family, k=params.k, num_tables=params.num_tables, hll_precision=p
        ).build(data)
        report = index.memory_report()
        built[p] = index
        rows.append((1 << p, report))
    print("\n=== Section 3.2: space overhead of per-bucket HLLs (webspam-like) ===")
    print(format_table(
        ["m", "points MiB", "ids MiB", "keys MiB", "sketches MiB", "sketch share"],
        [
            [
                str(m),
                f"{r['points'] / 2**20:.1f}",
                f"{r['bucket_ids'] / 2**20:.1f}",
                f"{r['bucket_keys'] / 2**20:.1f}",
                f"{r['sketches'] / 2**20:.2f}",
                f"{100 * r['sketches'] / r['total']:.1f}%",
            ]
            for m, r in rows
        ],
    ))
    return rows, built


@pytest.mark.parametrize("p", _PRECISIONS)
def test_memory_report_cost(benchmark, p, reports):
    _, built = reports
    index = built[p]
    benchmark(index.memory_report)


def test_sketches_below_bucket_ids(reports):
    """The §3.2 claim at every register count (lazy threshold active)."""
    rows, _ = reports
    for m, report in rows:
        assert report["sketches"] < report["bucket_ids"], (m, report)


def test_sketch_share_is_small(reports):
    """With the lazy threshold, sketches stay a minor share of the index.

    Note the share is *not* monotone in m: the default lazy threshold
    equals m, so a larger m also disqualifies more buckets from
    carrying a sketch at all.
    """
    rows, _ = reports
    for m, report in rows:
        assert report["sketches"] / report["total"] < 0.2, (m, report)
