"""Figure 2(d) — CPU time vs radius on Corel (L2, Gaussian p-stable).

Paper shape (r = 0.35..0.6, k = 7, w = 2r, L = 50): hybrid and LSH are
comparable and far below linear at small radii; LSH-based search
degrades past the mid-sweep and hybrid converges to the linear line
instead of following LSH up.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import NUM_QUERIES, NUM_TABLES, REPEATS
from repro.core import CostModel, HybridSearcher, LinearScan, LSHSearch
from repro.datasets import split_queries
from repro.evaluation import figure2_experiment
from repro.evaluation.experiments import build_paper_index
from repro.evaluation.report import format_figure2


@pytest.fixture(scope="module")
def fig2d_rows(corel_bench):
    rows = figure2_experiment(
        corel_bench,
        num_queries=NUM_QUERIES,
        repeats=REPEATS,
        num_tables=NUM_TABLES,
        seed=0,
    )
    print("\n=== Figure 2(d): Corel-like, L2 distance ===")
    print(format_figure2(rows))
    print("paper shape: hybrid ~ lsh << linear at small r; hybrid -> linear at large r")
    return rows


@pytest.fixture(scope="module")
def strategies(corel_bench):
    radius = 0.5
    data, queries = split_queries(corel_bench.points, num_queries=NUM_QUERIES, seed=0)
    index = build_paper_index(data, "l2", radius, num_tables=NUM_TABLES, seed=0)
    model = CostModel.from_ratio(corel_bench.beta_over_alpha)
    return {
        "hybrid": HybridSearcher(index, model),
        "lsh": LSHSearch(index),
        "linear": LinearScan(data, "l2"),
    }, queries, radius


@pytest.mark.parametrize("strategy", ["hybrid", "lsh", "linear"])
def test_fig2d_query_set(benchmark, strategy, strategies, fig2d_rows):
    searchers, queries, radius = strategies
    searcher = searchers[strategy]

    def run():
        return [searcher.query(q, radius).output_size for q in queries]

    sizes = benchmark(run)
    assert len(sizes) == len(queries)


def test_fig2d_shape(fig2d_rows):
    for row in fig2d_rows:
        best = min(row.lsh_seconds, row.linear_seconds)
        assert row.hybrid_seconds <= 2.0 * best, row
