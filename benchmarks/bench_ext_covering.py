"""Extension E2 (paper Section 5) — hybrid search on covering LSH.

Covering LSH (Pagh, SODA 2016) guarantees *no false negatives*: with
``r + 1`` block tables, every point within Hamming radius ``r`` shares
a whole block with the query.  The price is very low selectivity —
block hashes are short, buckets are huge — which is exactly the
"large number of probes" regime the paper's conclusion predicts
benefits most from cost estimation.

This benchmark compares, on the MNIST-like fingerprints:

* classic LSH (probabilistic recall ~ 1 - delta),
* covering LSH searched classically (recall exactly 1.0, slow), and
* covering LSH + hybrid dispatch (recall exactly 1.0, with hard
  queries routed to the equally-exact linear scan).

Expected shape: covering+hybrid keeps the perfect recall of covering
LSH while cutting its worst-case query cost back to ~ linear scan.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import NUM_QUERIES, NUM_TABLES
from repro.core import HybridSearcher, LinearScan, LSHSearch
from repro.core.calibration import calibrate_cost_model
from repro.datasets import split_queries
from repro.evaluation import GroundTruth, mean_recall
from repro.evaluation.experiments import build_paper_index
from repro.evaluation.report import format_table
from repro.index import CoveringLSHIndex

_RADIUS = 12


@pytest.fixture(scope="module")
def report(mnist_bench):
    data, queries = split_queries(mnist_bench.points, num_queries=NUM_QUERIES, seed=0)
    classic = build_paper_index(
        data, "hamming", float(_RADIUS), num_tables=NUM_TABLES, seed=0
    )
    covering = CoveringLSHIndex(
        dim=data.shape[1], radius=_RADIUS, seed=0
    ).build(data)
    model = calibrate_cost_model(data, "hamming", seed=0).model
    truth = GroundTruth(data, queries, "hamming")
    truth_sets = truth.neighbor_sets(float(_RADIUS))

    configurations = {
        "classic lsh": LSHSearch(classic),
        "covering lsh": LSHSearch(covering),
        "covering + hybrid": HybridSearcher(covering, model),
        "linear": LinearScan(data, "hamming"),
    }
    rows = []
    for name, searcher in configurations.items():
        start = time.perf_counter()
        results = [searcher.query(q, float(_RADIUS)) for q in queries]
        elapsed = time.perf_counter() - start
        recall = mean_recall([r.ids for r in results], truth_sets)
        rows.append((name, elapsed, recall))
    print("\n=== Extension: hybrid on covering LSH (mnist-like, r = 12) ===")
    print(format_table(
        ["configuration", "total s", "recall"],
        [[n, f"{s:.3f}", f"{r:.4f}"] for n, s, r in rows],
    ))
    return rows, configurations, queries


@pytest.mark.parametrize("config", ["covering lsh", "covering + hybrid"])
def test_covering_query_set(benchmark, config, report):
    _, configurations, queries = report
    searcher = configurations[config]

    def run():
        return [searcher.query(q, float(_RADIUS)).output_size for q in queries[:15]]

    benchmark(run)


def test_covering_recall_is_perfect(report):
    """The covering guarantee: recall exactly 1.0, hybrid included."""
    rows, _, _ = report
    recalls = {name: r for name, _, r in rows}
    assert recalls["covering lsh"] == 1.0
    assert recalls["covering + hybrid"] == 1.0
    assert recalls["linear"] == 1.0


def test_hybrid_bounds_covering_cost(report):
    """Hybrid dispatch must not be far above the better pure strategy."""
    rows, _, _ = report
    times = {name: s for name, s, _ in rows}
    best = min(times["covering lsh"], times["linear"])
    # The decision overhead (r+1 sketch merges) is a larger share at
    # laptop scale than at the paper's n, hence the generous factor.
    assert times["covering + hybrid"] <= 3.0 * best
