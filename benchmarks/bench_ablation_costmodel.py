"""Ablation A4 (DESIGN.md item 4) — decision-rule sensitivity to beta/alpha.

Algorithm 2 compares ``alpha * #collisions + beta * candSize`` against
``beta * n``; only the ratio ``beta / alpha`` matters, and the paper
calibrates it per dataset (Section 4.2).  This ablation deliberately
mis-calibrates the ratio by factors of {1/8, 1/2, 1, 2, 8} around the
measured value and reports the hybrid wall-clock over the query set.

Expected shape: the true ratio minimises total time; under-estimating
the ratio (dedup believed expensive) over-uses linear search,
over-estimating it over-uses LSH on hard queries.  The curve is flat
near the optimum — the decision only flips for queries near the cost
crossover — which is why the paper's rough 100 x 10,000 sample
calibration suffices.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import NUM_QUERIES, NUM_TABLES
from repro.core import CostModel, HybridSearcher
from repro.core.calibration import calibrate_cost_model
from repro.datasets import split_queries
from repro.evaluation.experiments import build_paper_index
from repro.evaluation.report import format_table

_FACTORS = (0.125, 0.5, 1.0, 2.0, 8.0)


@pytest.fixture(scope="module")
def sweep(webspam_bench):
    data, queries = split_queries(webspam_bench.points, num_queries=NUM_QUERIES, seed=0)
    index = build_paper_index(data, "cosine", 0.08, num_tables=NUM_TABLES, seed=0)
    measured = calibrate_cost_model(data, "cosine", seed=0).model
    rows = []
    searchers = {}
    for factor in _FACTORS:
        model = CostModel(alpha=measured.alpha, beta=measured.beta * factor)
        hybrid = HybridSearcher(index, model)
        start = time.perf_counter()
        results = [hybrid.query(q, 0.08) for q in queries]
        elapsed = time.perf_counter() - start
        linear_share = float(np.mean(
            [r.stats.strategy.value == "linear" for r in results]
        ))
        searchers[factor] = hybrid
        rows.append((factor, model.beta_over_alpha, elapsed, linear_share))
    print("\n=== Ablation A4: cost-model mis-calibration (webspam-like) ===")
    print(format_table(
        ["factor", "beta/alpha", "total s", "%linear"],
        [[f"{f:g}", f"{r:.2f}", f"{s:.3f}", f"{100 * ls:.0f}%"] for f, r, s, ls in rows],
    ))
    return rows, searchers, queries


@pytest.mark.parametrize("factor", [0.125, 1.0, 8.0])
def test_hybrid_under_miscalibration(benchmark, factor, sweep):
    _, searchers, queries = sweep
    hybrid = searchers[factor]

    def run():
        return [hybrid.query(q, 0.08).output_size for q in queries[:15]]

    benchmark(run)


def test_linear_share_monotone_in_ratio(sweep):
    """Higher beta/alpha (cheaper dedup) must use linear search less."""
    rows, _, _ = sweep
    shares = [ls for _, _, _, ls in rows]
    assert shares[0] >= shares[-1]
