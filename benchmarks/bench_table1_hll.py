"""Table 1 — relative cost and relative error of HLL candSize estimation.

Paper numbers (m = 128, L = 50, delta = 0.1, 100 queries):

    Dataset   Webspam  CoverType  Corel   MNIST
    % Cost    1.31%    0.12%      3.18%   17.54%
    % Error   5.99%    5.86%      6.74%   6.8%

Expected shape: cost share is small (a few percent) on real-valued
datasets and noticeably larger on MNIST, whose binary distance kernel
is so cheap that the fixed O(mL) sketch merge stands out; the relative
error stays well under the theoretical 10% bound.

The printed table is the regenerated artifact; the pytest-benchmark
entries time the per-query sketch-merge step (the O(mL) overhead the
table's "% Cost" row is about) on each dataset.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import NUM_QUERIES, NUM_TABLES
from repro.datasets import split_queries
from repro.evaluation import table1_experiment
from repro.evaluation.experiments import build_paper_index
from repro.evaluation.report import format_table1


@pytest.fixture(scope="module")
def table1_rows(webspam_bench, covertype_bench, corel_bench, mnist_bench):
    rows = [
        table1_experiment(ds, num_queries=NUM_QUERIES, num_tables=NUM_TABLES, seed=0)
        for ds in (webspam_bench, covertype_bench, corel_bench, mnist_bench)
    ]
    print("\n=== Table 1: relative cost and error of HLLs ===")
    print(format_table1(rows))
    print("paper: cost 1.31/0.12/3.18/17.54%%, error 5.99/5.86/6.74/6.8%%")
    return rows


def _sketch_merge_case(dataset):
    data, queries = split_queries(dataset.points, num_queries=5, seed=0)
    index = build_paper_index(
        data, dataset.metric, float(dataset.radii[0]), num_tables=NUM_TABLES, seed=0
    )
    lookups = [index.lookup(q) for q in queries]

    def merge_all():
        return [index.merged_sketch(lookup).estimate() for lookup in lookups]

    return merge_all


@pytest.mark.parametrize("name", ["webspam", "covertype", "corel", "mnist"])
def test_hll_merge_overhead(benchmark, name, table1_rows, request):
    """Time the O(mL) merge+estimate step per query on each dataset."""
    dataset = request.getfixturevalue(f"{name}_bench")
    merge_all = _sketch_merge_case(dataset)
    result = benchmark(merge_all)
    assert len(result) == 5
    assert all(est >= 0 for est in result)


def test_table1_error_bound(table1_rows):
    """Regeneration check: mean relative error under the 10% HLL bound
    (paper measured < 7%), allowing noise headroom at our scale."""
    for row in table1_rows:
        assert row.error_percent < 15.0, row
