"""Tail latency under open-loop load — pipes vs TCP, with a replica kill.

The acceptance bars for the networked shard tier, measured with the
open-loop Poisson load generator (:mod:`repro.service.loadgen` — latency
is charged from the *scheduled* arrival, so a stalled server cannot hide
its queue delay, the classic coordinated-omission trap):

* ``pipes`` — the locally spawned worker pool: the baseline tail.
* ``tcp`` — one standalone shard server per slot (``repro.cli
  shard-serve``): the same answers over sockets; records what the frame
  codec and loopback TCP cost at the tail.
* ``tcp_failover`` — one slot backed by **two** replica servers, one of
  which is SIGKILLed mid-run.  The strict contract: **zero failed
  requests** (every in-flight and subsequent read fails over to the
  surviving replica) and the p99/max blip stays inside the fault
  policy's retry budget — ``(max_retries + 1) * recv_deadline`` plus
  scheduling slack — rather than an unbounded stall.

Emits ``BENCH_latency.json`` at the repo root so later PRs can track
the serving-tail trajectory next to ``BENCH_throughput.json``.

Environment knobs: ``REPRO_BENCH_LATENCY_N`` (default 8,000 points),
``REPRO_BENCH_LATENCY_RATE`` (default 120 req/s),
``REPRO_BENCH_LATENCY_DURATION`` (default 3 s per scenario).

Runs under pytest (``pytest benchmarks/bench_latency.py``) or directly
(``PYTHONPATH=src python benchmarks/bench_latency.py``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

from repro.api import Index, IndexSpec
from repro.evaluation import mixed_workload
from repro.faults import FaultTolerancePolicy
from repro.service.loadgen import run_loadgen

LATENCY_N = int(os.environ.get("REPRO_BENCH_LATENCY_N", "8000"))
RATE = float(os.environ.get("REPRO_BENCH_LATENCY_RATE", "120"))
DURATION = float(os.environ.get("REPRO_BENCH_LATENCY_DURATION", "3"))
NUM_SHARDS = 2
NUM_TABLES = int(os.environ.get("REPRO_BENCH_TABLES", "20"))
ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_latency.json"
_SRC = str(Path(__file__).resolve().parents[1] / "src")

#: the drill policy every scenario runs under — identical budgets so the
#: three tails are comparable, and tight enough that the failover bar
#: below means something.
POLICY = FaultTolerancePolicy(
    recv_deadline=0.5,
    startup_deadline=30.0,
    max_retries=2,
    backoff_base=0.01,
    backoff_max=0.05,
    breaker_threshold=10,
    breaker_cooldown=30.0,
)

#: worst honest request during the kill: every retry burns a full
#: deadline before the read lands on the surviving replica, plus
#: scheduling/reconnect slack.  The failover scenario's slowest request
#: must stay under this — that is the bounded-blip contract.
P99_BUDGET_MS = (POLICY.max_retries + 1) * POLICY.recv_deadline * 1000 + 1500


def _spawn_shard_server(artifact: str, shards: str | None = None):
    """Launch ``repro.cli shard-serve``; return (process, banner dict)."""
    argv = [sys.executable, "-m", "repro.cli", "shard-serve", "--artifact", artifact]
    if shards is not None:
        argv += ["--shards", shards]
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(argv, stdout=subprocess.PIPE, env=env, text=True)
    line = proc.stdout.readline()
    if not line:
        proc.wait(timeout=10)
        raise RuntimeError(f"shard-serve exited {proc.returncode} without a banner")
    return proc, json.loads(line)


def _measure(index: Index, seed: int) -> dict:
    doc = run_loadgen(index, rate=RATE, duration=DURATION, seed=seed)
    doc.pop("samples", None)
    return doc


def _run_latency() -> dict:
    points, _queries, radius = mixed_workload(LATENCY_N, num_queries=8, seed=0)
    spec = IndexSpec(
        metric="l2",
        radius=radius,
        num_tables=NUM_TABLES,
        num_shards=NUM_SHARDS,
        layout="frozen",
        execution="processes",
        cost_ratio=6.0,
        seed=0,
    )
    scenarios: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        art = os.path.join(tmp, "idx")
        built = Index.build(points, spec, num_workers=NUM_SHARDS)
        built.save(art)
        built.close()

        # --- pipes: the locally spawned pool is the latency baseline.
        index = Index.open(art, num_workers=NUM_SHARDS, fault_policy=POLICY)
        try:
            scenarios["pipes"] = _measure(index, seed=1)
        finally:
            index.close()

        # --- tcp: one standalone server per worker slot, no replicas.
        servers = [
            _spawn_shard_server(art, shards=str(s)) for s in range(NUM_SHARDS)
        ]
        try:
            index = Index.open(
                art,
                fault_policy=POLICY,
                endpoints=[
                    f"{banner['host']}:{banner['port']}" for _, banner in servers
                ],
            )
            try:
                scenarios["tcp"] = _measure(index, seed=2)
            finally:
                index.close()
        finally:
            for proc, _banner in servers:
                proc.kill()
                proc.wait(timeout=10)

        # --- tcp_failover: one slot, two full-artifact replicas; kill
        # one mid-run and demand zero strict failures.
        proc_a, banner_a = _spawn_shard_server(art)
        proc_b, banner_b = _spawn_shard_server(art)
        try:
            index = Index.open(
                art,
                fault_policy=POLICY,
                endpoints=[
                    f"{banner_a['host']}:{banner_a['port']},"
                    f"{banner_b['host']}:{banner_b['port']}"
                ],
            )
            try:
                killer = threading.Timer(DURATION / 2, proc_a.kill)
                killer.start()
                try:
                    doc = _measure(index, seed=3)
                finally:
                    killer.cancel()
                doc["killed_replica_at_s"] = DURATION / 2
                doc["p99_budget_ms"] = P99_BUDGET_MS
                scenarios["tcp_failover"] = doc
            finally:
                index.close()
        finally:
            for proc in (proc_a, proc_b):
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)

    result = {
        "schema": "repro-latency-bench/1",
        "meta": {
            "n": LATENCY_N,
            "num_shards": NUM_SHARDS,
            "num_tables": NUM_TABLES,
            "radius": radius,
            "rate": RATE,
            "duration": DURATION,
            "recv_deadline": POLICY.recv_deadline,
            "max_retries": POLICY.max_retries,
            "p99_budget_ms": P99_BUDGET_MS,
        },
        "scenarios": scenarios,
    }
    ARTIFACT.write_text(json.dumps(result, indent=2) + "\n")
    for name, doc in scenarios.items():
        latency = doc["latency"]
        print(
            f"{name:>14}: {doc['requests']} requests, "
            f"{doc['failures']} failures, {doc['degraded']} degraded; "
            f"p50 {latency['p50_ms']:.2f}ms p95 {latency['p95_ms']:.2f}ms "
            f"p99 {latency['p99_ms']:.2f}ms max {latency['max_ms']:.2f}ms"
        )
    print(f"wrote {ARTIFACT}")
    return result


try:
    import pytest
except ImportError:  # direct execution without pytest installed
    pytest = None


if pytest is not None:

    @pytest.fixture(scope="module")
    def latency_doc():
        return _run_latency()

    def test_zero_strict_failures_everywhere(latency_doc):
        """Every scenario — including the mid-run kill — answers strictly."""
        for name, doc in latency_doc["scenarios"].items():
            assert doc["failures"] == 0, (name, doc)
            assert doc["degraded"] == 0, (name, doc)
            assert doc["requests"] > 0, (name, doc)

    def test_percentiles_are_ordered(latency_doc):
        for name, doc in latency_doc["scenarios"].items():
            latency = doc["latency"]
            assert (
                latency["p50_ms"] <= latency["p95_ms"]
                <= latency["p99_ms"] <= latency["max_ms"]
            ), (name, latency)

    def test_failover_blip_is_bounded_by_the_retry_budget(latency_doc):
        """The kill may cost a deadline per retry, never an open-ended stall."""
        doc = latency_doc["scenarios"]["tcp_failover"]
        assert doc["latency"]["max_ms"] <= doc["p99_budget_ms"], doc


if __name__ == "__main__":
    result = _run_latency()
    for name, doc in result["scenarios"].items():
        assert doc["failures"] == 0, (name, doc)
        assert doc["degraded"] == 0, (name, doc)
    failover = result["scenarios"]["tcp_failover"]
    assert failover["latency"]["max_ms"] <= failover["p99_budget_ms"], failover
    print(
        f"failover max {failover['latency']['max_ms']:.1f}ms "
        f"<= budget {failover['p99_budget_ms']:.0f}ms: OK"
    )
