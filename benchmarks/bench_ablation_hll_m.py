"""Ablation A2 — HLL register count m: estimation error vs merge cost.

The paper fixes ``m = 128`` ("to achieve a relative error at most 10%")
and notes ``m = 32`` suffices where distances are cheap (MNIST).  This
ablation sweeps ``m`` over {16, 32, 64, 128, 256, 512} on the
Webspam-like workload and reports, per m:

* the mean relative error of the candSize estimate vs. the exact
  distinct count (theory: ``1.04 / sqrt(m)``), and
* the per-query sketch-merge time (theory: linear in ``m * L``).

Expected shape: error halves per 4x registers; merge cost grows
roughly linearly in m; m = 128 sits at the paper's sweet spot.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import NUM_TABLES
from repro.core.presets import paper_parameters
from repro.datasets import split_queries
from repro.evaluation.report import format_table
from repro.index import LSHIndex

_PRECISIONS = (4, 5, 6, 7, 8, 9)  # m = 16 .. 512


@pytest.fixture(scope="module")
def sweep(webspam_bench):
    data, queries = split_queries(webspam_bench.points, num_queries=25, seed=0)
    params = paper_parameters("cosine", dim=data.shape[1], radius=0.08,
                              num_tables=NUM_TABLES, seed=0)
    rows = []
    indexes = {}
    for p in _PRECISIONS:
        index = LSHIndex(
            params.family, k=params.k, num_tables=params.num_tables, hll_precision=p
        ).build(data)
        indexes[p] = (index, queries)
        errors, merge_seconds = [], 0.0
        for q in queries:
            lookup = index.lookup(q)
            start = time.perf_counter()
            estimate = index.merged_sketch(lookup).estimate()
            merge_seconds += time.perf_counter() - start
            exact = index.candidate_ids(lookup).size
            if exact >= 10:
                errors.append(abs(estimate - exact) / exact)
        rows.append(
            (1 << p, float(np.mean(errors)), 1.04 / np.sqrt(1 << p),
             1000 * merge_seconds / len(queries))
        )
    print("\n=== Ablation A2: HLL register count (webspam-like) ===")
    print(format_table(
        ["m", "measured err", "theory 1.04/sqrt(m)", "merge ms/query"],
        [[str(m), f"{err:.3f}", f"{theory:.3f}", f"{ms:.3f}"] for m, err, theory, ms in rows],
    ))
    return rows, indexes


@pytest.mark.parametrize("p", [5, 7, 9])
def test_merge_cost_vs_m(benchmark, p, sweep):
    _, indexes = sweep
    index, queries = indexes[p]
    lookups = [index.lookup(q) for q in queries[:10]]

    def merge_all():
        return [index.merged_sketch(lookup).estimate() for lookup in lookups]

    benchmark(merge_all)


def test_error_shrinks_with_m(sweep):
    """4x registers should roughly halve the estimation error."""
    rows, _ = sweep
    errors = {m: err for m, err, _, _ in rows}
    assert errors[512] < errors[16]
    # Within ~3x of the theoretical error at the paper's m = 128.
    assert errors[128] < 3 * (1.04 / np.sqrt(128))
