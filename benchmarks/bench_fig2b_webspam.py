"""Figure 2(b) — CPU time vs radius on Webspam (cosine, SimHash).

This is the paper's headline panel: Webspam has hard queries even at
tiny radii, so hybrid search is *strictly* better than both pure
strategies across the whole sweep — LSH-based search pays duplicate
removal on the spam-farm queries, linear search wastes full scans on
the easy ones.

Expected shape: hybrid < min(LSH, linear) for most radii, with LSH
degrading fastest as r grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import NUM_QUERIES, NUM_TABLES, REPEATS
from repro.core import CostModel, HybridSearcher, LinearScan, LSHSearch
from repro.datasets import split_queries
from repro.evaluation import figure2_experiment
from repro.evaluation.experiments import build_paper_index
from repro.evaluation.report import format_figure2


@pytest.fixture(scope="module")
def fig2b_rows(webspam_bench):
    rows = figure2_experiment(
        webspam_bench,
        num_queries=NUM_QUERIES,
        repeats=REPEATS,
        num_tables=NUM_TABLES,
        seed=0,
    )
    print("\n=== Figure 2(b): Webspam-like, cosine distance ===")
    print(format_figure2(rows))
    print("paper shape: hybrid strictly below both pure strategies")
    return rows


@pytest.fixture(scope="module")
def strategies(webspam_bench):
    radius = 0.08
    data, queries = split_queries(webspam_bench.points, num_queries=NUM_QUERIES, seed=0)
    index = build_paper_index(data, "cosine", radius, num_tables=NUM_TABLES, seed=0)
    model = CostModel.from_ratio(webspam_bench.beta_over_alpha)
    return {
        "hybrid": HybridSearcher(index, model),
        "lsh": LSHSearch(index),
        "linear": LinearScan(data, "cosine"),
    }, queries, radius


@pytest.mark.parametrize("strategy", ["hybrid", "lsh", "linear"])
def test_fig2b_query_set(benchmark, strategy, strategies, fig2b_rows):
    searchers, queries, radius = strategies
    searcher = searchers[strategy]

    def run():
        return [searcher.query(q, radius).output_size for q in queries]

    sizes = benchmark(run)
    assert len(sizes) == len(queries)


def test_fig2b_shape(fig2b_rows):
    """Shape checks for the headline panel."""
    for row in fig2b_rows:
        best = min(row.lsh_seconds, row.linear_seconds)
        assert row.hybrid_seconds <= 2.0 * best, row
    # Hard queries exist from small radii: hybrid issues linear calls.
    assert any(row.linear_call_fraction > 0.0 for row in fig2b_rows)
