"""Extension E (paper Section 5) — hybrid search on multi-probe LSH.

The paper's conclusion: "our hybrid search fits well with the
multi-probe LSH schemes ... which typically require a large number of
probes.  Applying hybrid search on these LSH schemes for rNNS will be
our future work."

This benchmark implements that future work: a multi-probe index with
L = 10 tables and 8 probes per table (examining 90 buckets per query,
close to the classic L = 50's 50 buckets but with 5x less memory) is
compared against the classic index, both searched classically and
hybridly.

Expected shape: multi-probe reaches comparable recall with far fewer
tables; because it examines *more* buckets per query its collision
volume is at least as large, so the hybrid dispatch pays off at least
as much as on the classic index — confirming the paper's conjecture.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import NUM_QUERIES
from repro.core import HybridSearcher, LSHSearch
from repro.core.calibration import calibrate_cost_model
from repro.core.presets import paper_parameters
from repro.datasets import split_queries
from repro.evaluation import GroundTruth, mean_recall
from repro.evaluation.report import format_table
from repro.index import LSHIndex, MultiProbeLSHIndex

_RADIUS = 0.08


@pytest.fixture(scope="module")
def setup(webspam_bench):
    data, queries = split_queries(webspam_bench.points, num_queries=NUM_QUERIES, seed=0)
    params = paper_parameters(
        "cosine", dim=data.shape[1], radius=_RADIUS, num_tables=10, seed=0
    )
    classic = LSHIndex(
        params.family, k=params.k, num_tables=10, hll_precision=7
    ).build(data)
    params_mp = paper_parameters(
        "cosine", dim=data.shape[1], radius=_RADIUS, num_tables=10, seed=1
    )
    multiprobe = MultiProbeLSHIndex(
        params_mp.family, k=params_mp.k, num_tables=10, hll_precision=7, num_probes=8
    ).build(data)
    model = calibrate_cost_model(data, "cosine", seed=0).model
    truth = GroundTruth(data, queries, "cosine")
    return data, queries, classic, multiprobe, model, truth


@pytest.fixture(scope="module")
def report(setup):
    data, queries, classic, multiprobe, model, truth = setup
    truth_sets = truth.neighbor_sets(_RADIUS)
    rows = []
    searchers = {}
    for name, index in (("classic L=10", classic), ("multiprobe L=10 p=8", multiprobe)):
        for mode, searcher in (
            ("lsh", LSHSearch(index)),
            ("hybrid", HybridSearcher(index, model)),
        ):
            start = time.perf_counter()
            results = [searcher.query(q, _RADIUS) for q in queries]
            elapsed = time.perf_counter() - start
            recall = mean_recall([r.ids for r in results], truth_sets)
            rows.append((f"{name}/{mode}", elapsed, recall))
            searchers[f"{name}/{mode}"] = searcher
    print("\n=== Extension: hybrid on multi-probe LSH (webspam-like) ===")
    print(format_table(
        ["configuration", "total s", "recall"],
        [[n, f"{s:.3f}", f"{r:.3f}"] for n, s, r in rows],
    ))
    return rows, searchers


@pytest.mark.parametrize(
    "config", ["classic L=10/hybrid", "multiprobe L=10 p=8/hybrid"]
)
def test_hybrid_query_set(benchmark, config, setup, report):
    _, searchers = report
    searcher = searchers[config]
    _, queries, *_ = setup

    def run():
        return [searcher.query(q, _RADIUS).output_size for q in queries[:15]]

    benchmark(run)


def test_multiprobe_improves_recall(report):
    """More probed buckets -> recall at least matches the classic index."""
    rows, _ = report
    recalls = {name: r for name, _, r in rows}
    assert recalls["multiprobe L=10 p=8/lsh"] >= recalls["classic L=10/lsh"] - 0.02


def test_hybrid_recall_dominates_lsh(report):
    """On both indexes, hybrid recall >= pure LSH recall (linear is exact)."""
    rows, _ = report
    recalls = {name: r for name, _, r in rows}
    assert recalls["classic L=10/hybrid"] >= recalls["classic L=10/lsh"] - 1e-9
    assert (
        recalls["multiprobe L=10 p=8/hybrid"]
        >= recalls["multiprobe L=10 p=8/lsh"] - 1e-9
    )
