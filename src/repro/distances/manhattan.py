"""Manhattan (L1) distance, the metric of the CoverType experiment.

The paper indexes CoverType (``d = 54``) under L1 using p-stable LSH
with Cauchy projections (Datar et al.).
"""

from __future__ import annotations

import numpy as np

from repro.distances.base import Metric, register_metric

__all__ = ["manhattan_distance", "manhattan_distance_batch", "MANHATTAN"]


def manhattan_distance(x: np.ndarray, y: np.ndarray) -> float:
    """L1 distance between two equal-length vectors.

    Examples
    --------
    >>> manhattan_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
    7.0
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    return float(np.abs(x - y).sum())


def manhattan_distance_batch(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """L1 distances from every row of ``points`` to ``query``."""
    points = np.asarray(points, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    return np.abs(points - query).sum(axis=1)


MANHATTAN = register_metric(
    Metric(
        name="l1",
        scalar=manhattan_distance,
        batch=manhattan_distance_batch,
        description="Manhattan distance (p-stable LSH with Cauchy projections)",
        aliases=("manhattan", "cityblock"),
    )
)
