"""All-pairs distance computation for calibration and dataset analysis.

The alpha/beta calibration of Section 4.2 and the distance-distribution
diagnostics used to pick experiment radii both need pairwise distances
between a query sample and a data sample; this module provides a single
entry point that reuses the registered batch kernels.
"""

from __future__ import annotations

import numpy as np

from repro.distances.base import Metric, get_metric

__all__ = ["pairwise_distances"]


def pairwise_distances(
    queries: np.ndarray, points: np.ndarray, metric: str | Metric
) -> np.ndarray:
    """Distance matrix ``D[i, j] = metric(queries[i], points[j])``.

    Parameters
    ----------
    queries:
        ``(q, d)`` array of query vectors.
    points:
        ``(n, d)`` array of data vectors.
    metric:
        Metric name or :class:`~repro.distances.base.Metric`.

    Returns
    -------
    numpy.ndarray
        ``(q, n)`` float matrix.

    Notes
    -----
    This loops over queries and calls the metric's batch kernel per row,
    which is O(q) kernel launches but keeps memory at ``O(n)`` per call;
    for the sample sizes used in calibration (100 x 10,000 in the paper)
    this is instantaneous.
    """
    metric = get_metric(metric)
    queries = np.asarray(queries)
    points = np.asarray(points)
    if queries.ndim == 1:
        queries = queries[None, :]
    out = np.empty((queries.shape[0], points.shape[0]), dtype=np.float64)
    for i, q in enumerate(queries):
        out[i] = metric.distances_to(points, q)
    return out
