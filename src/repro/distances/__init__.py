"""Distance substrate: the metrics the paper's LSH families target.

The paper evaluates on four metrics — L2 (Corel), L1 (CoverType),
cosine distance (Webspam) and Hamming distance on 64-bit fingerprints
(MNIST) — and notes the framework applies to "an arbitrary
high-dimensional space and distance measure that allows LSH".  This
package provides each metric twice:

* a scalar kernel ``f(x, y) -> float`` (one pair), and
* a batch kernel ``f_batch(X, q) -> ndarray`` (all rows of ``X``
  against ``q``), which is what the linear-scan and verification steps
  actually use.

:func:`get_metric` resolves metric names (``"l2"``, ``"l1"``,
``"cosine"``, ``"hamming"``, ``"jaccard"``) to :class:`Metric` objects
so the rest of the library is metric-agnostic.
"""

from repro.distances.base import Metric, available_metrics, get_metric, register_metric
from repro.distances.cosine import cosine_distance, cosine_distance_batch
from repro.distances.euclidean import euclidean_distance, euclidean_distance_batch
from repro.distances.hamming import hamming_distance, hamming_distance_batch
from repro.distances.jaccard import jaccard_distance, jaccard_distance_batch
from repro.distances.manhattan import manhattan_distance, manhattan_distance_batch
from repro.distances.matrix import pairwise_distances

__all__ = [
    "Metric",
    "available_metrics",
    "get_metric",
    "register_metric",
    "euclidean_distance",
    "euclidean_distance_batch",
    "manhattan_distance",
    "manhattan_distance_batch",
    "hamming_distance",
    "hamming_distance_batch",
    "cosine_distance",
    "cosine_distance_batch",
    "jaccard_distance",
    "jaccard_distance_batch",
    "pairwise_distances",
]
