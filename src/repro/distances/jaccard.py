"""Jaccard distance on binary set-membership vectors.

Not one of the paper's four evaluation metrics, but the paper cites
MinHash (Broder et al.) among the LSH families the hybrid strategy
supports, so we provide the metric + family pair for completeness and
for the near-duplicate-web-pages example application the introduction
motivates.
"""

from __future__ import annotations

import numpy as np

from repro.distances.base import Metric, register_metric

__all__ = ["jaccard_distance", "jaccard_distance_batch", "JACCARD"]


def jaccard_distance(x: np.ndarray, y: np.ndarray) -> float:
    """``1 - |x ∩ y| / |x ∪ y|`` for 0/1 indicator vectors.

    Two empty sets are at distance 0 by convention.

    Examples
    --------
    >>> jaccard_distance(np.array([1, 1, 0, 0]), np.array([1, 0, 1, 0]))
    0.6666666666666667
    """
    x = np.asarray(x).astype(bool)
    y = np.asarray(y).astype(bool)
    union = np.count_nonzero(x | y)
    if union == 0:
        return 0.0
    inter = np.count_nonzero(x & y)
    return float(1.0 - inter / union)


def jaccard_distance_batch(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Jaccard distances from every row of ``points`` to ``query``."""
    points = np.asarray(points).astype(bool)
    query = np.asarray(query).astype(bool)
    inter = (points & query).sum(axis=1).astype(np.float64)
    union = (points | query).sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        sims = np.where(union == 0.0, 1.0, inter / np.maximum(union, 1e-300))
    return 1.0 - sims


JACCARD = register_metric(
    Metric(
        name="jaccard",
        scalar=jaccard_distance,
        batch=jaccard_distance_batch,
        description="Jaccard distance on 0/1 set indicators (MinHash LSH)",
        aliases=(),
    )
)
