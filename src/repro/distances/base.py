"""Metric abstraction and registry.

A :class:`Metric` bundles the scalar kernel, the batch kernel and a
human-readable name.  The registry maps canonical names and their
aliases to metric instances; LSH families declare which metric they are
sensitive for by naming it, and the hybrid searcher looks the kernels up
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.exceptions import UnknownMetricError

__all__ = ["Metric", "register_metric", "get_metric", "available_metrics"]

ScalarKernel = Callable[[np.ndarray, np.ndarray], float]
BatchKernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class Metric:
    """A distance measure with scalar and vectorised kernels.

    Attributes
    ----------
    name:
        Canonical lower-case name (``"l2"``, ``"cosine"``, ...).
    scalar:
        ``scalar(x, y)`` -> distance between two vectors.
    batch:
        ``batch(X, q)`` -> 1-d array of distances from each row of the
        ``(n, d)`` matrix ``X`` to the vector ``q``.
    description:
        One-line summary for reports and ``repr``.
    aliases:
        Alternative registry keys (e.g. ``"euclidean"`` for ``"l2"``).
    """

    name: str
    scalar: ScalarKernel
    batch: BatchKernel
    description: str = ""
    aliases: tuple[str, ...] = field(default=())
    #: Optional serving-side fast path: ``prepare(points)`` computes a
    #: reusable per-point state (e.g. squared norms for L2) and
    #: ``batch_prepared(points, query, state)`` consumes it, returning
    #: **bit-identical** distances to ``batch(points, query)``.  Batch
    #: engines amortise ``prepare`` across many queries; metrics without
    #: a prepared kernel fall back to ``batch`` transparently.
    prepare: Callable[[np.ndarray], np.ndarray] | None = None
    batch_prepared: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray] | None = None

    def __call__(self, x: np.ndarray, y: np.ndarray) -> float:
        """Scalar distance between ``x`` and ``y``."""
        return self.scalar(x, y)

    def distances_to(self, points: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Distances from every row of ``points`` to ``query``."""
        return self.batch(points, query)

    def prepare_points(self, points: np.ndarray):
        """Per-point reusable state for :meth:`distances_to_prepared`.

        Returns ``None`` when the metric has no prepared kernel.
        """
        if self.prepare is None:
            return None
        return self.prepare(points)

    def distances_to_prepared(
        self, points: np.ndarray, query: np.ndarray, state
    ) -> np.ndarray:
        """Like :meth:`distances_to`, reusing prepared per-point state.

        Falls back to the plain batch kernel when ``state`` is ``None``;
        the returned distances are bit-identical either way.
        """
        if state is None or self.batch_prepared is None:
            return self.batch(points, query)
        return self.batch_prepared(points, query, state)

    def __repr__(self) -> str:
        return f"Metric({self.name!r})"


_REGISTRY: dict[str, Metric] = {}


def register_metric(metric: Metric) -> Metric:
    """Add ``metric`` to the registry under its name and aliases.

    Re-registering an existing name replaces it, which keeps the module
    reload-friendly (useful in notebooks and in the test suite).
    """
    _REGISTRY[metric.name.lower()] = metric
    for alias in metric.aliases:
        _REGISTRY[alias.lower()] = metric
    return metric


def get_metric(name: str | Metric) -> Metric:
    """Resolve a metric by name (case-insensitive) or pass one through.

    Raises
    ------
    UnknownMetricError
        If ``name`` is not registered.
    """
    if isinstance(name, Metric):
        return name
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(available_metrics()))
        raise UnknownMetricError(f"unknown metric {name!r}; known metrics: {known}")
    return _REGISTRY[key]


def available_metrics() -> list[str]:
    """Sorted list of canonical metric names (aliases excluded)."""
    return sorted({m.name for m in _REGISTRY.values()})
