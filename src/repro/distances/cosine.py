"""Cosine distance, the metric of the Webspam experiment.

The paper indexes Webspam (``d = 254``) under cosine distance using
SimHash (Charikar's random-hyperplane LSH).  We define cosine distance
as ``1 - cos(x, y)`` so it lies in ``[0, 2]``; the paper's Webspam radii
``r in [0.05, 0.1]`` are on this scale.  SimHash is sensitive for the
*angular* distance ``theta / pi``; the conversion between the two lives
with the SimHash family (:mod:`repro.hashing.simhash`), not here.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distances.base import Metric, register_metric

__all__ = ["cosine_distance", "cosine_distance_batch", "COSINE"]


def cosine_distance(x: np.ndarray, y: np.ndarray) -> float:
    """``1 - cosine_similarity(x, y)``; zero vectors are at distance 1.

    Examples
    --------
    >>> cosine_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
    1.0
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    nx = math.sqrt(float(np.dot(x, x)))
    ny = math.sqrt(float(np.dot(y, y)))
    if nx == 0.0 or ny == 0.0:
        return 1.0
    sim = float(np.dot(x, y)) / (nx * ny)
    # Round-off can push |sim| a hair above 1; clamp so distances stay in [0, 2].
    sim = max(-1.0, min(1.0, sim))
    return 1.0 - sim


def cosine_distance_batch(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Cosine distances from every row of ``points`` to ``query``.

    Rows with zero norm (and the all-zero query) get distance 1, the
    same convention as the scalar kernel.
    """
    points = np.asarray(points, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    qnorm = math.sqrt(float(np.dot(query, query)))
    norms = np.sqrt(np.einsum("ij,ij->i", points, points))
    if qnorm == 0.0:
        return np.ones(points.shape[0])
    dots = points @ query
    with np.errstate(divide="ignore", invalid="ignore"):
        sims = dots / (norms * qnorm)
    sims = np.where(norms == 0.0, 0.0, sims)
    np.clip(sims, -1.0, 1.0, out=sims)
    return 1.0 - sims


COSINE = register_metric(
    Metric(
        name="cosine",
        scalar=cosine_distance,
        batch=cosine_distance_batch,
        description="Cosine distance 1 - cos(x, y) in [0, 2] (SimHash LSH)",
        aliases=("angular",),
    )
)
