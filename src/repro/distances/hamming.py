"""Hamming distance on binary vectors, the metric of the MNIST experiment.

The paper converts MNIST images to 64-bit SimHash fingerprints and then
runs bit-sampling LSH under Hamming distance.  Vectors here are dense
``uint8``/bool arrays of 0/1 entries (one dimension per bit); the
fingerprint pipeline in :mod:`repro.datasets.fingerprints` produces this
representation.  Keeping bits as array entries (rather than packed
machine words) makes bit sampling a plain column lookup, matching the
formulation of Indyk–Motwani.
"""

from __future__ import annotations

import numpy as np

from repro.distances.base import Metric, register_metric

__all__ = ["hamming_distance", "hamming_distance_batch", "HAMMING"]


def hamming_distance(x: np.ndarray, y: np.ndarray) -> float:
    """Number of positions where binary vectors ``x`` and ``y`` differ.

    Examples
    --------
    >>> hamming_distance(np.array([0, 1, 1, 0]), np.array([1, 1, 0, 0]))
    2.0
    """
    x = np.asarray(x)
    y = np.asarray(y)
    return float(np.count_nonzero(x != y))


def hamming_distance_batch(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Hamming distances from every row of ``points`` to ``query``.

    Operates on the raw integer/bool representation; no float conversion
    is needed, which keeps the "distance computation is very cheap for
    binary data" property the paper notes for MNIST.
    """
    points = np.asarray(points)
    query = np.asarray(query)
    return (points != query).sum(axis=1).astype(np.float64)


HAMMING = register_metric(
    Metric(
        name="hamming",
        scalar=hamming_distance,
        batch=hamming_distance_batch,
        description="Hamming distance on 0/1 vectors (bit-sampling LSH)",
        aliases=(),
    )
)
