"""Euclidean (L2) distance, the metric of the Corel experiment.

The paper indexes Corel Images (``d = 32``) under L2 using the p-stable
LSH of Datar et al. with Gaussian projections; the verification step
(Step S3 of the cost model) computes these distances for every
candidate, which is why a fast batch kernel matters.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distances.base import Metric, register_metric

__all__ = [
    "euclidean_distance",
    "euclidean_distance_batch",
    "euclidean_prepare",
    "euclidean_distance_batch_prepared",
    "EUCLIDEAN",
]


def euclidean_distance(x: np.ndarray, y: np.ndarray) -> float:
    """L2 distance between two equal-length vectors.

    Examples
    --------
    >>> euclidean_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
    5.0
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    diff = x - y
    return math.sqrt(float(np.dot(diff, diff)))


def euclidean_distance_batch(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """L2 distances from every row of ``points`` to ``query``.

    Uses the expansion ``|x - q|^2 = |x|^2 - 2 x.q + |q|^2`` which turns
    the scan into one matrix-vector product; negative round-off is
    clipped before the square root.
    """
    points = np.asarray(points, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    sq = np.einsum("ij,ij->i", points, points) - 2.0 * (points @ query) + np.dot(query, query)
    np.clip(sq, 0.0, None, out=sq)
    return np.sqrt(sq)


def euclidean_prepare(points: np.ndarray) -> np.ndarray:
    """Reusable squared row norms — the query-independent einsum term."""
    points = np.asarray(points, dtype=np.float64)
    return np.einsum("ij,ij->i", points, points)


def euclidean_distance_batch_prepared(
    points: np.ndarray, query: np.ndarray, norms: np.ndarray
) -> np.ndarray:
    """:func:`euclidean_distance_batch` with the row norms precomputed.

    Bit-identical: ``norms`` holds exactly the per-row einsum values the
    plain kernel recomputes (the reduction is per row, so a cached or
    gathered norm carries the same float), and the remaining ops match
    term for term.
    """
    points = np.asarray(points, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    sq = norms - 2.0 * (points @ query) + np.dot(query, query)
    np.clip(sq, 0.0, None, out=sq)
    return np.sqrt(sq)


EUCLIDEAN = register_metric(
    Metric(
        name="l2",
        scalar=euclidean_distance,
        batch=euclidean_distance_batch,
        description="Euclidean distance (p-stable LSH with Gaussian projections)",
        aliases=("euclidean",),
        prepare=euclidean_prepare,
        batch_prepared=euclidean_distance_batch_prepared,
    )
)
