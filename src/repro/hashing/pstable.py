"""p-stable LSH for L1 and L2 distances (Datar, Immorlica, Indyk, Mirrokni).

An atomic hash projects onto a random p-stable direction ``a``, shifts
by a uniform offset ``b ~ U[0, w)`` and quantises into buckets of width
``w``: ``h(x) = floor((a . x + b) / w)``.  For ``p = 2`` the projections
are Gaussian (sensitive for L2); for ``p = 1`` they are Cauchy
(sensitive for L1).

Collision probabilities at distance ``c`` (with ``t = w / c``):

* L2 (Gaussian):  ``p(c) = 1 - 2 Phi(-t) - 2/(sqrt(2 pi) t) (1 - exp(-t^2 / 2))``
* L1 (Cauchy):    ``p(c) = (2/pi) arctan(t) - 1/(pi t) ln(1 + t^2)``

The paper pins the experiment parameters to ``k = 8, w = 4r`` for L1
(CoverType) and ``k = 7, w = 2r`` for L2 (Corel), chosen so the
reporting guarantee ``delta = 10%`` holds with ``L = 50``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from repro.exceptions import ConfigurationError
from repro.hashing.base import LSHFamily
from repro.hashing.composite import CompositeHash
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["PStableLSH", "l1_collision_probability", "l2_collision_probability"]


def l2_collision_probability(w: float, distance: float) -> float:
    """Gaussian p-stable collision probability at distance ``c``.

    ``p(c) = 1 - 2 Phi(-w/c) - (2 / (sqrt(2 pi) w/c)) (1 - e^{-(w/c)^2/2})``;
    approaches 1 as ``c -> 0`` and 0 as ``c -> inf``.
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    if distance == 0.0:
        return 1.0
    t = w / distance
    p = (
        1.0
        - 2.0 * norm.cdf(-t)
        - (2.0 / (math.sqrt(2.0 * math.pi) * t)) * (1.0 - math.exp(-(t * t) / 2.0))
    )
    return float(min(1.0, max(0.0, p)))


def l1_collision_probability(w: float, distance: float) -> float:
    """Cauchy p-stable collision probability at distance ``c``.

    ``p(c) = (2/pi) arctan(w/c) - (1 / (pi w/c)) ln(1 + (w/c)^2)``.
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    if distance == 0.0:
        return 1.0
    t = w / distance
    p = (2.0 / math.pi) * math.atan(t) - (1.0 / (math.pi * t)) * math.log1p(t * t)
    return float(min(1.0, max(0.0, p)))


class PStableLSH(LSHFamily):
    """p-stable projection LSH for L1 (``p=1``) or L2 (``p=2``).

    Parameters
    ----------
    dim:
        Vector dimensionality.
    w:
        Bucket width of the quantiser.  The paper sets ``w`` relative to
        the query radius (``4r`` for L1, ``2r`` for L2).
    p:
        1 for Cauchy/L1, 2 for Gaussian/L2.
    seed:
        Randomness for projection sampling.

    Examples
    --------
    >>> fam = PStableLSH(dim=4, w=2.0, p=2, seed=0)
    >>> fam.collision_probability(0.0)
    1.0
    """

    def __init__(self, dim: int, w: float = 1.0, p: int = 2, seed: RandomState = None) -> None:
        super().__init__(dim, seed=seed)
        if p not in (1, 2):
            raise ConfigurationError(f"p must be 1 (Cauchy/L1) or 2 (Gaussian/L2), got {p}")
        self.p = int(p)
        self.w = check_positive(w, "w")
        self.metric_name = "l1" if self.p == 1 else "l2"

    def sample(self, k: int) -> CompositeHash:
        """Draw ``k`` stable projections with uniform offsets."""
        k = check_positive_int(k, "k")
        if self.p == 2:
            projections = self._rng.standard_normal(size=(self.dim, k))
        else:
            projections = self._rng.standard_cauchy(size=(self.dim, k))
        offsets = self._rng.uniform(0.0, self.w, size=k)
        width = self.w

        def kernel(points: np.ndarray) -> np.ndarray:
            shifted = np.asarray(points, dtype=np.float64) @ projections + offsets
            return np.floor(shifted / width).astype(np.int64)

        return CompositeHash(kernel, k=k, dim=self.dim)

    def sample_batch(self, k: int, num_tables: int):
        """Stacked projections for all ``L`` tables (one matmul per query)."""
        from repro.hashing.batched import BatchedHash

        k = check_positive_int(k, "k")
        num_tables = check_positive_int(num_tables, "num_tables")
        total = k * num_tables
        if self.p == 2:
            projections = self._rng.standard_normal(size=(self.dim, total))
        else:
            projections = self._rng.standard_cauchy(size=(self.dim, total))
        offsets = self._rng.uniform(0.0, self.w, size=total)
        width = self.w

        def fused(points: np.ndarray) -> np.ndarray:
            shifted = np.asarray(points, dtype=np.float64) @ projections + offsets
            return np.floor(shifted / width).astype(np.int64)

        return BatchedHash(
            fused,
            k=k,
            num_tables=num_tables,
            dim=self.dim,
            kind="pstable",
            params={"projections": projections, "offsets": offsets},
        )

    def collision_probability(self, distance: float) -> float:
        """Exact ``p(c)`` for the configured stable distribution and width."""
        if self.p == 2:
            return l2_collision_probability(self.w, distance)
        return l1_collision_probability(self.w, distance)

    def collision_probability_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorised ``p(c)``; zero distances map to probability 1."""
        distances = np.asarray(distances, dtype=np.float64)
        out = np.ones_like(distances)
        positive = distances > 0
        t = np.empty_like(distances)
        t[positive] = self.w / distances[positive]
        tp = t[positive]
        if self.p == 2:
            vals = (
                1.0
                - 2.0 * norm.cdf(-tp)
                - (2.0 / (math.sqrt(2.0 * math.pi) * tp)) * (1.0 - np.exp(-(tp * tp) / 2.0))
            )
        else:
            vals = (2.0 / math.pi) * np.arctan(tp) - (1.0 / (math.pi * tp)) * np.log1p(tp * tp)
        out[positive] = np.clip(vals, 0.0, 1.0)
        return out

    def __repr__(self) -> str:
        return f"PStableLSH(dim={self.dim}, p={self.p}, w={self.w})"
