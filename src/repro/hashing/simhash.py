"""SimHash — random-hyperplane LSH for cosine distance (Charikar, STOC 2002).

An atomic hash is the sign of a projection onto a random Gaussian
direction.  Two vectors at angle ``theta`` collide with probability
``1 - theta / pi``.  The paper uses SimHash twice:

* directly, as the LSH family for Webspam under cosine distance, and
* as a dimensionality-reduction device, producing the 64-bit
  fingerprints of MNIST (see :mod:`repro.datasets.fingerprints`).

Radius convention: this library measures cosine *distance*
``r = 1 - cos(theta)`` (see :mod:`repro.distances.cosine`), so the
collision probability at radius ``r`` is ``1 - arccos(1 - r) / pi``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing.base import LSHFamily
from repro.hashing.composite import CompositeHash
from repro.utils.validation import check_positive_int

__all__ = ["SimHashLSH"]


class SimHashLSH(LSHFamily):
    """Random-hyperplane hashing over ``R^dim`` under cosine distance.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    seed:
        Randomness for hyperplane sampling.

    Examples
    --------
    >>> fam = SimHashLSH(dim=16, seed=0)
    >>> g = fam.sample(k=6)
    >>> set(np.unique(g.hash_matrix(np.random.default_rng(0).normal(size=(10, 16))))) <= {0, 1}
    True
    """

    metric_name = "cosine"

    def sample(self, k: int) -> CompositeHash:
        """Draw ``k`` random hyperplanes; hash values are sign bits (0/1)."""
        k = check_positive_int(k, "k")
        planes = self._rng.standard_normal(size=(self.dim, k))

        def kernel(points: np.ndarray) -> np.ndarray:
            projections = np.asarray(points, dtype=np.float64) @ planes
            return (projections > 0.0).astype(np.int64)

        return CompositeHash(kernel, k=k, dim=self.dim)

    def sample_batch(self, k: int, num_tables: int):
        """Stacked hyperplanes for all ``L`` tables (one matmul per query)."""
        from repro.hashing.batched import BatchedHash

        k = check_positive_int(k, "k")
        num_tables = check_positive_int(num_tables, "num_tables")
        planes = self._rng.standard_normal(size=(self.dim, k * num_tables))

        def fused(points: np.ndarray) -> np.ndarray:
            projections = np.asarray(points, dtype=np.float64) @ planes
            return (projections > 0.0).astype(np.int64)

        return BatchedHash(
            fused,
            k=k,
            num_tables=num_tables,
            dim=self.dim,
            kind="simhash",
            params={"planes": planes},
        )

    def collision_probability(self, distance: float) -> float:
        """``1 - arccos(1 - r) / pi`` for cosine distance ``r`` in [0, 2]."""
        if not 0.0 <= distance <= 2.0:
            raise ValueError(f"cosine distance must be in [0, 2], got {distance}")
        theta = math.acos(max(-1.0, min(1.0, 1.0 - distance)))
        return 1.0 - theta / math.pi

    def collision_probability_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorised angular collision probability."""
        distances = np.asarray(distances, dtype=np.float64)
        cos = np.clip(1.0 - distances, -1.0, 1.0)
        return 1.0 - np.arccos(cos) / math.pi
