"""Fused hashing across all ``L`` tables of an index.

Step S1 of the query pipeline hashes the query once per table.  Done
naively that is ``L`` separate kernel invocations — pure Python/numpy
dispatch overhead that at laptop scale can dominate an easy query's
cost and distort the Figure 2 comparison (the paper's analysis assumes
S1 is "very small").  :class:`BatchedHash` closes over one *stacked*
kernel covering all ``L * k`` atomic functions, so hashing a query is
a single vectorised call, and hashing the whole dataset at build time
is one chunked pass.

Families override :meth:`LSHFamily.sample_batch` to provide a truly
fused kernel (stacked projection matrices, concatenated coordinate
lists); the base-class fallback simply loops over ``L`` independent
:class:`~repro.hashing.composite.CompositeHash` draws, preserving
semantics for custom families.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.utils.validation import check_matrix, check_vector

__all__ = ["BatchedHash"]

# Rows hashed per chunk when materialising the (n, L, k) build tensor;
# bounds transient memory at chunk * L * k * 8 bytes.
_CHUNK_ROWS = 16_384

FusedKernel = Callable[[np.ndarray], np.ndarray]


class BatchedHash:
    """All ``L`` composite hash functions of an index, fused.

    Parameters
    ----------
    fused_kernel:
        Vectorised map from an ``(n, d)`` matrix to the ``(n, L * k)``
        matrix of all atomic hash values, laid out table-major (table
        ``t`` owns columns ``t*k .. (t+1)*k``).
    k:
        Concatenation width per table.
    num_tables:
        ``L``.
    dim:
        Expected input dimensionality.
    """

    __slots__ = ("_kernel", "k", "num_tables", "dim", "kind", "params")

    def __init__(
        self,
        fused_kernel: FusedKernel,
        k: int,
        num_tables: int,
        dim: int,
        kind: str = "generic",
        params: dict[str, np.ndarray] | None = None,
    ) -> None:
        self._kernel = fused_kernel
        self.k = int(k)
        self.num_tables = int(num_tables)
        self.dim = int(dim)
        #: family tag + the sampled arrays behind the kernel; present for
        #: the built-in families so indexes can be serialised without
        #: pickling closures (see :mod:`repro.index.serialize`).
        self.kind = kind
        self.params = params

    def hash_points(self, points: np.ndarray) -> np.ndarray:
        """Hash the whole dataset; returns the ``(n, L, k)`` build tensor.

        Computed in row chunks so transient memory stays bounded for
        large ``n``.
        """
        points = check_matrix(points, dim=self.dim, name="points")
        n = points.shape[0]
        out = np.empty((n, self.num_tables, self.k), dtype=np.int64)
        for start in range(0, n, _CHUNK_ROWS):
            stop = min(start + _CHUNK_ROWS, n)
            flat = self._kernel(points[start:stop])
            out[start:stop] = flat.reshape(stop - start, self.num_tables, self.k)
        return out

    def query_rows(self, query: np.ndarray) -> np.ndarray:
        """Hash one query vector; returns the ``(L, k)`` hash rows."""
        query = check_vector(query, dim=self.dim, name="query")
        flat = self._kernel(query[None, :])
        return flat.reshape(self.num_tables, self.k)

    def __repr__(self) -> str:
        return f"BatchedHash(L={self.num_tables}, k={self.k}, dim={self.dim})"
