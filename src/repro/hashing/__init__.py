"""LSH family substrate.

One module per family the paper uses or cites, plus the machinery that
turns atomic ``(r, cr, p1, p2)``-sensitive functions into the composite
``g = (h_1, ..., h_k)`` functions of the classic multi-table scheme:

* :class:`BitSamplingLSH` — Indyk–Motwani bit sampling for Hamming
  distance (MNIST fingerprints experiment);
* :class:`SimHashLSH` — Charikar's random-hyperplane hashing for
  cosine/angular distance (Webspam experiment);
* :class:`PStableLSH` — Datar et al.'s p-stable projections with bucket
  width ``w`` for L1 (Cauchy) and L2 (Gaussian) (CoverType and Corel);
* :class:`MinHashLSH` — Broder et al.'s min-wise hashing for Jaccard;
* :class:`CompositeHash` — a concatenation of ``k`` atomic functions
  yielding hashable bucket keys;
* :func:`concatenation_width` — the paper's rule
  ``k = ceil(log(1 - delta^{1/L}) / log p1)``;
* :mod:`repro.hashing.probing` — multi-probe perturbation sequences for
  the paper's future-work extension.
"""

from repro.hashing.base import (
    LSHFamily,
    available_families,
    family_for_metric,
    get_family,
    register_family,
)
from repro.hashing.bit_sampling import BitSamplingLSH
from repro.hashing.composite import CompositeHash, encode_rows
from repro.hashing.minhash import MinHashLSH
from repro.hashing.params import (
    concatenation_width,
    expected_recall,
    success_probability,
)
from repro.hashing.probing import hamming_probe_keys, perturbation_offsets
from repro.hashing.pstable import PStableLSH, l1_collision_probability, l2_collision_probability
from repro.hashing.simhash import SimHashLSH

__all__ = [
    "LSHFamily",
    "family_for_metric",
    "register_family",
    "get_family",
    "available_families",
    "BitSamplingLSH",
    "SimHashLSH",
    "PStableLSH",
    "MinHashLSH",
    "CompositeHash",
    "encode_rows",
    "concatenation_width",
    "success_probability",
    "expected_recall",
    "l1_collision_probability",
    "l2_collision_probability",
    "perturbation_offsets",
    "hamming_probe_keys",
]
