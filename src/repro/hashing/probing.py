"""Multi-probe perturbation sequences (Lv et al., VLDB 2007).

The paper's conclusion singles out multi-probe LSH as the natural host
for hybrid search: multi-probe trades tables for probes by also looking
into buckets *near* ``g(q)``, which multiplies the number of buckets
examined per query — exactly the regime where estimating ``candSize``
before paying the de-duplication cost matters most.

We implement the structural part of multi-probe generically:

* :func:`perturbation_offsets` enumerates perturbation vectors
  ``delta in {-1, 0, +1}^k`` ordered by a simple cost heuristic (number
  of perturbed coordinates first, then lexicographic), suitable for the
  integer hash values of p-stable families;
* :func:`hamming_probe_keys` enumerates bit-flip probes for the binary
  hash values of SimHash / bit sampling.

Both return *probe generators* over composite hash rows; the
:class:`~repro.index.multiprobe_index.MultiProbeLSHIndex` applies them
per table.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.hashing.composite import encode_rows
from repro.utils.validation import check_positive_int

__all__ = ["perturbation_offsets", "hamming_probe_keys"]


def perturbation_offsets(k: int, num_probes: int) -> list[np.ndarray]:
    """Perturbation vectors for integer-valued composite hashes.

    Enumerates ``{-1, 0, +1}^k`` offsets (excluding the zero vector,
    which is the home bucket and always probed first by the index) in
    increasing order of the number of non-zero entries — the standard
    "fewer perturbations are more probable" heuristic — truncated to
    ``num_probes`` entries.

    Parameters
    ----------
    k:
        Width of the composite hash.
    num_probes:
        Number of *additional* buckets to probe per table.

    Returns
    -------
    list of int64 arrays of length ``k``.
    """
    k = check_positive_int(k, "k")
    if num_probes < 0:
        raise ValueError(f"num_probes must be >= 0, got {num_probes}")
    offsets: list[np.ndarray] = []
    # Perturb 1 coordinate, then 2, ... until we have enough probes.
    for weight in range(1, k + 1):
        if len(offsets) >= num_probes:
            break
        for positions in itertools.combinations(range(k), weight):
            for signs in itertools.product((-1, 1), repeat=weight):
                delta = np.zeros(k, dtype=np.int64)
                for pos, sign in zip(positions, signs):
                    delta[pos] = sign
                offsets.append(delta)
                if len(offsets) >= num_probes:
                    return offsets
    return offsets


def hamming_probe_keys(hash_row: np.ndarray, num_probes: int) -> list[bytes]:
    """Probe keys for binary composite hashes (SimHash, bit sampling).

    Yields the bucket keys obtained by flipping one bit, then two bits,
    of ``hash_row`` (values in {0, 1}), truncated to ``num_probes``
    keys.  The home bucket is *not* included.

    Parameters
    ----------
    hash_row:
        Length-``k`` 0/1 hash row of the query in one table.
    num_probes:
        Number of additional buckets to probe in that table.
    """
    if num_probes < 0:
        raise ValueError(f"num_probes must be >= 0, got {num_probes}")
    row = np.asarray(hash_row, dtype=np.int64)
    k = row.shape[0]
    keys: list[bytes] = []
    for weight in (1, 2):
        if len(keys) >= num_probes:
            break
        for positions in itertools.combinations(range(k), weight):
            flipped = row.copy()
            flipped[list(positions)] ^= 1
            keys.append(encode_rows(flipped[None, :])[0])
            if len(keys) >= num_probes:
                return keys
    return keys
