"""Multi-probe perturbation sequences (Lv et al., VLDB 2007).

The paper's conclusion singles out multi-probe LSH as the natural host
for hybrid search: multi-probe trades tables for probes by also looking
into buckets *near* ``g(q)``, which multiplies the number of buckets
examined per query — exactly the regime where estimating ``candSize``
before paying the de-duplication cost matters most.

We implement the structural part of multi-probe generically:

* :func:`perturbation_offsets` enumerates perturbation vectors
  ``delta in {-1, 0, +1}^k`` ordered by a simple cost heuristic (number
  of perturbed coordinates first, then lexicographic), suitable for the
  integer hash values of p-stable families;
* :func:`hamming_probe_keys` enumerates bit-flip probes for the binary
  hash values of SimHash / bit sampling;
* :func:`hamming_flip_masks` exposes the same bit-flip sequence as one
  ``(P, k)`` XOR-mask matrix, which is what the frozen multi-probe
  layout applies to a whole ``(q, L, k)`` hash tensor at once.

Both orderings have exactly one home: the probed bucket sequence of the
dict layout (:class:`~repro.index.multiprobe_index.MultiProbeLSHIndex`)
and of the frozen layout
(:class:`~repro.index.frozen_probing.FrozenMultiProbeLSHIndex`) are
derived from the same enumerations, so the two layouts can never
disagree about which buckets a query probes, or in which order.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.hashing.composite import encode_rows
from repro.utils.validation import check_positive_int

__all__ = [
    "perturbation_offsets",
    "hamming_probe_keys",
    "hamming_flip_masks",
    "probe_deltas",
]


def probe_deltas(family, k: int, num_probes: int) -> tuple[bool, np.ndarray]:
    """The probe scheme for ``family``: ``(binary, (P, k) delta matrix)``.

    ``binary`` selects how the deltas apply to a composite hash row —
    XOR for the bit-valued families (SimHash, bit sampling), addition
    for integer-valued p-stable quantisers.  This is the *single*
    classification point shared by the dict layout
    (:class:`~repro.index.multiprobe_index.MultiProbeLSHIndex`) and the
    frozen layout
    (:class:`~repro.index.frozen_probing.FrozenMultiProbeLSHIndex`):
    a family added here changes both layouts together, so they cannot
    disagree about the probed bucket set.  ``P`` may be smaller than
    ``num_probes`` when the enumeration runs dry.
    """
    from repro.hashing.bit_sampling import BitSamplingLSH
    from repro.hashing.simhash import SimHashLSH

    k = check_positive_int(k, "k")
    binary = isinstance(family, SimHashLSH | BitSamplingLSH)
    if num_probes == 0:
        return binary, np.empty((0, k), dtype=np.int64)
    if binary:
        return binary, hamming_flip_masks(k, num_probes)
    offsets = perturbation_offsets(k, num_probes)
    if not offsets:
        return binary, np.empty((0, k), dtype=np.int64)
    return binary, np.stack(offsets)


def perturbation_offsets(k: int, num_probes: int) -> list[np.ndarray]:
    """Perturbation vectors for integer-valued composite hashes.

    Enumerates ``{-1, 0, +1}^k`` offsets (excluding the zero vector,
    which is the home bucket and always probed first by the index) in
    increasing order of the number of non-zero entries — the standard
    "fewer perturbations are more probable" heuristic — truncated to
    ``num_probes`` entries.

    Parameters
    ----------
    k:
        Width of the composite hash.
    num_probes:
        Number of *additional* buckets to probe per table.

    Returns
    -------
    list of int64 arrays of length ``k``.
    """
    k = check_positive_int(k, "k")
    if num_probes < 0:
        raise ValueError(f"num_probes must be >= 0, got {num_probes}")
    offsets: list[np.ndarray] = []
    # Perturb 1 coordinate, then 2, ... until we have enough probes.
    for weight in range(1, k + 1):
        if len(offsets) >= num_probes:
            break
        for positions in itertools.combinations(range(k), weight):
            for signs in itertools.product((-1, 1), repeat=weight):
                delta = np.zeros(k, dtype=np.int64)
                for pos, sign in zip(positions, signs):
                    delta[pos] = sign
                offsets.append(delta)
                if len(offsets) >= num_probes:
                    return offsets
    return offsets


def hamming_flip_masks(k: int, num_probes: int) -> np.ndarray:
    """Bit-flip masks for binary composite hashes, as one XOR matrix.

    Row ``p`` of the returned ``(P, k)`` int64 matrix has ones at the
    positions probe ``p`` flips: one bit first (positions in order),
    then two bits (combinations in lexicographic order), truncated to
    ``num_probes`` rows — the exact sequence
    :func:`hamming_probe_keys` walks, exposed as data so the frozen
    layout can apply every probe of every query and table with one
    vectorised XOR.  ``P`` may be smaller than ``num_probes`` when the
    enumeration runs dry (``k + k(k-1)/2`` flips exist).

    Parameters
    ----------
    k:
        Width of the composite hash.
    num_probes:
        Number of *additional* buckets to probe per table.
    """
    k = check_positive_int(k, "k")
    if num_probes < 0:
        raise ValueError(f"num_probes must be >= 0, got {num_probes}")
    masks: list[np.ndarray] = []
    for weight in (1, 2):
        if len(masks) >= num_probes:
            break
        for positions in itertools.combinations(range(k), weight):
            mask = np.zeros(k, dtype=np.int64)
            mask[list(positions)] = 1
            masks.append(mask)
            if len(masks) >= num_probes:
                break
    if not masks:
        return np.empty((0, k), dtype=np.int64)
    return np.stack(masks)


def hamming_probe_keys(hash_row: np.ndarray, num_probes: int) -> list[bytes]:
    """Probe keys for binary composite hashes (SimHash, bit sampling).

    Yields the bucket keys obtained by flipping one bit, then two bits,
    of ``hash_row`` (values in {0, 1}), truncated to ``num_probes``
    keys.  The home bucket is *not* included.  The flip sequence is
    :func:`hamming_flip_masks` — one enumeration shared with the frozen
    multi-probe layout.

    Parameters
    ----------
    hash_row:
        Length-``k`` 0/1 hash row of the query in one table.
    num_probes:
        Number of additional buckets to probe in that table.
    """
    row = np.asarray(hash_row, dtype=np.int64)
    masks = hamming_flip_masks(row.shape[0], num_probes)
    if masks.shape[0] == 0:
        return []
    return encode_rows(row[None, :] ^ masks)
