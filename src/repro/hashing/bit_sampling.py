"""Bit-sampling LSH for Hamming distance (Indyk and Motwani, STOC 1998).

An atomic hash simply reads one uniformly random coordinate of the
binary vector; a point pair at Hamming distance ``h`` in ``{0, 1}^d``
collides with probability exactly ``1 - h / d``.  The paper uses this
family on MNIST after reducing images to 64-bit SimHash fingerprints,
so ``d = 64`` in that experiment.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import LSHFamily
from repro.hashing.composite import CompositeHash
from repro.utils.validation import check_positive_int

__all__ = ["BitSamplingLSH"]


class BitSamplingLSH(LSHFamily):
    """Bit sampling over ``{0, 1}^dim`` under Hamming distance.

    Parameters
    ----------
    dim:
        Number of bits per vector (e.g. 64 for SimHash fingerprints).
    seed:
        Randomness for coordinate sampling.

    Examples
    --------
    >>> fam = BitSamplingLSH(dim=8, seed=0)
    >>> g = fam.sample(k=4)
    >>> g.hash_one(np.array([0, 1, 0, 1, 1, 0, 0, 1])).shape
    (4,)
    """

    metric_name = "hamming"

    def sample(self, k: int) -> CompositeHash:
        """Draw ``k`` random coordinates (with replacement, as in the paper)."""
        k = check_positive_int(k, "k")
        coords = self._rng.integers(0, self.dim, size=k)

        def kernel(points: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(points[:, coords], dtype=np.int64)

        return CompositeHash(kernel, k=k, dim=self.dim)

    def sample_batch(self, k: int, num_tables: int):
        """Concatenated coordinate samples for all ``L`` tables."""
        from repro.hashing.batched import BatchedHash

        k = check_positive_int(k, "k")
        num_tables = check_positive_int(num_tables, "num_tables")
        coords = self._rng.integers(0, self.dim, size=k * num_tables)

        def fused(points: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(points[:, coords], dtype=np.int64)

        return BatchedHash(
            fused,
            k=k,
            num_tables=num_tables,
            dim=self.dim,
            kind="bit_sampling",
            params={"coords": coords},
        )

    def collision_probability(self, distance: float) -> float:
        """``1 - h/d`` for Hamming distance ``h``, clamped to [0, 1]."""
        if distance < 0:
            raise ValueError(f"distance must be non-negative, got {distance}")
        return max(0.0, 1.0 - distance / self.dim)

    def collision_probability_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorised ``1 - h/d``."""
        distances = np.asarray(distances, dtype=np.float64)
        return np.clip(1.0 - distances / self.dim, 0.0, 1.0)
