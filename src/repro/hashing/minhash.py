"""MinHash — min-wise independent permutations (Broder et al., STOC 1998).

An atomic hash assigns each universe position a random priority and
returns the minimum priority among the positions present in the set;
two sets collide with probability equal to their Jaccard *similarity*
``s``, i.e. ``p(r) = 1 - r`` for Jaccard distance ``r``.

Sets are represented as 0/1 indicator vectors over a universe of size
``dim`` (the same representation :mod:`repro.distances.jaccard` uses),
so hashing a batch is a masked column-min.  Not one of the paper's four
experiments, but listed among the supported families and used by the
near-duplicate-pages example.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import LSHFamily
from repro.hashing.composite import CompositeHash
from repro.utils.validation import check_positive_int

__all__ = ["MinHashLSH"]

# Priority assigned to positions absent from the set: larger than any
# real priority, so empty sets hash to a dedicated sentinel bucket.
_ABSENT = np.iinfo(np.int64).max


class MinHashLSH(LSHFamily):
    """Min-wise hashing over 0/1 indicator vectors under Jaccard distance.

    Parameters
    ----------
    dim:
        Universe size (number of indicator positions).
    seed:
        Randomness for priority sampling.

    Examples
    --------
    >>> fam = MinHashLSH(dim=8, seed=0)
    >>> g = fam.sample(k=2)
    >>> x = np.array([1, 0, 1, 0, 0, 0, 1, 0])
    >>> bool(np.all(g.hash_one(x) == g.hash_one(x)))
    True
    """

    metric_name = "jaccard"

    def sample(self, k: int) -> CompositeHash:
        """Draw ``k`` independent random priority assignments."""
        k = check_positive_int(k, "k")
        # priorities[j, i]: priority of universe position i under hash j.
        priorities = np.stack([self._rng.permutation(self.dim) for _ in range(k)]).astype(np.int64)

        def kernel(points: np.ndarray) -> np.ndarray:
            present = np.asarray(points).astype(bool)
            n = present.shape[0]
            values = np.empty((n, k), dtype=np.int64)
            for j in range(k):
                masked = np.where(present, priorities[j][None, :], _ABSENT)
                values[:, j] = masked.min(axis=1)
            return values

        return CompositeHash(kernel, k=k, dim=self.dim)

    def sample_batch(self, k: int, num_tables: int):
        """Stacked priority tables for all ``L`` tables.

        A query is hashed with one masked-min over the ``(L*k, d)``
        priority matrix; dataset hashing loops per atomic function to
        keep memory at ``O(n * d)``.
        """
        from repro.hashing.batched import BatchedHash
        from repro.utils.validation import check_positive_int

        k = check_positive_int(k, "k")
        num_tables = check_positive_int(num_tables, "num_tables")
        total = k * num_tables
        priorities = np.stack(
            [self._rng.permutation(self.dim) for _ in range(total)]
        ).astype(np.int64)

        def fused(points: np.ndarray) -> np.ndarray:
            present = np.asarray(points).astype(bool)
            n = present.shape[0]
            if n == 1:
                masked = np.where(present[0][None, :], priorities, _ABSENT)
                return masked.min(axis=1)[None, :]
            values = np.empty((n, total), dtype=np.int64)
            for j in range(total):
                masked = np.where(present, priorities[j][None, :], _ABSENT)
                values[:, j] = masked.min(axis=1)
            return values

        return BatchedHash(
            fused,
            k=k,
            num_tables=num_tables,
            dim=self.dim,
            kind="minhash",
            params={"priorities": priorities},
        )

    def collision_probability(self, distance: float) -> float:
        """``1 - r`` for Jaccard distance ``r`` in [0, 1]."""
        if not 0.0 <= distance <= 1.0:
            raise ValueError(f"jaccard distance must be in [0, 1], got {distance}")
        return 1.0 - distance

    def collision_probability_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorised ``1 - r``."""
        distances = np.asarray(distances, dtype=np.float64)
        return np.clip(1.0 - distances, 0.0, 1.0)
