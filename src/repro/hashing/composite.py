"""Composite hash functions ``g = (h_1, ..., h_k)`` and bucket keys.

The classic LSH algorithm concatenates ``k`` atomic hash values to
sharpen the near/far collision-probability gap (``p1^k`` vs ``p2^k``)
and builds one hash table per composite function.  This module supplies
the concatenation machinery shared by every family:

* each family's :meth:`sample` returns a :class:`CompositeHash` holding
  a vectorised ``(n, d) -> (n, k)`` kernel;
* :func:`encode_rows` converts integer hash rows into compact ``bytes``
  keys usable as Python dict keys, which is how the hash tables in
  :mod:`repro.index` store buckets.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.utils.validation import check_matrix, check_vector

__all__ = ["CompositeHash", "encode_rows"]

HashKernel = Callable[[np.ndarray], np.ndarray]


def encode_rows(hash_matrix: np.ndarray) -> list[bytes]:
    """Encode each row of an integer hash matrix as a ``bytes`` key.

    Rows are cast to little-endian int64 before packing so the encoding
    is platform-independent and injective for hash values within int64
    range (all families here produce small integers).

    Parameters
    ----------
    hash_matrix:
        ``(n, k)`` integer array of atomic hash values.

    Returns
    -------
    list[bytes]
        ``n`` keys, each ``8 * k`` bytes.
    """
    arr = np.ascontiguousarray(hash_matrix, dtype="<i8")
    if arr.ndim != 2:
        raise ValueError(f"hash matrix must be 2-d, got shape {arr.shape}")
    row_bytes = arr.view(np.uint8).reshape(arr.shape[0], arr.shape[1] * 8)
    return [row.tobytes() for row in row_bytes]


class CompositeHash:
    """A concatenation of ``k`` atomic LSH functions.

    Instances are produced by :meth:`LSHFamily.sample`; they close over
    the family's sampled randomness (projection matrices, sampled
    coordinates, ...) inside ``kernel``.

    Parameters
    ----------
    kernel:
        Vectorised map from an ``(n, d)`` point matrix to an ``(n, k)``
        integer hash matrix.
    k:
        Number of concatenated atomic functions.
    dim:
        Expected input dimensionality (validated on every call).
    """

    __slots__ = ("_kernel", "k", "dim")

    def __init__(self, kernel: HashKernel, k: int, dim: int) -> None:
        self._kernel = kernel
        self.k = int(k)
        self.dim = int(dim)

    def hash_matrix(self, points: np.ndarray) -> np.ndarray:
        """Hash all rows of ``points``; returns the ``(n, k)`` value matrix."""
        points = check_matrix(points, dim=self.dim, name="points")
        values = self._kernel(points)
        if values.shape != (points.shape[0], self.k):
            raise RuntimeError(
                f"hash kernel returned shape {values.shape}, "
                f"expected {(points.shape[0], self.k)}"
            )
        return values

    def hash_one(self, point: np.ndarray) -> np.ndarray:
        """Hash a single vector; returns the length-``k`` value row."""
        point = check_vector(point, dim=self.dim, name="point")
        return self.hash_matrix(point[None, :])[0]

    def keys(self, points: np.ndarray) -> list[bytes]:
        """Bucket keys for all rows of ``points``."""
        return encode_rows(self.hash_matrix(points))

    def key_one(self, point: np.ndarray) -> bytes:
        """Bucket key of a single vector."""
        point = check_vector(point, dim=self.dim, name="point")
        return encode_rows(self.hash_matrix(point[None, :]))[0]

    def __repr__(self) -> str:
        return f"CompositeHash(k={self.k}, dim={self.dim})"
