"""Parameter rules tying ``(L, delta, p1)`` to the concatenation width ``k``.

The paper fixes the number of tables ``L`` and derives

    ``k = ceil( log(1 - delta^{1/L}) / log p1 )``

(the practical E2LSH setting) so that a point at distance ``r`` — which
collides with the query under one atomic hash with probability ``p1`` —
is reported with probability close to ``1 - delta``.  Derivation: a
near point is *missed* by one table with probability ``1 - p1^k`` and
by all ``L`` independent tables with probability ``(1 - p1^k)^L``;
requiring that to be ``<= delta`` and solving gives the *real-valued*
width ``k* = log(1 - delta^{1/L}) / log p1``.  Note the rounding
direction: the strict ``>= 1 - delta`` guarantee needs ``floor(k*)``,
but the paper (following E2LSH) takes ``ceil(k*)`` — trading a hair of
recall for substantially fewer collisions.  The success probability
therefore *brackets* ``1 - delta``:
``success(ceil(k*)) <= 1 - delta <= success(floor(k*))``.

This module also provides the forward map :func:`success_probability`
(used by tests to verify the guarantee) and :func:`expected_recall`
(integrating the per-point success probability over a batch of true
neighbors at their actual distances).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_delta, check_positive_int

__all__ = ["concatenation_width", "success_probability", "expected_recall"]


def concatenation_width(num_tables: int, delta: float, p1: float, max_k: int = 64) -> int:
    """The paper's rule ``k = ceil(log(1 - delta^{1/L}) / log p1)``.

    Parameters
    ----------
    num_tables:
        ``L``, the number of hash tables.
    delta:
        Per-point failure probability of the rNNR guarantee, in (0, 1).
    p1:
        Collision probability of one atomic hash at the query radius;
        must lie in (0, 1].  ``p1 = 1`` (e.g. radius 0) means any ``k``
        satisfies the guarantee, so the widest allowed ``k`` is
        returned to maximise selectivity.
    max_k:
        Safety cap: extremely small ``p1`` would demand enormous ``k``
        (and thus empty buckets everywhere); values are clamped here.

    Returns
    -------
    int
        ``k >= 1``.
    """
    num_tables = check_positive_int(num_tables, "num_tables")
    delta = check_delta(delta)
    if not 0.0 < p1 <= 1.0:
        raise ConfigurationError(f"p1 must be in (0, 1], got {p1}")
    max_k = check_positive_int(max_k, "max_k")
    if p1 == 1.0:
        return max_k
    # delta^(1/L) is the per-table miss budget; log of its complement
    # over log p1 is the exact real-valued width.
    numerator = math.log(1.0 - delta ** (1.0 / num_tables))
    k = math.ceil(numerator / math.log(p1))
    return int(min(max(k, 1), max_k))


def success_probability(k: int, num_tables: int, p1: float) -> float:
    """``1 - (1 - p1^k)^L`` — probability a radius-``r`` point is reported.

    This is the guarantee the width rule inverts; the property-based
    tests assert ``success_probability(concatenation_width(L, delta, p1),
    L, p1) >= 1 - delta`` for all valid inputs.
    """
    k = check_positive_int(k, "k")
    num_tables = check_positive_int(num_tables, "num_tables")
    if not 0.0 <= p1 <= 1.0:
        raise ConfigurationError(f"p1 must be in [0, 1], got {p1}")
    return 1.0 - (1.0 - p1**k) ** num_tables


def expected_recall(
    collision_probabilities: np.ndarray, k: int, num_tables: int
) -> float:
    """Expected recall over true neighbors with the given atomic ``p(c)``.

    Each true neighbor at distance ``c`` is found with probability
    ``1 - (1 - p(c)^k)^L``; the expected recall of a query is the mean
    of that over its neighbor set.  Used by the evaluation harness to
    report *analytic* recall next to the measured one.

    Parameters
    ----------
    collision_probabilities:
        Array of one-atomic-hash collision probabilities, one entry per
        true neighbor (at that neighbor's actual distance).
    k, num_tables:
        The index parameters.
    """
    probs = np.asarray(collision_probabilities, dtype=np.float64)
    if probs.size == 0:
        return 1.0
    if np.any((probs < 0.0) | (probs > 1.0)):
        raise ConfigurationError("collision probabilities must lie in [0, 1]")
    per_point = 1.0 - (1.0 - probs**k) ** num_tables
    return float(per_point.mean())
