"""The LSH family abstraction.

Definition 2 of the paper (after Indyk–Motwani): a family ``H`` is
``(r, cr, p1, p2)``-sensitive for a distance ``f`` when near points
(``f <= r``) collide with probability at least ``p1`` and far points
(``f >= cr``) with probability at most ``p2 < p1``.

Concrete families subclass :class:`LSHFamily` and provide

* :meth:`LSHFamily.sample` — draw a :class:`~repro.hashing.composite.CompositeHash`
  of ``k`` independent atomic functions (one per call; the index draws
  ``L`` of them), and
* :meth:`LSHFamily.collision_probability` — the exact ``p(c)`` curve of
  one atomic function at distance ``c``, which both the parameter rule
  ``k = ceil(log(1 - delta^{1/L}) / log p1)`` and the recall analysis
  consume.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.distances import Metric, get_metric
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "LSHFamily",
    "family_for_metric",
    "register_family",
    "get_family",
    "available_families",
]


class LSHFamily(abc.ABC):
    """Abstract base class for locality-sensitive hash families.

    Parameters
    ----------
    dim:
        Dimensionality of the vectors to be hashed.
    seed:
        Master randomness; every :meth:`sample` call consumes from it,
        so two families constructed with the same seed draw identical
        hash functions in the same order.
    """

    #: canonical name of the metric this family is sensitive for
    metric_name: str = ""

    def __init__(self, dim: int, seed: RandomState = None) -> None:
        if dim < 1:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        self.dim = int(dim)
        self._rng = ensure_rng(seed)

    @property
    def metric(self) -> Metric:
        """The :class:`~repro.distances.base.Metric` this family targets."""
        return get_metric(self.metric_name)

    @abc.abstractmethod
    def sample(self, k: int) -> CompositeHashProtocol:
        """Draw a composite hash of ``k`` independent atomic functions."""

    def sample_batch(self, k: int, num_tables: int) -> BatchedHash:
        """Draw the ``L`` composite functions of an index, fused.

        The returned :class:`~repro.hashing.batched.BatchedHash` hashes
        a query into all ``L`` tables with one vectorised call (the
        Step-S1 fast path).  This generic fallback loops over ``L``
        independent :meth:`sample` draws; projection-based families
        override it with a genuinely stacked kernel.
        """
        from repro.hashing.batched import BatchedHash

        composites = [self.sample(k) for _ in range(num_tables)]

        def fused(points: np.ndarray) -> np.ndarray:
            return np.concatenate([g.hash_matrix(points) for g in composites], axis=1)

        return BatchedHash(fused, k=k, num_tables=num_tables, dim=self.dim)

    @abc.abstractmethod
    def collision_probability(self, distance: float) -> float:
        """``Pr[h(x) = h(y)]`` for one atomic function at the given distance."""

    def p1(self, radius: float) -> float:
        """Collision probability at the query radius (the ``p1`` of Def. 2)."""
        return self.collision_probability(radius)

    def collision_probability_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`collision_probability` (default: python loop)."""
        distances = np.asarray(distances, dtype=np.float64)
        return np.array([self.collision_probability(float(c)) for c in distances.ravel()]).reshape(
            distances.shape
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dim={self.dim})"


class CompositeHashProtocol:
    """Structural type for what :meth:`LSHFamily.sample` returns.

    Documented here for reference; the concrete implementation is
    :class:`repro.hashing.composite.CompositeHash`.
    """

    def hash_matrix(self, points: np.ndarray) -> np.ndarray:  # pragma: no cover
        """``(n, d) -> (n, k)`` integer hash values."""
        raise NotImplementedError

    def keys(self, points: np.ndarray) -> list[bytes]:  # pragma: no cover
        """``(n, d) -> n`` hashable bucket keys."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Family registry (the distance-registry pattern applied to hash families)
# ----------------------------------------------------------------------
#: name -> (factory(dim, seed=..., **kwargs) -> LSHFamily, description)
_FAMILY_REGISTRY: dict[str, tuple] = {}
#: canonical metric name -> family name used by default for that metric
_METRIC_DEFAULT_FAMILY: dict[str, str] = {}


def register_family(
    name: str,
    factory,
    *,
    metric: str | None = None,
    aliases: tuple[str, ...] = (),
    description: str = "",
):
    """Register an LSH-family factory under ``name`` (and ``aliases``).

    ``factory(dim, seed=None, **kwargs)`` must return an
    :class:`LSHFamily`.  When ``metric`` is given the family becomes the
    default :func:`family_for_metric` resolves for that metric, which is
    how third-party families slot into spec-driven index construction
    (:class:`repro.api.IndexSpec` resolves ``hash_family`` here).
    Re-registering a name replaces it (reload-friendly, like
    :func:`repro.distances.register_metric`).
    """
    key = name.lower()
    _FAMILY_REGISTRY[key] = (factory, description)
    for alias in aliases:
        _FAMILY_REGISTRY[alias.lower()] = (factory, description)
    if metric is not None:
        _METRIC_DEFAULT_FAMILY[get_metric(metric).name] = key
    return factory


def get_family(name: str) -> Any:
    """Resolve a family factory by registered name (case-insensitive)."""
    _ensure_builtin_families()
    key = name.lower()
    if key not in _FAMILY_REGISTRY:
        from repro.exceptions import ConfigurationError

        known = ", ".join(available_families())
        raise ConfigurationError(
            f"unknown hash family {name!r}; registered families: {known}"
        )
    return _FAMILY_REGISTRY[key][0]


def available_families() -> list[str]:
    """Sorted list of registered family names (aliases included)."""
    _ensure_builtin_families()
    return sorted(_FAMILY_REGISTRY)


_BUILTIN_FAMILIES_LOADED = False


def _ensure_builtin_families() -> None:
    """Register the paper's families on first registry access.

    Lazy so that ``repro.hashing.base`` keeps importing before the
    concrete family modules (which subclass :class:`LSHFamily`).
    User registrations made *before* this runs win: a name already in
    the registry is not overwritten and an already-claimed metric
    default is left alone.
    """
    global _BUILTIN_FAMILIES_LOADED
    if _BUILTIN_FAMILIES_LOADED:
        return
    _BUILTIN_FAMILIES_LOADED = True
    from repro.hashing.bit_sampling import BitSamplingLSH
    from repro.hashing.minhash import MinHashLSH
    from repro.hashing.pstable import PStableLSH
    from repro.hashing.simhash import SimHashLSH

    def builtin(name, factory, metric, aliases=(), description=""):
        if name not in _FAMILY_REGISTRY:
            _FAMILY_REGISTRY[name] = (factory, description)
        for alias in aliases:
            _FAMILY_REGISTRY.setdefault(alias, _FAMILY_REGISTRY[name])
        _METRIC_DEFAULT_FAMILY.setdefault(get_metric(metric).name, name)

    builtin(
        "bit_sampling", BitSamplingLSH, "hamming",
        description="bit sampling for Hamming distance",
    )
    builtin(
        "simhash", SimHashLSH, "cosine",
        description="random-hyperplane SimHash for cosine distance",
    )
    builtin(
        "pstable_l1",
        lambda dim, seed=None, **kw: PStableLSH(dim, p=1, seed=seed, **kw),
        "l1",
        description="Cauchy p-stable projections for L1",
    )
    builtin(
        "pstable_l2",
        lambda dim, seed=None, **kw: PStableLSH(dim, p=2, seed=seed, **kw),
        "l2",
        aliases=("pstable",),
        description="Gaussian p-stable projections for L2",
    )
    builtin(
        "minhash", MinHashLSH, "jaccard",
        description="MinHash for Jaccard distance on binary vectors",
    )


def family_for_metric(
    metric: str, dim: int, seed: RandomState = None, **kwargs
) -> LSHFamily:
    """Construct the default LSH family for a metric name.

    This is the mapping the paper's experiments use: bit sampling for
    Hamming, SimHash for cosine, Cauchy p-stable for L1, Gaussian
    p-stable for L2, MinHash for Jaccard — resolved through the family
    registry, so :func:`register_family` can extend or override it.

    Parameters
    ----------
    metric:
        One of ``"hamming"``, ``"cosine"``, ``"l1"``, ``"l2"``,
        ``"jaccard"`` (or a registered alias).
    dim:
        Vector dimensionality.
    seed:
        Randomness for hash-function sampling.
    **kwargs:
        Extra family parameters; p-stable families accept ``w`` (bucket
        width), which is required for them.
    """
    _ensure_builtin_families()
    name = get_metric(metric).name
    family_name = _METRIC_DEFAULT_FAMILY.get(name)
    if family_name is None:
        from repro.exceptions import UnknownMetricError

        raise UnknownMetricError(f"no default LSH family for metric {metric!r}")
    return get_family(family_name)(dim, seed=seed, **kwargs)
