"""Hybrid LSH: faster near neighbors reporting in high-dimensional space.

A from-scratch reproduction of Ninh Pham's EDBT 2017 paper.  The
package implements the full stack: distance metrics, LSH families
(bit sampling, SimHash, p-stable, MinHash), HyperLogLog bucket
sketches, the multi-table (and multi-probe) index, the computational
cost model, and the hybrid per-query dispatch between LSH-based search
and linear search — plus the synthetic dataset stand-ins and the
evaluation harness regenerating every table and figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import HybridLSH, CostModel
>>> rng = np.random.default_rng(0)
>>> points = rng.normal(size=(2000, 32))
>>> searcher = HybridLSH(points, metric="l2", radius=2.0,
...                      cost_model=CostModel.from_ratio(6.0), seed=1)
>>> result = searcher.query(points[0])
>>> 0 in result.ids
True
"""

from repro.core import (
    CostModel,
    HybridLSH,
    HybridSearcher,
    LinearScan,
    LSHSearch,
    QueryResult,
    QueryStats,
    Strategy,
    calibrate_cost_model,
    paper_parameters,
)
from repro.distances import get_metric
from repro.hashing import (
    BitSamplingLSH,
    MinHashLSH,
    PStableLSH,
    SimHashLSH,
    concatenation_width,
    family_for_metric,
)
from repro.index import CoveringLSHIndex, LSHIndex, MultiProbeLSHIndex
from repro.index.serialize import load_index, save_index
from repro.service import (
    BatchQueryEngine,
    QueryResultCache,
    QueryService,
    ShardedHybridIndex,
)
from repro.sketches import HyperLogLog

__version__ = "1.0.0"

__all__ = [
    "HybridLSH",
    "HybridSearcher",
    "LSHSearch",
    "LinearScan",
    "CostModel",
    "calibrate_cost_model",
    "QueryResult",
    "QueryStats",
    "Strategy",
    "paper_parameters",
    "LSHIndex",
    "MultiProbeLSHIndex",
    "CoveringLSHIndex",
    "save_index",
    "load_index",
    "BatchQueryEngine",
    "ShardedHybridIndex",
    "QueryResultCache",
    "QueryService",
    "HyperLogLog",
    "BitSamplingLSH",
    "SimHashLSH",
    "PStableLSH",
    "MinHashLSH",
    "family_for_metric",
    "concatenation_width",
    "get_metric",
    "__version__",
]
