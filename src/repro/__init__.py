"""Hybrid LSH: faster near neighbors reporting in high-dimensional space.

A from-scratch reproduction of Ninh Pham's EDBT 2017 paper.  The
package implements the full stack: distance metrics, LSH families
(bit sampling, SimHash, p-stable, MinHash), HyperLogLog bucket
sketches, the multi-table (and multi-probe) index, the computational
cost model, and the hybrid per-query dispatch between LSH-based search
and linear search — plus the synthetic dataset stand-ins and the
evaluation harness regenerating every table and figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import Index, IndexSpec, QuerySpec
>>> rng = np.random.default_rng(0)
>>> points = rng.normal(size=(2000, 32))
>>> index = Index.build(points, IndexSpec(metric="l2", radius=2.0, seed=1))
>>> result = index.query(QuerySpec(points[0]))
>>> 0 in result.ids
True
"""

from repro.api import (
    AdaptivePolicy,
    BatchOutcome,
    Index,
    IndexSpec,
    QueryOutcome,
    QuerySpec,
    available_estimators,
    available_families,
    get_estimator,
    get_family,
    register_estimator,
    register_family,
)
from repro.api.deprecations import deprecated_front_door as _deprecated_front_door
from repro.core import (
    CostModel,
    HybridSearcher,
    LinearScan,
    LSHSearch,
    QueryResult,
    QueryStats,
    Strategy,
    calibrate_cost_model,
    paper_parameters,
)
from repro.core import HybridLSH as _HybridLSH
from repro.distances import get_metric
from repro.hashing import (
    BitSamplingLSH,
    MinHashLSH,
    PStableLSH,
    SimHashLSH,
    concatenation_width,
    family_for_metric,
)
from repro.index import CoveringLSHIndex, LSHIndex, MultiProbeLSHIndex
from repro.index.serialize import load_index, save_index
from repro.service import QueryResultCache
from repro.service import BatchQueryEngine as _BatchQueryEngine
from repro.service import QueryService as _QueryService
from repro.service import ShardedHybridIndex as _ShardedHybridIndex
from repro.sketches import HyperLogLog

# Legacy front doors: fully functional, but constructing one through the
# top-level package warns (once) that repro.Index is the supported path.
HybridLSH = _deprecated_front_door(_HybridLSH, "repro.Index.build(points, IndexSpec(...))")
QueryService = _deprecated_front_door(
    _QueryService, "repro.Index.build(points, IndexSpec(cache_size=...))"
)
BatchQueryEngine = _deprecated_front_door(
    _BatchQueryEngine, "repro.Index.build(points, IndexSpec(...))"
)
ShardedHybridIndex = _deprecated_front_door(
    _ShardedHybridIndex, "repro.Index.build(points, IndexSpec(num_shards=...))"
)

__version__ = "1.1.0"

__all__ = [
    "AdaptivePolicy",
    "BatchOutcome",
    "Index",
    "IndexSpec",
    "QueryOutcome",
    "QuerySpec",
    "register_family",
    "get_family",
    "available_families",
    "register_estimator",
    "get_estimator",
    "available_estimators",
    "HybridLSH",
    "HybridSearcher",
    "LSHSearch",
    "LinearScan",
    "CostModel",
    "calibrate_cost_model",
    "QueryResult",
    "QueryStats",
    "Strategy",
    "paper_parameters",
    "LSHIndex",
    "MultiProbeLSHIndex",
    "CoveringLSHIndex",
    "save_index",
    "load_index",
    "BatchQueryEngine",
    "ShardedHybridIndex",
    "QueryResultCache",
    "QueryService",
    "HyperLogLog",
    "BitSamplingLSH",
    "SimHashLSH",
    "PStableLSH",
    "MinHashLSH",
    "family_for_metric",
    "concatenation_width",
    "get_metric",
    "__version__",
]
