"""Cardinality-estimator registry — pluggable ``candSize`` estimation.

The hybrid dispatch of Algorithm 2 needs one number per query: the
estimated count of *distinct* candidates among the query's ``L``
buckets.  The paper uses merged HyperLogLog sketches; the estimator
ablation additionally measures KMV and exact counting.  This registry
names those procedures so spec-driven construction
(:class:`repro.api.IndexSpec`) can resolve them — and third-party
estimators slot in via :func:`register_estimator`, the same pattern as
:func:`repro.distances.register_metric` and
:func:`repro.hashing.base.register_family`.

An estimator is a callable ``estimate(index, lookup) -> float`` where
``index`` is a built :class:`~repro.index.lsh_index.LSHIndex` and
``lookup`` the query's :class:`~repro.index.lsh_index.QueryLookup`.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["register_estimator", "get_estimator", "available_estimators"]

Estimator = Callable[["LSHIndex", "QueryLookup"], float]  # noqa: F821

_ESTIMATOR_REGISTRY: dict[str, tuple] = {}


def register_estimator(
    name: str,
    estimator: Estimator,
    *,
    aliases: tuple[str, ...] = (),
    description: str = "",
) -> Estimator:
    """Register ``estimator`` under ``name`` (and ``aliases``).

    Re-registering a name replaces it (reload-friendly).  Returns the
    estimator so the function can be used as a decorator-style helper.
    """
    _ESTIMATOR_REGISTRY[name.lower()] = (estimator, description)
    for alias in aliases:
        _ESTIMATOR_REGISTRY[alias.lower()] = (estimator, description)
    return estimator


def get_estimator(name: str) -> Estimator:
    """Resolve an estimator by registered name (case-insensitive)."""
    _ensure_builtin_estimators()
    key = name.lower()
    if key not in _ESTIMATOR_REGISTRY:
        from repro.exceptions import ConfigurationError

        known = ", ".join(available_estimators())
        raise ConfigurationError(
            f"unknown cardinality estimator {name!r}; registered: {known}"
        )
    return _ESTIMATOR_REGISTRY[key][0]


def available_estimators() -> list[str]:
    """Sorted list of registered estimator names (aliases included)."""
    _ensure_builtin_estimators()
    return sorted(_ESTIMATOR_REGISTRY)


def _hll_estimate(index, lookup) -> float:
    return index.merged_sketch(lookup).estimate()


def _kmv_estimate(index, lookup) -> float:
    from repro.sketches.kmv import KMinValues

    sketch = KMinValues(k=128, seed=1)
    for bucket in lookup.nonempty_buckets():
        sketch.add_batch(bucket.ids)
    return sketch.estimate()


def _exact_estimate(index, lookup) -> float:
    from repro.sketches.exact_counter import ExactDistinctCounter

    counter = ExactDistinctCounter()
    for bucket in lookup.nonempty_buckets():
        counter.add_batch(bucket.ids)
    return counter.estimate()


_BUILTIN_ESTIMATORS_LOADED = False


def _ensure_builtin_estimators() -> None:
    """Register the built-ins once; user registrations made first win."""
    global _BUILTIN_ESTIMATORS_LOADED
    if _BUILTIN_ESTIMATORS_LOADED:
        return
    _BUILTIN_ESTIMATORS_LOADED = True
    for name, estimator, aliases, description in (
        (
            "hll", _hll_estimate, ("hyperloglog",),
            "merged per-bucket HyperLogLog sketches (the paper's O(mL) path)",
        ),
        ("kmv", _kmv_estimate, (), "K-Minimum-Values over the raw bucket id lists"),
        ("exact", _exact_estimate, (), "exact distinct count (pays the Step-S2 cost upfront)"),
    ):
        if name not in _ESTIMATOR_REGISTRY:
            _ESTIMATOR_REGISTRY[name] = (estimator, description)
        for alias in aliases:
            _ESTIMATOR_REGISTRY.setdefault(alias, _ESTIMATOR_REGISTRY[name])
