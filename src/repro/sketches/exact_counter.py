"""Exact distinct counting — the baseline the sketches are measured against.

The paper's Step S2 removes duplicates with "a hash table or a bitvector
of n bits"; doing that *just to know the candidate-set size* costs time
proportional to ``#collisions``, which is exactly the cost the hybrid
strategy wants to predict before paying it.  This class packages the
exact approach behind the same interface as the sketches so the
ablation benchmark (A3) and the estimator tests can swap it in.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SketchError

__all__ = ["ExactDistinctCounter"]


class ExactDistinctCounter:
    """Set-based exact distinct counter over integer element ids."""

    __slots__ = ("_seen",)

    def __init__(self) -> None:
        self._seen: set[int] = set()

    def add(self, element: int) -> None:
        """Insert one element id."""
        self._seen.add(int(element))

    def add_batch(self, elements: np.ndarray) -> None:
        """Insert many element ids at once."""
        self._seen.update(int(e) for e in np.asarray(elements).ravel())

    def estimate(self) -> float:
        """The exact distinct count (named ``estimate`` for interface parity)."""
        return float(len(self._seen))

    def is_empty(self) -> bool:
        """True if no element has ever been inserted."""
        return not self._seen

    def merge_in_place(self, other: ExactDistinctCounter) -> ExactDistinctCounter:
        """Set union with ``other``."""
        if not isinstance(other, ExactDistinctCounter):
            raise SketchError(
                f"cannot merge ExactDistinctCounter with {type(other).__name__}"
            )
        self._seen |= other._seen
        return self

    @property
    def memory_bytes(self) -> int:
        """Rough footprint: 8 bytes per stored id plus set overhead estimate."""
        return 28 * len(self._seen)

    def __len__(self) -> int:
        return len(self._seen)

    def __repr__(self) -> str:
        return f"ExactDistinctCounter(count={len(self._seen)})"
