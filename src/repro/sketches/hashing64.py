"""64-bit integer hashing shared by all sketches.

Every sketch in this package consumes *point indices* (integers in
``[0, n)``).  HLL theory assumes elements are hashed to uniform 64-bit
strings; we use the SplitMix64 finaliser, a well-studied bijective
mixer whose output passes the usual avalanche tests, salted with the
sketch seed so independent experiments decorrelate.

Because the mixing is deterministic per ``(value, seed)``, two sketches
built with the same seed map any shared element to the same register
and rank — the property that makes bucket-sketch *merging* (Algorithm 2
of the paper) exact for the union.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hash64", "split_hash", "rho_positions"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def hash64(values: np.ndarray | int, seed: int = 0) -> np.ndarray:
    """SplitMix64-mix ``values`` (ints or int arrays) into uniform uint64.

    Parameters
    ----------
    values:
        Scalar int or integer array; negative values are not supported
        (point indices are always non-negative).
    seed:
        Salt mixed into the input; different seeds give independent
        hash functions for all practical purposes.

    Returns
    -------
    numpy.ndarray
        uint64 array with the same shape as ``values`` (0-d for a
        scalar input).
    """
    v = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (v + np.uint64(seed) * _GOLDEN + _GOLDEN)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z = z ^ (z >> np.uint64(31))
    return z


def split_hash(hashes: np.ndarray, p: int) -> tuple[np.ndarray, np.ndarray]:
    """Split 64-bit hashes into (register index, remaining bits).

    The top ``p`` bits select one of ``m = 2**p`` registers (stochastic
    averaging); the low ``64 - p`` bits feed the rank computation.

    Returns
    -------
    (indices, rest):
        ``indices`` as int64 in ``[0, 2**p)``; ``rest`` as uint64 with
        the top ``p`` bits cleared.
    """
    h = np.asarray(hashes, dtype=np.uint64)
    shift = np.uint64(64 - p)
    indices = (h >> shift).astype(np.int64)
    mask = np.uint64((1 << (64 - p)) - 1)
    rest = h & mask
    return indices, rest


def rho_positions(rest: np.ndarray, width: int) -> np.ndarray:
    """Position of the leftmost 1-bit in ``width``-bit words (1-based).

    This is the ``rho`` function of Flajolet et al.: for a word whose
    ``width`` low bits are ``0^{k-1} 1 ...`` when read from the most
    significant of those bits, ``rho = k``.  An all-zero word maps to
    ``width + 1`` (geometric tail convention).

    Parameters
    ----------
    rest:
        uint64 array whose low ``width`` bits carry the hash remainder.
    width:
        How many low bits are meaningful (``64 - p`` for precision p).
    """
    r = np.asarray(rest, dtype=np.uint64)
    out = np.full(r.shape, width + 1, dtype=np.uint8)
    found = np.zeros(r.shape, dtype=bool)
    # Scan bits from the most significant of the `width` low bits down;
    # this is a fixed 64-iteration loop at most, fully vectorised per bit.
    for k in range(1, width + 1):
        bit = np.uint64(1) << np.uint64(width - k)
        hit = (~found) & ((r & bit) != 0)
        out[hit] = k
        found |= hit
        if found.all():
            break
    return out
