"""Bloom filter — an approximate-membership structure for duplicate removal.

The cost model's ``alpha`` is "the average cost of removing a duplicate"
(Step S2).  The classic implementations the paper mentions are a hash
set or an n-bit bitvector; a Bloom filter is the third standard option
when ``n`` bits per query is too much.  We provide it so the S2-cost
ablation can compare all three duplicate-removal mechanisms and so the
near-duplicate example has a compact seen-set.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sketches.hashing64 import hash64

__all__ = ["BloomFilter"]


class BloomFilter:
    """Standard Bloom filter over integer element ids.

    Parameters
    ----------
    capacity:
        Expected number of distinct insertions.
    error_rate:
        Target false-positive probability at ``capacity`` insertions;
        the bit count and hash count are sized from it the usual way
        (``bits = -n ln eps / ln^2 2``, ``hashes = bits/n * ln 2``).
    seed:
        Base salt; hash ``i`` uses ``seed + i``.
    """

    __slots__ = ("capacity", "error_rate", "seed", "num_bits", "num_hashes", "bits", "count")

    def __init__(self, capacity: int, error_rate: float = 0.01, seed: int = 0) -> None:
        if not isinstance(capacity, int | np.integer) or isinstance(capacity, bool) or capacity < 1:
            raise ConfigurationError(f"capacity must be a positive integer, got {capacity!r}")
        if not 0.0 < error_rate < 1.0:
            raise ConfigurationError(f"error_rate must be in (0, 1), got {error_rate}")
        self.capacity = int(capacity)
        self.error_rate = float(error_rate)
        self.seed = int(seed)
        self.num_bits = max(8, int(math.ceil(-capacity * math.log(error_rate) / (math.log(2) ** 2))))
        self.num_hashes = max(1, int(round(self.num_bits / capacity * math.log(2))))
        self.bits = np.zeros(self.num_bits, dtype=bool)
        self.count = 0

    def _positions(self, element: int) -> list[int]:
        return [
            int(hash64(np.uint64(element), seed=self.seed + i)) % self.num_bits
            for i in range(self.num_hashes)
        ]

    def add(self, element: int) -> None:
        """Insert one element id."""
        for pos in self._positions(element):
            self.bits[pos] = True
        self.count += 1

    def __contains__(self, element: int) -> bool:
        """Approximate membership: no false negatives, bounded false positives."""
        return all(self.bits[pos] for pos in self._positions(element))

    def add_if_new(self, element: int) -> bool:
        """Insert and report whether the element was (probably) unseen.

        This is the one-pass duplicate-removal primitive the S2 step
        needs: returns ``True`` for first sightings, ``False`` for
        (probable) duplicates.
        """
        positions = self._positions(element)
        seen = all(self.bits[pos] for pos in positions)
        if not seen:
            for pos in positions:
                self.bits[pos] = True
            self.count += 1
        return not seen

    @property
    def expected_false_positive_rate(self) -> float:
        """Current FP probability given the number of insertions so far."""
        if self.count == 0:
            return 0.0
        exponent = -self.num_hashes * self.count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    @property
    def memory_bytes(self) -> int:
        """Bit-array footprint in bytes if packed (num_bits / 8)."""
        return (self.num_bits + 7) // 8

    def __repr__(self) -> str:
        return (
            f"BloomFilter(capacity={self.capacity}, bits={self.num_bits}, "
            f"hashes={self.num_hashes}, inserted={self.count})"
        )
