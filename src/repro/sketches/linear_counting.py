"""Linear (bitmap) counting — Whang et al.'s classic distinct estimator.

Serves two roles in this reproduction:

* it is the small-range correction inside HyperLogLog (reimplemented
  there inline on the register zero-count), and
* it is an ablation baseline (A3 in DESIGN.md): a bitmap of ``m`` bits
  with estimate ``m * ln(m / V)`` where ``V`` is the number of unset
  bits.  Unlike HLL its error explodes once the bitmap saturates, which
  the ablation benchmark demonstrates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches.hashing64 import hash64

__all__ = ["LinearCounter"]


class LinearCounter:
    """Bitmap distinct-count estimator over integer element ids.

    Parameters
    ----------
    m:
        Number of bits in the map.
    seed:
        Hash salt; counters merge only with equal ``m`` and ``seed``.
    """

    __slots__ = ("m", "seed", "bitmap")

    def __init__(self, m: int = 1024, seed: int = 0) -> None:
        if not isinstance(m, int | np.integer) or isinstance(m, bool) or m < 1:
            raise ConfigurationError(f"m must be a positive integer, got {m!r}")
        self.m = int(m)
        self.seed = int(seed)
        self.bitmap = np.zeros(self.m, dtype=bool)

    def add(self, element: int) -> None:
        """Insert one element id."""
        h = int(hash64(np.uint64(element), seed=self.seed))
        self.bitmap[h % self.m] = True

    def add_batch(self, elements: np.ndarray) -> None:
        """Insert many element ids at once."""
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return
        h = hash64(elements, seed=self.seed)
        self.bitmap[(h % np.uint64(self.m)).astype(np.int64)] = True

    def estimate(self) -> float:
        """``m * ln(m / V)``; ``inf`` when the bitmap is saturated."""
        zeros = int(np.count_nonzero(~self.bitmap))
        if zeros == 0:
            return math.inf
        return self.m * math.log(self.m / zeros)

    def is_empty(self) -> bool:
        """True if no element has ever been inserted."""
        return not bool(self.bitmap.any())

    def merge_in_place(self, other: LinearCounter) -> LinearCounter:
        """Union with ``other`` (bitwise OR); lossless for unions."""
        if not isinstance(other, LinearCounter):
            raise SketchError(f"cannot merge LinearCounter with {type(other).__name__}")
        if self.m != other.m or self.seed != other.seed:
            raise SketchError(
                f"incompatible counters: (m={self.m}, seed={self.seed}) vs "
                f"(m={other.m}, seed={other.seed})"
            )
        self.bitmap |= other.bitmap
        return self

    @property
    def memory_bytes(self) -> int:
        """Bitmap footprint in bytes (stored unpacked for speed)."""
        return int(self.bitmap.nbytes)

    def __repr__(self) -> str:
        est = self.estimate()
        shown = "inf" if math.isinf(est) else f"{est:.1f}"
        return f"LinearCounter(m={self.m}, estimate~{shown})"
