"""HyperLogLog cardinality estimation (Flajolet, Fusy, Gandouet, Meunier).

This is the auxiliary data structure the paper integrates into every LSH
bucket (Algorithm 1) so that the distinct-candidate count ``candSize``
of a query can be estimated by merging the sketches of its ``L`` buckets
(Algorithm 2) in ``O(mL)`` time.

Implementation notes
--------------------
* ``m = 2**p`` registers of one byte each; elements are point indices
  hashed by :func:`repro.sketches.hashing64.hash64`.
* The raw estimator is ``alpha_m * m^2 / sum_j 2^{-M[j]}`` with the
  bias constants from the paper (0.673 / 0.697 / 0.709 for m = 16 / 32 /
  64 and ``0.7213 / (1 + 1.079/m)`` beyond).
* Small-range correction: when the raw estimate is below ``5m/2`` and
  some register is zero, fall back to linear counting
  ``m * ln(m / V)`` where ``V`` is the number of zero registers.
* Large-range correction for the 32-bit hash space of the original
  paper is unnecessary with 64-bit hashes at our cardinalities, so it
  is intentionally omitted (documented deviation).
* Merging is register-wise ``max`` and is lossless: the merge of the
  sketches of two sets equals the sketch of their union, which is
  exactly why per-bucket sketches can answer union-of-buckets queries.
* :class:`PrecomputedHllHashes` hashes the whole point universe once at
  index-build time so that inserting a point into the sketches of its
  ``L`` buckets costs one register update each, not one hash each.

The relative standard error is ``1.04 / sqrt(m)``; the paper uses
``m = 128`` (≈ 9.2 %) and suggests ``m = 32`` where the distance kernel
is very cheap.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches.hashing64 import hash64, rho_positions, split_hash

__all__ = ["HyperLogLog", "PrecomputedHllHashes", "alpha_m"]

_MIN_PRECISION = 2
_MAX_PRECISION = 18


def alpha_m(m: int) -> float:
    """Bias-correction constant for ``m`` registers.

    Values follow Flajolet et al.: exact constants for the small
    register counts used in practice, the asymptotic formula otherwise.
    """
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class PrecomputedHllHashes:
    """Per-point HLL hash decomposition, computed once per index build.

    Every bucket sketch of an LSH index hashes the *same* universe of
    point indices with the *same* seed.  Hashing a point therefore
    yields the same ``(register, rank)`` pair in every bucket it enters,
    so we compute that pair once per point here and let
    :meth:`HyperLogLog.add_precomputed` consume it.

    Attributes
    ----------
    registers:
        int64 array, ``registers[i]`` is the register index of point i.
    ranks:
        uint8 array, ``ranks[i]`` is the rho-value of point i.
    """

    def __init__(self, n: int, p: int, seed: int = 0) -> None:
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        _check_precision(p)
        self.n = int(n)
        self.p = int(p)
        self.seed = int(seed)
        hashes = hash64(np.arange(n, dtype=np.uint64), seed=seed)
        self.registers, rest = split_hash(hashes, p)
        self.ranks = rho_positions(rest, 64 - p)

    def pair(self, point_id: int) -> tuple[int, int]:
        """The ``(register, rank)`` pair of one point id."""
        return int(self.registers[point_id]), int(self.ranks[point_id])

    def extend(self, new_n: int) -> None:
        """Grow the precomputed table to cover ids ``0 .. new_n - 1``.

        Supports incremental index insertion: the hash of an id depends
        only on ``(id, seed)``, so existing entries are untouched and
        only the new tail is computed.
        """
        if new_n < self.n:
            raise ConfigurationError(
                f"cannot shrink precomputed hashes from {self.n} to {new_n}"
            )
        if new_n == self.n:
            return
        tail = hash64(np.arange(self.n, new_n, dtype=np.uint64), seed=self.seed)
        tail_registers, rest = split_hash(tail, self.p)
        tail_ranks = rho_positions(rest, 64 - self.p)
        self.registers = np.concatenate([self.registers, tail_registers])
        self.ranks = np.concatenate([self.ranks, tail_ranks])
        self.n = int(new_n)

    def __len__(self) -> int:
        return self.n


class HyperLogLog:
    """A single HyperLogLog sketch over integer element ids.

    Parameters
    ----------
    p:
        Precision; the sketch has ``m = 2**p`` one-byte registers.
        The paper's default ``m = 128`` corresponds to ``p = 7``.
    seed:
        Salt for the element hash.  Sketches are mergeable only if
        built with equal ``p`` and ``seed``.

    Examples
    --------
    >>> sketch = HyperLogLog(p=7, seed=1)
    >>> sketch.add_batch(np.arange(1000))
    >>> 800 < sketch.estimate() < 1200
    True
    """

    __slots__ = ("p", "m", "seed", "registers")

    def __init__(self, p: int = 7, seed: int = 0) -> None:
        _check_precision(p)
        self.p = int(p)
        self.m = 1 << self.p
        self.seed = int(seed)
        self.registers = np.zeros(self.m, dtype=np.uint8)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add(self, element: int) -> None:
        """Insert one element id."""
        h = hash64(np.uint64(element), seed=self.seed)
        idx, rest = split_hash(h.reshape(1), self.p)
        rank = rho_positions(rest, 64 - self.p)
        j = int(idx[0])
        if rank[0] > self.registers[j]:
            self.registers[j] = rank[0]

    def add_batch(self, elements: np.ndarray) -> None:
        """Insert many element ids at once (vectorised)."""
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return
        h = hash64(elements, seed=self.seed)
        idx, rest = split_hash(h, self.p)
        ranks = rho_positions(rest, 64 - self.p)
        np.maximum.at(self.registers, idx, ranks)

    def add_precomputed(self, register: int, rank: int) -> None:
        """Insert a point whose hash pair was precomputed.

        See :class:`PrecomputedHllHashes`; this is the hot path of
        Algorithm 1 (one call per (point, table) insertion).
        """
        if rank > self.registers[register]:
            self.registers[register] = rank

    def add_precomputed_batch(self, registers: np.ndarray, ranks: np.ndarray) -> None:
        """Vectorised :meth:`add_precomputed` over parallel arrays."""
        np.maximum.at(self.registers, registers, ranks)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def raw_estimate(self) -> float:
        """Bias-corrected harmonic-mean estimate, no range corrections."""
        inv_sum = float(np.sum(np.exp2(-self.registers.astype(np.float64))))
        return alpha_m(self.m) * self.m * self.m / inv_sum

    def estimate(self) -> float:
        """Cardinality estimate with small-range (linear counting) correction."""
        raw = self.raw_estimate()
        if raw <= 2.5 * self.m:
            zeros = int(np.count_nonzero(self.registers == 0))
            if zeros > 0:
                return self.m * math.log(self.m / zeros)
        return raw

    @property
    def relative_standard_error(self) -> float:
        """The theoretical relative standard error ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)

    def is_empty(self) -> bool:
        """True if no element has ever been inserted."""
        return bool(np.all(self.registers == 0))

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _check_compatible(self, other: HyperLogLog) -> None:
        if not isinstance(other, HyperLogLog):
            raise SketchError(f"cannot merge HyperLogLog with {type(other).__name__}")
        if self.p != other.p or self.seed != other.seed:
            raise SketchError(
                f"incompatible sketches: (p={self.p}, seed={self.seed}) vs "
                f"(p={other.p}, seed={other.seed})"
            )

    def merge_in_place(self, other: HyperLogLog) -> HyperLogLog:
        """Absorb ``other`` into this sketch (register-wise max)."""
        self._check_compatible(other)
        np.maximum(self.registers, other.registers, out=self.registers)
        return self

    def merge(self, other: HyperLogLog) -> HyperLogLog:
        """Return a new sketch equal to the union of the two operands."""
        self._check_compatible(other)
        out = HyperLogLog(p=self.p, seed=self.seed)
        np.maximum(self.registers, other.registers, out=out.registers)
        return out

    @classmethod
    def merge_many(cls, sketches: list[HyperLogLog]) -> HyperLogLog:
        """Union of a non-empty list of compatible sketches.

        This is the per-query merge of Algorithm 2: the sketches of the
        ``L`` buckets a query lands in are folded into one estimate of
        ``candSize``.
        """
        if not sketches:
            raise SketchError("merge_many requires at least one sketch")
        first = sketches[0]
        out = cls(p=first.p, seed=first.seed)
        for sketch in sketches:
            out.merge_in_place(sketch)
        return out

    def copy(self) -> HyperLogLog:
        """Deep copy (registers are duplicated)."""
        out = HyperLogLog(p=self.p, seed=self.seed)
        out.registers[:] = self.registers
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Register-array footprint in bytes (the O(m) the paper counts)."""
        return int(self.registers.nbytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperLogLog):
            return NotImplemented
        return (
            self.p == other.p
            and self.seed == other.seed
            and bool(np.array_equal(self.registers, other.registers))
        )

    def __repr__(self) -> str:
        return f"HyperLogLog(p={self.p}, m={self.m}, estimate~{self.estimate():.1f})"


def _check_precision(p: int) -> None:
    if not isinstance(p, int | np.integer) or isinstance(p, bool):
        raise ConfigurationError(f"precision p must be an integer, got {p!r}")
    if not _MIN_PRECISION <= p <= _MAX_PRECISION:
        raise ConfigurationError(
            f"precision p must be in [{_MIN_PRECISION}, {_MAX_PRECISION}], got {p}"
        )
