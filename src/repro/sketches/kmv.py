"""K-Minimum-Values (bottom-k) distinct estimator.

Ablation baseline A3: an alternative mergeable cardinality sketch.  A
KMV sketch keeps the ``k`` smallest 64-bit hash values seen; with the
hash space normalised to ``(0, 1]`` the estimator is ``(k - 1) / v_k``
where ``v_k`` is the k-th smallest normalised value.  Merging takes the
union of the two value sets and re-truncates to ``k``.

Compared to HLL: similar accuracy per byte at small cardinalities, but
each stored value is 8 bytes (vs. 1 byte per HLL register) and merge is
``O(k log k)`` rather than ``O(m)``, which is why the paper's choice of
HLL wins for per-bucket sketches.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, SketchError
from repro.sketches.hashing64 import hash64

__all__ = ["KMinValues"]

_HASH_SPACE = float(2**64)


class KMinValues:
    """Bottom-k distinct estimator over integer element ids.

    Parameters
    ----------
    k:
        Number of minimum hash values retained; relative standard error
        is roughly ``1 / sqrt(k - 2)``.
    seed:
        Hash salt; sketches merge only with equal ``k`` and ``seed``.
    """

    __slots__ = ("k", "seed", "_values")

    def __init__(self, k: int = 128, seed: int = 0) -> None:
        if not isinstance(k, int | np.integer) or isinstance(k, bool) or k < 2:
            raise ConfigurationError(f"k must be an integer >= 2, got {k!r}")
        self.k = int(k)
        self.seed = int(seed)
        self._values = np.empty(0, dtype=np.uint64)

    def add(self, element: int) -> None:
        """Insert one element id."""
        self.add_batch(np.asarray([element], dtype=np.uint64))

    def add_batch(self, elements: np.ndarray) -> None:
        """Insert many element ids at once."""
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return
        hashes = hash64(elements, seed=self.seed)
        merged = np.union1d(self._values, hashes)  # sorted + deduplicated
        self._values = merged[: self.k]

    def estimate(self) -> float:
        """Distinct-count estimate.

        Exact (count of stored values) while fewer than ``k`` distinct
        hashes have been seen; the order-statistics estimator
        ``(k - 1) / v_k`` once the sketch is full.
        """
        if self._values.size < self.k:
            return float(self._values.size)
        v_k = float(self._values[self.k - 1]) / _HASH_SPACE
        if v_k == 0.0:
            return float(self.k)
        return (self.k - 1) / v_k

    def is_empty(self) -> bool:
        """True if no element has ever been inserted."""
        return self._values.size == 0

    def merge_in_place(self, other: KMinValues) -> KMinValues:
        """Union with ``other``; lossless for unions (bottom-k of union)."""
        if not isinstance(other, KMinValues):
            raise SketchError(f"cannot merge KMinValues with {type(other).__name__}")
        if self.k != other.k or self.seed != other.seed:
            raise SketchError(
                f"incompatible sketches: (k={self.k}, seed={self.seed}) vs "
                f"(k={other.k}, seed={other.seed})"
            )
        merged = np.union1d(self._values, other._values)
        self._values = merged[: self.k]
        return self

    @property
    def memory_bytes(self) -> int:
        """Footprint of the stored hash values in bytes."""
        return int(self._values.nbytes)

    def __repr__(self) -> str:
        return f"KMinValues(k={self.k}, estimate~{self.estimate():.1f})"
