"""Cardinality-sketch substrate.

The paper's hybrid strategy attaches a HyperLogLog (HLL) sketch to every
LSH bucket so that the number of *distinct* candidates of a query (the
union of its ``L`` buckets) can be estimated in ``O(mL)`` time.  This
package implements HLL from scratch plus the baselines used by the
ablation benchmarks:

* :class:`HyperLogLog` — registers, stochastic averaging, bias-corrected
  raw estimate, linear-counting small-range correction, lossless merge;
* :class:`LinearCounter` — classic linear (bitmap) counting;
* :class:`KMinValues` — bottom-k / KMV distinct estimator with union;
* :class:`ExactDistinctCounter` — set-based exact counting (the thing
  HLL avoids paying for at query time);
* :class:`BloomFilter` — membership filter used to model the cost of
  duplicate removal in Step S2 of the cost model.

All sketches share the same 64-bit integer hashing scheme
(:mod:`repro.sketches.hashing64`), so sketches built over the same point
universe with the same seed are mergeable.
"""

from repro.sketches.bloom import BloomFilter
from repro.sketches.exact_counter import ExactDistinctCounter
from repro.sketches.hashing64 import hash64, rho_positions, split_hash
from repro.sketches.hyperloglog import HyperLogLog, PrecomputedHllHashes
from repro.sketches.kmv import KMinValues
from repro.sketches.linear_counting import LinearCounter
from repro.sketches.registry import (
    available_estimators,
    get_estimator,
    register_estimator,
)
from repro.sketches.sparse_hll import SparseHyperLogLog

__all__ = [
    "register_estimator",
    "get_estimator",
    "available_estimators",
    "HyperLogLog",
    "SparseHyperLogLog",
    "PrecomputedHllHashes",
    "LinearCounter",
    "KMinValues",
    "ExactDistinctCounter",
    "BloomFilter",
    "hash64",
    "split_hash",
    "rho_positions",
]
