"""Sparse HyperLogLog — the "practical version" memory optimisation.

The HLL paper the reproduction cites ([9], and its engineering
follow-ups popularised as HLL++) stores small-cardinality sketches as
a list of ``(register, rank)`` pairs instead of a dense ``m``-byte
register array, upgrading to dense form only when the pair list would
outgrow it.  This is the same engineering insight as the paper's own
small-bucket trick (DESIGN.md ablation A1), applied *inside* the
sketch rather than at the bucket layer, and it composes with it: an
index can keep dense sketches only for genuinely hot buckets.

:class:`SparseHyperLogLog` is estimate- and merge-compatible with
:class:`~repro.sketches.hyperloglog.HyperLogLog`: ``to_dense()``
produces a bit-identical dense sketch, and merging mixed
representations is supported.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SketchError
from repro.sketches.hashing64 import hash64, rho_positions, split_hash
from repro.sketches.hyperloglog import HyperLogLog, _check_precision

__all__ = ["SparseHyperLogLog"]


class SparseHyperLogLog:
    """Pair-list HLL that upgrades itself to dense past a threshold.

    Parameters
    ----------
    p:
        Precision (``m = 2**p`` registers once dense).
    seed:
        Hash salt; compatible with dense sketches of equal (p, seed).
    dense_threshold:
        Upgrade to a dense register array once more than this many
        distinct registers are occupied.  ``None`` picks ``m // 4``
        (each sparse entry costs ~4x a dense register byte).
    """

    __slots__ = ("p", "m", "seed", "dense_threshold", "_pairs", "_dense")

    def __init__(self, p: int = 7, seed: int = 0, dense_threshold: int | None = None) -> None:
        _check_precision(p)
        self.p = int(p)
        self.m = 1 << self.p
        self.seed = int(seed)
        self.dense_threshold = (
            max(1, self.m // 4) if dense_threshold is None else int(dense_threshold)
        )
        self._pairs: dict[int, int] = {}
        self._dense: HyperLogLog | None = None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    @property
    def is_dense(self) -> bool:
        """Whether the sketch has upgraded to the dense register array."""
        return self._dense is not None

    def _maybe_upgrade(self) -> None:
        if self._dense is None and len(self._pairs) > self.dense_threshold:
            self._dense = self.to_dense()
            self._pairs.clear()

    def add(self, element: int) -> None:
        """Insert one element id."""
        if self._dense is not None:
            self._dense.add(element)
            return
        h = hash64(np.uint64(element), seed=self.seed)
        idx, rest = split_hash(h.reshape(1), self.p)
        rank = int(rho_positions(rest, 64 - self.p)[0])
        register = int(idx[0])
        if rank > self._pairs.get(register, 0):
            self._pairs[register] = rank
        self._maybe_upgrade()

    def add_batch(self, elements: np.ndarray) -> None:
        """Insert many element ids at once."""
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return
        if self._dense is not None:
            self._dense.add_batch(elements)
            return
        h = hash64(elements, seed=self.seed)
        idx, rest = split_hash(h, self.p)
        ranks = rho_positions(rest, 64 - self.p)
        for register, rank in zip(idx.tolist(), ranks.tolist()):
            if rank > self._pairs.get(register, 0):
                self._pairs[register] = rank
        self._maybe_upgrade()

    # ------------------------------------------------------------------
    # Estimation and conversion
    # ------------------------------------------------------------------
    def to_dense(self) -> HyperLogLog:
        """The equivalent dense sketch (bit-identical registers)."""
        if self._dense is not None:
            return self._dense.copy()
        dense = HyperLogLog(p=self.p, seed=self.seed)
        for register, rank in self._pairs.items():
            dense.registers[register] = rank
        return dense

    def estimate(self) -> float:
        """Cardinality estimate (same corrections as the dense sketch)."""
        if self._dense is not None:
            return self._dense.estimate()
        return self.to_dense().estimate()

    def is_empty(self) -> bool:
        """True if no element has ever been inserted."""
        if self._dense is not None:
            return self._dense.is_empty()
        return not self._pairs

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge_in_place(self, other: SparseHyperLogLog | HyperLogLog) -> SparseHyperLogLog:
        """Union with a sparse or dense sketch of equal (p, seed)."""
        if isinstance(other, HyperLogLog):
            if other.p != self.p or other.seed != self.seed:
                raise SketchError(
                    f"incompatible sketches: (p={self.p}, seed={self.seed}) vs "
                    f"(p={other.p}, seed={other.seed})"
                )
            if self._dense is None:
                self._dense = self.to_dense()
                self._pairs.clear()
            self._dense.merge_in_place(other)
            return self
        if isinstance(other, SparseHyperLogLog):
            if other.p != self.p or other.seed != self.seed:
                raise SketchError(
                    f"incompatible sketches: (p={self.p}, seed={self.seed}) vs "
                    f"(p={other.p}, seed={other.seed})"
                )
            if other._dense is not None:
                return self.merge_in_place(other._dense)
            if self._dense is not None:
                for register, rank in other._pairs.items():
                    if rank > self._dense.registers[register]:
                        self._dense.registers[register] = rank
                return self
            for register, rank in other._pairs.items():
                if rank > self._pairs.get(register, 0):
                    self._pairs[register] = rank
            self._maybe_upgrade()
            return self
        raise SketchError(f"cannot merge SparseHyperLogLog with {type(other).__name__}")

    @property
    def memory_bytes(self) -> int:
        """Approximate footprint: dense registers, or ~12 bytes per pair."""
        if self._dense is not None:
            return self._dense.memory_bytes
        return 12 * len(self._pairs)

    def __repr__(self) -> str:
        mode = "dense" if self.is_dense else f"sparse({len(self._pairs)} pairs)"
        return f"SparseHyperLogLog(p={self.p}, {mode}, estimate~{self.estimate():.1f})"
