"""Crash-safe filesystem writes shared by the persistence layers.

A crash (or an injected worker kill) between ``open`` and the final
byte must never leave a half-written artifact where a complete one used
to be.  Two primitives cover the repo's layouts:

* :func:`write_bytes_atomic` / :func:`write_json_atomic` — single-file
  writers: temp file in the same directory, ``fsync``, ``os.replace``,
  then an ``fsync`` of the directory so the rename itself is durable.
* :func:`commit_dir` — multi-file artifacts (frozen shard directories):
  the caller stages a complete directory next to the target, then the
  swap retires the old directory and renames the staged one in.  Live
  ``mmap`` views of the old files stay valid (the inodes survive until
  the mappings close); fresh opens see only complete artifacts.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
from typing import Any

__all__ = [
    "fsync_directory",
    "write_bytes_atomic",
    "write_json_atomic",
    "staging_path",
    "commit_dir",
]


def fsync_directory(path: str) -> None:
    """Flush a directory's entry table (best-effort on odd filesystems)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)


def write_bytes_atomic(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers see the old or new file, never a torn one."""
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    fsync_directory(os.path.dirname(path) or ".")


def write_json_atomic(path: str, doc: Any) -> None:
    """Atomically write a JSON document (trailing newline included)."""
    write_bytes_atomic(path, (json.dumps(doc, indent=2) + "\n").encode("utf-8"))


def staging_path(path: str) -> str:
    """The sibling staging directory for an atomic directory swap."""
    return f"{path.rstrip(os.sep)}.tmp-{os.getpid()}"


def commit_dir(staged: str, path: str) -> None:
    """Swap a fully staged directory into place of ``path``.

    The staged directory's contents must already be fsynced (the
    single-file writers above do that).  An existing target is renamed
    aside first and removed after the swap, so a crash leaves either
    the old artifact, or the new one (possibly next to a stale
    ``.old-*`` remnant a later save cleans up) — never a mixture.
    """
    fsync_directory(staged)
    retired = f"{path.rstrip(os.sep)}.old-{os.getpid()}"
    shutil.rmtree(retired, ignore_errors=True)
    if os.path.isdir(path):
        os.rename(path, retired)
    try:
        os.rename(staged, path)
    except BaseException:
        # Roll the old artifact back so the target never stays missing.
        if os.path.isdir(retired) and not os.path.exists(path):
            os.rename(retired, path)
        raise
    shutil.rmtree(retired, ignore_errors=True)
    fsync_directory(os.path.dirname(path.rstrip(os.sep)) or ".")
