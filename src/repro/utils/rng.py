"""Seeded random-number-generator plumbing.

Everything stochastic in this library (hash function sampling, synthetic
dataset generation, HyperLogLog hashing salts) flows through a
:class:`numpy.random.Generator`.  Components accept a ``seed`` argument
that may be ``None`` (fresh OS entropy), an ``int``, or an existing
``Generator``; :func:`ensure_rng` normalises all three to a ``Generator``
so downstream code never branches on the seed type.

Reproducibility contract: constructing any library object twice with the
same integer seed yields byte-identical behaviour, which the test suite
relies on heavily.
"""

from __future__ import annotations


import numpy as np

__all__ = ["RandomState", "ensure_rng", "spawn_rngs"]

# Public alias: everything accepting randomness accepts this union.
RandomState = int | np.random.Generator | None


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Normalise ``seed`` to a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream,
        or an existing ``Generator`` which is returned unchanged (so a
        caller can thread one generator through several components).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used when a component needs one independent stream per hash table so
    that the tables' hash functions do not share randomness.

    Parameters
    ----------
    seed:
        Master seed in any form accepted by :func:`ensure_rng`.
    count:
        Number of child generators to derive; must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    master = ensure_rng(seed)
    # Drawing one 63-bit integer per child from the master stream gives
    # independent, deterministic child streams for any numpy version.
    child_seeds = master.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in child_seeds]
