"""Argument-validation helpers shared across the package.

These helpers centralise the error messages so that every module raises
the same :class:`~repro.exceptions.ConfigurationError` (for bad
parameters) or :class:`~repro.exceptions.DimensionMismatchError` (for
shape problems) with a consistent wording.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError

__all__ = [
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_delta",
    "check_vector",
    "check_matrix",
]


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number > 0, else raise."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be finite and > 0, got {value}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is an integer >= 1, else raise."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_delta(value: float) -> float:
    """Validate the rNNR failure probability ``delta`` in the open (0, 1)."""
    value = check_probability(value, "delta")
    if value == 0.0 or value == 1.0:
        raise ConfigurationError(
            f"delta must be strictly inside (0, 1) for the approximate "
            f"rNNR problem, got {value}"
        )
    return value


def check_vector(x: np.ndarray, dim: int | None = None, name: str = "vector") -> np.ndarray:
    """Coerce ``x`` to a 1-d float array, optionally enforcing its length."""
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise DimensionMismatchError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise DimensionMismatchError(
            f"{name} has dimension {arr.shape[0]}, expected {dim}"
        )
    return arr


def check_matrix(x: np.ndarray, dim: int | None = None, name: str = "matrix") -> np.ndarray:
    """Coerce ``x`` to a 2-d array, optionally enforcing its column count."""
    arr = np.asarray(x)
    if arr.ndim != 2:
        raise DimensionMismatchError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if dim is not None and arr.shape[1] != dim:
        raise DimensionMismatchError(
            f"{name} has {arr.shape[1]} columns, expected {dim}"
        )
    return arr
