"""A tiny monotonic stopwatch used by the evaluation harness.

The paper reports CPU time per query set; :class:`Timer` wraps
:func:`time.perf_counter` behind a context manager so that the harness
code stays free of timing boilerplate and the tests can assert on the
accumulated state.
"""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Accumulating stopwatch.

    Can be used as a context manager (each ``with`` block adds to the
    running total) or driven manually with :meth:`start` / :meth:`stop`.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(100))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        """Begin a timing interval; raises if one is already open."""
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Close the open interval and return its duration in seconds."""
        if self._started_at is None:
            raise RuntimeError("Timer was not started")
        interval = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += interval
        return interval

    def reset(self) -> None:
        """Zero the accumulated time; any open interval is discarded."""
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        """Whether an interval is currently open."""
        return self._started_at is not None

    def __enter__(self) -> Timer:
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"Timer(elapsed={self.elapsed:.6f}s, {state})"
