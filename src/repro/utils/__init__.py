"""Shared low-level helpers: seeded RNG management, validation, timing."""

from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_delta,
    check_matrix,
    check_positive,
    check_positive_int,
    check_probability,
    check_vector,
)

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "check_delta",
    "check_matrix",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_vector",
]
