"""Worker-side fault application: the opt-in hook the main loop calls.

These helpers live here — not in :mod:`repro.service.shard_server` — so
the serving loop stays two ``if fault is not None`` branches and the
production path (no plan installed) never touches this module's logic.
``swallow_request`` runs before the op executes (crash / hang / slow
pacing); ``send_reply`` replaces the plain ``conn.send`` on the reply
side (drop / corrupt payload / and the transport-level kinds:
disconnect, slow link, corrupt frame).
"""

from __future__ import annotations

import contextlib
import os
import pickle
import time
from typing import Any

from repro.faults.plan import FaultKind, FaultSpec

__all__ = ["swallow_request", "send_reply", "FAULT_EXIT_CODE", "HANG_SECONDS"]

#: distinguishes an injected crash from a real one in process tables.
FAULT_EXIT_CODE = 23

#: a hang with no explicit duration sleeps this long — far beyond any
#: sane deadline, so the parent's kill-and-respawn always wins.
HANG_SECONDS = 3600.0


def swallow_request(fault: FaultSpec) -> bool:
    """Apply the pre-compute side of a fault; True = drop the request.

    ``CRASH`` never returns (the process exits).  ``HANG`` sleeps — the
    parent's deadline fires and terminates the process mid-sleep — and
    asks the caller to swallow the request should it ever wake.
    ``SLOW`` sleeps, then lets the request proceed normally.  The
    reply-side kinds (including the transport-level ones) fall through:
    the request executes and :func:`send_reply` applies them.
    """
    if fault.kind is FaultKind.CRASH:
        os._exit(FAULT_EXIT_CODE)
    if fault.kind is FaultKind.HANG:
        time.sleep(fault.seconds or HANG_SECONDS)
        return True
    if fault.kind is FaultKind.SLOW:
        time.sleep(fault.seconds)
    return False


def send_reply(conn: Any, reply: object, fault: FaultSpec) -> None:
    """Send ``reply`` through the fault's framing behaviour.

    ``DROP`` sends nothing (the parent's deadline detects it);
    ``CORRUPT`` ships a truncated pickle so the parent's decode fails
    mid-deserialisation; ``DISCONNECT`` closes the connection instead
    of replying (the serving loop then winds the session down, but a
    :class:`~repro.service.shard_server.ShardServer` stays up for
    reconnects); ``SLOW_LINK`` delays the reply in the framing layer;
    ``CORRUPT_FRAME`` breaks the frame checksum where the connection
    supports it (TCP) and degrades to the truncated-pickle corruption
    where it does not (pipes have no checksums); every other kind sends
    normally.
    """
    if fault.kind is FaultKind.DROP:
        return
    if fault.kind is FaultKind.CORRUPT:
        payload = pickle.dumps(reply)
        conn.send_bytes(payload[: max(1, len(payload) // 3)])
        return
    if fault.kind is FaultKind.DISCONNECT:
        with contextlib.suppress(OSError):
            conn.close()
        return
    if fault.kind is FaultKind.SLOW_LINK:
        time.sleep(fault.seconds)
        conn.send(reply)
        return
    if fault.kind is FaultKind.CORRUPT_FRAME:
        if hasattr(conn, "send_corrupt"):
            conn.send_corrupt(reply)
        else:
            payload = pickle.dumps(reply)
            conn.send_bytes(payload[: max(1, len(payload) // 3)])
        return
    conn.send(reply)
