"""Worker-side fault application: the opt-in hook the main loop calls.

These helpers live here — not in :mod:`repro.service.workers` — so the
worker loop stays two ``if fault is not None`` branches and the
production path (no plan installed) never touches this module's logic.
``swallow_request`` runs before the op executes (crash / hang / slow
pacing); ``send_reply`` replaces the plain ``conn.send`` on the reply
side (drop / corrupt framing).
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any

from repro.faults.plan import FaultKind, FaultSpec

__all__ = ["swallow_request", "send_reply", "FAULT_EXIT_CODE", "HANG_SECONDS"]

#: distinguishes an injected crash from a real one in process tables.
FAULT_EXIT_CODE = 23

#: a hang with no explicit duration sleeps this long — far beyond any
#: sane deadline, so the parent's kill-and-respawn always wins.
HANG_SECONDS = 3600.0


def swallow_request(fault: FaultSpec) -> bool:
    """Apply the pre-compute side of a fault; True = drop the request.

    ``CRASH`` never returns (the process exits).  ``HANG`` sleeps — the
    parent's deadline fires and terminates the process mid-sleep — and
    asks the caller to swallow the request should it ever wake.
    ``SLOW`` sleeps, then lets the request proceed normally.
    """
    if fault.kind is FaultKind.CRASH:
        os._exit(FAULT_EXIT_CODE)
    if fault.kind is FaultKind.HANG:
        time.sleep(fault.seconds or HANG_SECONDS)
        return True
    if fault.kind is FaultKind.SLOW:
        time.sleep(fault.seconds)
    return False


def send_reply(conn: Any, reply: object, fault: FaultSpec) -> None:
    """Send ``reply`` through the fault's framing behaviour.

    ``DROP`` sends nothing (the parent's deadline detects it);
    ``CORRUPT`` ships a truncated pickle so the parent's ``recv``
    raises mid-deserialisation; every other kind sends normally.
    """
    if fault.kind is FaultKind.DROP:
        return
    if fault.kind is FaultKind.CORRUPT:
        payload = pickle.dumps(reply)
        conn.send_bytes(payload[: max(1, len(payload) // 3)])
        return
    conn.send(reply)
