"""Deterministic fault injection and fault-tolerance policy.

The serving layer's failure handling is only trustworthy if every
failure mode it claims to survive can be *produced on demand*,
deterministically, in tests.  This package owns both sides of that
contract:

* :class:`FaultPlan` / :class:`FaultSpec` — a seeded, picklable
  schedule of worker faults (crash, hang, slow reply, corrupt payload,
  dropped reply) keyed by worker id and request index, applied inside
  the worker main loop via an opt-in hook
  (:mod:`repro.faults.inject`).  With no plan installed the worker
  code path is unchanged.
* :class:`FaultTolerancePolicy` — the parent-side budget: per-op recv
  deadlines, bounded retry with exponential backoff + deterministic
  jitter, heartbeat cadence, and per-worker circuit-breaker
  thresholds, consumed by :class:`repro.service.workers.WorkerPool`.
"""

from repro.faults.inject import send_reply, swallow_request
from repro.faults.plan import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.faults.policy import FaultTolerancePolicy

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultTolerancePolicy",
    "send_reply",
    "swallow_request",
]
