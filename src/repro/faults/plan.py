"""Seeded fault schedules: which worker misbehaves, when, and how.

A :class:`FaultPlan` is an immutable, picklable value built either from
an explicit script (:meth:`FaultPlan.scripted`) or from a seeded random
draw (:meth:`FaultPlan.seeded`); the pool ships it to each worker at
spawn time (and a :class:`~repro.service.shard_server.ShardServer` can
be constructed with one directly).  Workers count the requests they
receive and consult their :class:`FaultInjector` before answering each
one, so a schedule like "worker 1 crashes on its 3rd request"
reproduces exactly across runs.

How request indices are counted is governed by each spec's ``scope``:

* ``scope="process"`` (the default, and the historical behaviour) —
  indices restart from zero in every worker process/session.  A
  long-``repeat`` fault at a low index models a *persistently sick*
  endpoint: it misbehaves again after every recovery, because the
  respawned process counts from zero and re-enters the window.
* ``scope="lifetime"`` — indices accumulate across respawns and
  reconnects (the pool threads the endpoint's running op count into
  each new injector via ``start``).  An ``op_index=0`` crash with
  ``scope="lifetime"`` fires exactly once in the endpoint's life: the
  respawned process resumes counting *past* the window, modelling a
  transient glitch rather than a permanent outage.

With replica sets, ``replica=None`` (the default) matches every replica
of the target worker slot — the pre-replica behaviour — while an
explicit ``replica`` index pins the fault to one endpoint, which is how
failover drills break a single replica and assert the others carry the
slot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "FaultInjector"]

#: valid values for :attr:`FaultSpec.scope`.
_SCOPES = ("process", "lifetime")


class FaultKind(str, enum.Enum):
    """How a scheduled fault manifests inside the worker."""

    #: the worker process exits abruptly mid-request (no reply).
    CRASH = "crash"
    #: the worker stops responding: it sleeps and never replies.
    HANG = "hang"
    #: the reply is delayed by ``seconds`` but otherwise correct.
    SLOW = "slow"
    #: the reply payload is truncated mid-pickle on the wire.
    CORRUPT = "corrupt"
    #: the reply is silently dropped; the worker stays alive.
    DROP = "drop"
    #: transport-level: the connection is closed instead of replying —
    #: the peer survives and accepts reconnects (a network partition's
    #: signature, distinct from a crash).
    DISCONNECT = "disconnect"
    #: transport-level: the reply is delayed by ``seconds`` in the
    #: framing layer (a congested or lossy link, not a slow compute).
    SLOW_LINK = "slow_link"
    #: transport-level: the reply frame's checksum is broken so the
    #: receiver rejects it at the framing gate (over a pipe, which has
    #: no checksums, this degrades to a truncated payload).
    CORRUPT_FRAME = "corrupt_frame"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``worker`` misbehaves on request ``op_index``.

    ``repeat`` widens the window: the fault fires for every request
    index in ``[op_index, op_index + repeat)``.  ``seconds`` is the
    sleep for the delay-bearing kinds (:attr:`FaultKind.SLOW`,
    :attr:`FaultKind.HANG`, :attr:`FaultKind.SLOW_LINK`; a hang with
    ``seconds=0`` sleeps effectively forever and relies on the parent's
    deadline to kill it).  ``scope`` selects per-process or
    endpoint-lifetime request counting (see the module docstring) and
    ``replica`` optionally pins the fault to one replica of the worker
    slot (``None`` matches all).
    """

    kind: FaultKind
    worker: int
    op_index: int
    seconds: float = 0.0
    repeat: int = 1
    scope: str = "process"
    replica: int | None = None

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ConfigurationError(f"worker must be >= 0, got {self.worker}")
        if self.op_index < 0:
            raise ConfigurationError(f"op_index must be >= 0, got {self.op_index}")
        if self.repeat < 1:
            raise ConfigurationError(f"repeat must be >= 1, got {self.repeat}")
        if not self.seconds >= 0:
            raise ConfigurationError(f"seconds must be >= 0, got {self.seconds}")
        if self.scope not in _SCOPES:
            raise ConfigurationError(
                f"scope must be one of {_SCOPES}, got {self.scope!r}"
            )
        if self.replica is not None and self.replica < 0:
            raise ConfigurationError(
                f"replica must be >= 0 or None, got {self.replica}"
            )

    def covers(self, op_index: int) -> bool:
        """Whether this fault fires for the given request index."""
        return self.op_index <= op_index < self.op_index + self.repeat


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of :class:`FaultSpec` entries.

    Examples
    --------
    >>> plan = FaultPlan.scripted(
    ...     FaultSpec(FaultKind.CRASH, worker=0, op_index=2),
    ...     FaultSpec(FaultKind.DROP, worker=1, op_index=0),
    ... )
    >>> plan.for_worker(0).next_fault() is None  # request 0: clean
    True
    """

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def scripted(cls, *specs: FaultSpec) -> FaultPlan:
        """A plan from an explicit list of faults."""
        return cls(specs=tuple(specs))

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_workers: int,
        num_ops: int,
        rate: float = 0.1,
        kinds: tuple[FaultKind, ...] = (
            FaultKind.CRASH,
            FaultKind.HANG,
            FaultKind.SLOW,
            FaultKind.CORRUPT,
            FaultKind.DROP,
        ),
        max_delay: float = 0.05,
    ) -> FaultPlan:
        """Draw a random schedule deterministically from ``seed``.

        Each (worker, request) slot independently faults with
        probability ``rate``; the kind is drawn uniformly from
        ``kinds`` and sleep-bearing kinds get a delay in
        ``(0, max_delay]``.  The same seed always yields the same plan.
        The transport kinds are not in the default pool — add them to
        ``kinds`` explicitly to soak the framing layer too.
        """
        if num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
        if num_ops < 0:
            raise ConfigurationError(f"num_ops must be >= 0, got {num_ops}")
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        if not kinds:
            raise ConfigurationError("kinds must not be empty")
        rng = np.random.default_rng(seed)
        specs: list[FaultSpec] = []
        for worker in range(num_workers):
            for op_index in range(num_ops):
                if rng.random() >= rate:
                    continue
                kind = kinds[int(rng.integers(len(kinds)))]
                seconds = 0.0
                if kind in (FaultKind.SLOW, FaultKind.HANG, FaultKind.SLOW_LINK):
                    seconds = float(max_delay) * float(rng.random())
                specs.append(
                    FaultSpec(kind, worker=worker, op_index=op_index, seconds=seconds)
                )
        return cls(specs=tuple(specs))

    def for_worker(
        self, worker: int, replica: int = 0, start: int = 0
    ) -> FaultInjector:
        """The injector one endpoint consults on every request it receives.

        ``replica`` selects which replica of the worker slot this
        endpoint is (specs with ``replica=None`` match every replica);
        ``start`` is the endpoint's lifetime op count so far — a fresh
        process/session passes the count its predecessors consumed, and
        ``scope="lifetime"`` specs are matched against ``start + index``
        while ``scope="process"`` specs see the session-local ``index``.
        """
        return FaultInjector(
            tuple(
                spec
                for spec in self.specs
                if spec.worker == worker and spec.replica in (None, replica)
            ),
            start=start,
        )

    def __bool__(self) -> bool:
        return bool(self.specs)


class FaultInjector:
    """Per-endpoint request counter matching requests against the plan.

    ``next_fault()`` is called exactly once per received request; the
    first listed spec covering the current index wins.  ``start`` seeds
    the lifetime index for ``scope="lifetime"`` specs; the session-local
    index always begins at zero.
    """

    def __init__(self, specs: tuple[FaultSpec, ...], start: int = 0) -> None:
        self._specs = specs
        self._start = int(start)
        self._op_index = 0

    @property
    def op_index(self) -> int:
        """Requests consumed this session (the next request's index)."""
        return self._op_index

    def next_fault(self) -> FaultSpec | None:
        index = self._op_index
        self._op_index += 1
        for spec in self._specs:
            effective = index if spec.scope == "process" else self._start + index
            if spec.covers(effective):
                return spec
        return None
