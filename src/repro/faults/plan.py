"""Seeded fault schedules: which worker misbehaves, when, and how.

A :class:`FaultPlan` is an immutable, picklable value built either from
an explicit script (:meth:`FaultPlan.scripted`) or from a seeded random
draw (:meth:`FaultPlan.seeded`); the pool ships it to each worker at
spawn time.  Workers count the requests they receive and consult their
:class:`FaultInjector` before answering each one, so a schedule like
"worker 1 crashes on its 3rd request" reproduces exactly across runs.

Request indices are counted per worker *process*: a respawned worker
starts counting from zero again, which means a long-``repeat`` fault
models a persistently sick worker (it misbehaves again after every
recovery) while a short one models a transient glitch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "FaultInjector"]


class FaultKind(str, enum.Enum):
    """How a scheduled fault manifests inside the worker."""

    #: the worker process exits abruptly mid-request (no reply).
    CRASH = "crash"
    #: the worker stops responding: it sleeps and never replies.
    HANG = "hang"
    #: the reply is delayed by ``seconds`` but otherwise correct.
    SLOW = "slow"
    #: the reply payload is truncated mid-pickle on the pipe.
    CORRUPT = "corrupt"
    #: the reply is silently dropped; the worker stays alive.
    DROP = "drop"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``worker`` misbehaves on request ``op_index``.

    ``repeat`` widens the window: the fault fires for every request
    index in ``[op_index, op_index + repeat)``.  ``seconds`` is the
    sleep for :attr:`FaultKind.SLOW` and :attr:`FaultKind.HANG` (a hang
    with ``seconds=0`` sleeps effectively forever and relies on the
    parent's deadline to kill it).
    """

    kind: FaultKind
    worker: int
    op_index: int
    seconds: float = 0.0
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ConfigurationError(f"worker must be >= 0, got {self.worker}")
        if self.op_index < 0:
            raise ConfigurationError(f"op_index must be >= 0, got {self.op_index}")
        if self.repeat < 1:
            raise ConfigurationError(f"repeat must be >= 1, got {self.repeat}")
        if not self.seconds >= 0:
            raise ConfigurationError(f"seconds must be >= 0, got {self.seconds}")

    def covers(self, op_index: int) -> bool:
        """Whether this fault fires for the given request index."""
        return self.op_index <= op_index < self.op_index + self.repeat


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of :class:`FaultSpec` entries.

    Examples
    --------
    >>> plan = FaultPlan.scripted(
    ...     FaultSpec(FaultKind.CRASH, worker=0, op_index=2),
    ...     FaultSpec(FaultKind.DROP, worker=1, op_index=0),
    ... )
    >>> plan.for_worker(0).next_fault() is None  # request 0: clean
    True
    """

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def scripted(cls, *specs: FaultSpec) -> FaultPlan:
        """A plan from an explicit list of faults."""
        return cls(specs=tuple(specs))

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_workers: int,
        num_ops: int,
        rate: float = 0.1,
        kinds: tuple[FaultKind, ...] = (
            FaultKind.CRASH,
            FaultKind.HANG,
            FaultKind.SLOW,
            FaultKind.CORRUPT,
            FaultKind.DROP,
        ),
        max_delay: float = 0.05,
    ) -> FaultPlan:
        """Draw a random schedule deterministically from ``seed``.

        Each (worker, request) slot independently faults with
        probability ``rate``; the kind is drawn uniformly from
        ``kinds`` and sleep-bearing kinds get a delay in
        ``(0, max_delay]``.  The same seed always yields the same plan.
        """
        if num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
        if num_ops < 0:
            raise ConfigurationError(f"num_ops must be >= 0, got {num_ops}")
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        if not kinds:
            raise ConfigurationError("kinds must not be empty")
        rng = np.random.default_rng(seed)
        specs: list[FaultSpec] = []
        for worker in range(num_workers):
            for op_index in range(num_ops):
                if rng.random() >= rate:
                    continue
                kind = kinds[int(rng.integers(len(kinds)))]
                seconds = 0.0
                if kind in (FaultKind.SLOW, FaultKind.HANG):
                    seconds = float(max_delay) * float(rng.random())
                specs.append(
                    FaultSpec(kind, worker=worker, op_index=op_index, seconds=seconds)
                )
        return cls(specs=tuple(specs))

    def for_worker(self, worker: int) -> FaultInjector:
        """The injector a worker consults on every request it receives."""
        return FaultInjector(
            tuple(spec for spec in self.specs if spec.worker == worker)
        )

    def __bool__(self) -> bool:
        return bool(self.specs)


class FaultInjector:
    """Per-worker request counter matching requests against the plan.

    ``next_fault()`` is called exactly once per received request; the
    first listed spec covering the current index wins.
    """

    def __init__(self, specs: tuple[FaultSpec, ...]) -> None:
        self._specs = specs
        self._op_index = 0

    @property
    def op_index(self) -> int:
        """Requests consumed so far (the next request's index)."""
        return self._op_index

    def next_fault(self) -> FaultSpec | None:
        index = self._op_index
        self._op_index += 1
        for spec in self._specs:
            if spec.covers(index):
                return spec
        return None
