"""The parent-side fault-tolerance budget for the worker pool.

One immutable value holds every knob the hardened
:class:`~repro.service.workers.WorkerPool` request path consumes: the
per-op recv deadline, the bounded retry schedule (exponential backoff
with deterministic jitter), the heartbeat cadence for hang detection on
idle workers, and the per-worker circuit-breaker thresholds.  The
defaults are production-lenient; tests shrink them to milliseconds so
fault drills run fast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = ["FaultTolerancePolicy"]


@dataclass(frozen=True)
class FaultTolerancePolicy:
    """Deadlines, retries, heartbeats, and breaker thresholds.

    Attributes
    ----------
    recv_deadline:
        Seconds a blocking pipe ``recv`` may wait for a worker's reply
        before the worker is declared hung, killed, and respawned.
    startup_deadline:
        Seconds to wait for a (re)spawned worker's mmap-open ack and
        for each replayed insert during recovery.
    max_retries:
        Failed request re-sends after the initial attempt; each retry
        is preceded by a kill-and-respawn of the worker.
    backoff_base / backoff_max:
        Exponential backoff between retries: attempt ``i`` sleeps
        ``min(backoff_max, backoff_base * 2**(i-1))`` before its
        respawn, scaled by jitter.
    backoff_jitter:
        Fractional jitter width: each sleep is multiplied by a
        deterministic draw from ``[1, 1 + backoff_jitter]`` (seeded by
        ``jitter_seed``), de-synchronising retry storms without
        sacrificing reproducibility.
    breaker_threshold:
        Consecutive *final* request failures after which a worker's
        circuit breaker opens; while open, requests to that worker fail
        fast instead of burning the retry budget.
    breaker_cooldown:
        Seconds an open breaker waits before letting one half-open
        probe request through; a success closes it, a failure re-opens.
    heartbeat_interval:
        Seconds between background liveness pings to idle workers
        (``0`` disables the heartbeat thread).  A worker that fails its
        ping is respawned proactively, before a query has to pay the
        deadline.
    jitter_seed:
        Seed for the backoff jitter stream.
    """

    recv_deadline: float = 30.0
    startup_deadline: float = 60.0
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    backoff_jitter: float = 0.25
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0
    heartbeat_interval: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        for name in ("recv_deadline", "startup_deadline"):
            value = float(getattr(self, name))
            if not value > 0:
                raise ConfigurationError(f"{name} must be > 0, got {value}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not self.backoff_base >= 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if not self.backoff_max >= self.backoff_base:
            raise ConfigurationError(
                f"backoff_max ({self.backoff_max}) must be >= backoff_base "
                f"({self.backoff_base})"
            )
        if not self.backoff_jitter >= 0:
            raise ConfigurationError(
                f"backoff_jitter must be >= 0, got {self.backoff_jitter}"
            )
        if self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if not self.breaker_cooldown >= 0:
            raise ConfigurationError(
                f"breaker_cooldown must be >= 0, got {self.breaker_cooldown}"
            )
        if not self.heartbeat_interval >= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be >= 0, got {self.heartbeat_interval}"
            )

    def backoff_seconds(self, attempt: int, jitter_fraction: float) -> float:
        """The sleep before retry ``attempt`` (1-based), jitter applied."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        base = min(self.backoff_max, self.backoff_base * (2.0 ** (attempt - 1)))
        return base * (1.0 + self.backoff_jitter * float(jitter_fraction))

    def with_overrides(self, **overrides: Any) -> FaultTolerancePolicy:
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **overrides)
