"""Dataset distance profiling — picking radii and predicting hardness.

The paper's experiments hinge on choosing radius sweeps where the
neighbor fraction is "interesting" (neither empty nor everything) and
on the presence of hard queries (output near ``n/2``).  This module
packages those diagnostics for any dataset + metric:

* :func:`distance_profile` — sampled pairwise-distance quantiles and
  the fraction-within-radius curve;
* :func:`suggest_radii` — a sweep of radii covering a target neighbor
  fraction band (how the stand-ins' sweeps were validated);
* :func:`hardness_profile` — per-query output sizes at a radius, i.e.
  the data behind Figure 3's left panel, plus the easy/hard split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distances import Metric, get_metric
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["DistanceProfile", "distance_profile", "suggest_radii", "hardness_profile", "HardnessProfile"]


@dataclass(frozen=True)
class DistanceProfile:
    """Sampled pairwise-distance summary of a dataset.

    Attributes
    ----------
    quantiles:
        Mapping of quantile level -> distance (levels 0.01 .. 0.99).
    sample_pairs:
        Number of (query, point) pairs behind the estimate.
    metric:
        Canonical metric name.
    """

    quantiles: dict[float, float]
    sample_pairs: int
    metric: str

    def fraction_within(self, radius: float) -> float:
        """Interpolated fraction of pairs within ``radius``.

        Piecewise-linear in the sampled quantile table; clamped to
        [0, 1] outside its range.
        """
        levels = np.asarray(sorted(self.quantiles))
        values = np.asarray([self.quantiles[q] for q in levels])
        if radius <= values[0]:
            return float(levels[0]) if radius == values[0] else 0.0
        if radius >= values[-1]:
            return float(levels[-1])
        return float(np.interp(radius, values, levels))


_QUANTILE_LEVELS = (0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50, 0.70, 0.90, 0.99)


def distance_profile(
    points: np.ndarray,
    metric: str | Metric,
    num_queries: int = 50,
    num_points: int = 2000,
    seed: RandomState = None,
) -> DistanceProfile:
    """Estimate the pairwise-distance quantiles from a random sample."""
    metric = get_metric(metric)
    points = check_matrix(points, name="points")
    rng = ensure_rng(seed)
    n = points.shape[0]
    num_queries = min(check_positive_int(num_queries, "num_queries"), n)
    num_points = min(check_positive_int(num_points, "num_points"), n)
    queries = points[rng.choice(n, size=num_queries, replace=False)]
    sample = points[rng.choice(n, size=num_points, replace=False)]
    distances = np.concatenate(
        [metric.distances_to(sample, q) for q in queries]
    )
    distances = distances[distances > 0]  # drop self-pairs
    if distances.size == 0:
        raise ConfigurationError("all sampled pairs are at distance zero")
    quantiles = {
        level: float(np.quantile(distances, level)) for level in _QUANTILE_LEVELS
    }
    return DistanceProfile(
        quantiles=quantiles, sample_pairs=int(distances.size), metric=metric.name
    )


def suggest_radii(
    profile: DistanceProfile,
    num_radii: int = 6,
    low_fraction: float = 0.005,
    high_fraction: float = 0.10,
) -> tuple[float, ...]:
    """A radius sweep spanning a target neighbor-fraction band.

    Interpolates the profile's quantile table between the radii at
    which roughly ``low_fraction`` and ``high_fraction`` of pairs are
    within range — the band the paper's sweeps occupy.
    """
    if not 0.0 < low_fraction < high_fraction <= 1.0:
        raise ConfigurationError(
            f"need 0 < low_fraction < high_fraction <= 1, got "
            f"{low_fraction}, {high_fraction}"
        )
    num_radii = check_positive_int(num_radii, "num_radii")
    levels = np.asarray(sorted(profile.quantiles))
    values = np.asarray([profile.quantiles[q] for q in levels])
    low_radius = float(np.interp(low_fraction, levels, values))
    high_radius = float(np.interp(high_fraction, levels, values))
    return tuple(np.linspace(low_radius, high_radius, num_radii).tolist())


@dataclass(frozen=True)
class HardnessProfile:
    """Per-query output-size statistics at one radius (Figure 3 data).

    ``hard_fraction`` is the share of sampled queries whose output
    exceeds ``hard_threshold`` (default: n/10) — a cheap predictor of
    how often hybrid search will route to linear search.
    """

    radius: float
    output_sizes: np.ndarray
    n: int
    hard_threshold: int

    @property
    def avg_output(self) -> float:
        return float(self.output_sizes.mean())

    @property
    def max_output(self) -> int:
        return int(self.output_sizes.max())

    @property
    def min_output(self) -> int:
        return int(self.output_sizes.min())

    @property
    def hard_fraction(self) -> float:
        return float(np.mean(self.output_sizes > self.hard_threshold))


def hardness_profile(
    points: np.ndarray,
    metric: str | Metric,
    radius: float,
    num_queries: int = 50,
    hard_threshold: int | None = None,
    seed: RandomState = None,
) -> HardnessProfile:
    """Sample per-query output sizes at ``radius`` (exact, via scans)."""
    metric = get_metric(metric)
    points = check_matrix(points, name="points")
    rng = ensure_rng(seed)
    n = points.shape[0]
    num_queries = min(check_positive_int(num_queries, "num_queries"), n)
    if hard_threshold is None:
        hard_threshold = max(1, n // 10)
    queries = points[rng.choice(n, size=num_queries, replace=False)]
    sizes = np.asarray(
        [int(np.count_nonzero(metric.distances_to(points, q) <= radius)) for q in queries],
        dtype=np.int64,
    )
    return HardnessProfile(
        radius=float(radius), output_sizes=sizes, n=n, hard_threshold=int(hard_threshold)
    )
