"""Query-set runner: timings, recall and decision statistics per strategy.

The paper reports "the average of 5 runs of algorithms on the query
set"; :func:`run_queries` reproduces that protocol for any searcher
exposing ``query(q, radius) -> QueryResult``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.results import QueryResult, Strategy
from repro.evaluation.ground_truth import GroundTruth
from repro.evaluation.metrics import mean_recall
from repro.utils.validation import check_positive_int

__all__ = ["StrategyRun", "run_queries"]


@dataclass
class StrategyRun:
    """Aggregated outcome of running one strategy over a query set.

    Attributes
    ----------
    name:
        Strategy label (``"hybrid"``, ``"lsh"``, ``"linear"``).
    total_seconds:
        Mean (over repeats) wall-clock time for the whole query set —
        the quantity on Figure 2's y-axis.
    per_query_seconds:
        ``total_seconds / num_queries``.
    recall:
        Mean per-query recall against exact ground truth (``nan`` if no
        ground truth was supplied).
    output_sizes:
        Reported output size per query (last repeat).
    linear_call_fraction:
        Fraction of queries the strategy answered by linear search
        (Figure 3 right panel; 0.0 for pure LSH, 1.0 for pure linear).
    results:
        The per-query results of the last repeat (for downstream
        inspection).
    """

    name: str
    total_seconds: float
    per_query_seconds: float
    recall: float
    output_sizes: np.ndarray
    linear_call_fraction: float
    results: list[QueryResult] = field(default_factory=list, repr=False)


def run_queries(
    searcher,
    queries: np.ndarray,
    radius: float,
    name: str,
    repeats: int = 5,
    ground_truth: GroundTruth | None = None,
) -> StrategyRun:
    """Run ``searcher.query`` over the query set and aggregate.

    Parameters
    ----------
    searcher:
        Object with ``query(q, radius) -> QueryResult``.
    queries:
        ``(q, d)`` query matrix.
    radius:
        Query radius.
    name:
        Label for the run.
    repeats:
        Wall-clock averaging repeats (paper: 5).
    ground_truth:
        Optional exact neighbor sets for recall computation.
    """
    repeats = check_positive_int(repeats, "repeats")
    queries = np.asarray(queries)
    times: list[float] = []
    results: list[QueryResult] = []
    for _ in range(repeats):
        results = []
        start = time.perf_counter()
        for q in queries:
            results.append(searcher.query(q, radius))
        times.append(time.perf_counter() - start)

    total = float(np.mean(times))
    output_sizes = np.asarray([r.output_size for r in results], dtype=np.int64)
    linear_calls = np.mean(
        [1.0 if r.stats.strategy == Strategy.LINEAR else 0.0 for r in results]
    )
    if ground_truth is not None:
        truth_sets = ground_truth.neighbor_sets(radius)
        measured_recall = mean_recall([r.ids for r in results], truth_sets)
    else:
        measured_recall = float("nan")
    return StrategyRun(
        name=name,
        total_seconds=total,
        per_query_seconds=total / max(1, queries.shape[0]),
        recall=measured_recall,
        output_sizes=output_sizes,
        linear_call_fraction=float(linear_calls),
        results=results,
    )
