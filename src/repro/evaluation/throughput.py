"""Serving-throughput experiment: sequential vs batched vs sharded QPS.

The paper evaluates per-query CPU time; a serving system cares about
queries per second under batching.  This experiment times three ways of
answering the same query set against the same data:

* ``sequential`` — the seed behaviour: one
  :meth:`~repro.core.hybrid.HybridSearcher.query` call per query;
* ``batched`` — one :class:`~repro.service.batch.BatchQueryEngine`
  batch (fused Step-S1 hashing, grouped linear pass, vectorised dedup);
* ``frozen_batched`` — the same batch over the *same* index compacted
  into the frozen CSR layout (:meth:`~repro.index.lsh_index.LSHIndex.freeze`):
  searchsorted lookups, stacked-register sketch merging, slice-scatter
  dedup — no per-bucket Python objects on the hot path;
* ``sharded`` — one :class:`~repro.service.sharded.ShardedHybridIndex`
  batch across ``K`` shards (thread-pool fan-out);
* ``workers`` (optional) — the same ``K`` shards frozen, persisted,
  and served by a :class:`~repro.service.workers.WorkerPool` of worker
  *processes* that mmap the saved shard arrays — the only mode that can
  use more than one core for the GIL-bound per-shard dedup/merge work;
* ``frozen_batched_traced`` — the frozen batch path again with
  per-stage tracing enabled on the facade; its QPS against
  ``frozen_batched`` measures the enabled-tracing overhead, and its
  ``matches`` flag asserts that tracing never changes an answer;
* ``multiprobe_sequential`` / ``frozen_multiprobe`` (optional) — a
  :class:`~repro.index.multiprobe_index.MultiProbeLSHIndex` over the
  same workload, per-query loop vs the same index compacted into the
  frozen CSR layout and batch-served.  Multi-probe examines
  ``1 + P`` buckets per table, so the frozen layout's batched
  probe-sequence ``searchsorted`` has proportionally more per-bucket
  Python overhead to delete; the ``frozen_multiprobe`` row's
  ``speedup`` is measured against ``multiprobe_sequential`` (its own
  reference loop), not the plain ``sequential`` row.

The batched and sharded rows are served through the
:class:`repro.api.Index` facade — the surface a deployment actually
calls — so the acceptance bar charges the facade's bookkeeping
overhead too, not just the raw engines.

Each mode also gets a separate one-query-at-a-time latency pass whose
p50/p95/p99 land in the row (and the JSON artifact): batch time
divided by n understates what an individual caller waits.

Exactness is asserted, not assumed: the batched row only reports
``matches=True`` if every id and distance equals the sequential answer
bit for bit, and the sharded row compares its batch path against its
own per-query loop.  Index build time is excluded — the experiment
measures serving, not construction.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass

import numpy as np

from repro.core.cost_model import CostModel
from repro.core.hybrid import HybridLSH
from repro.core.results import QueryResult, Strategy
from repro.datasets.queries import split_queries
from repro.datasets.synthetic import gaussian_mixture
from repro.evaluation.report import format_table
from repro.observability import LatencyHistogram
from repro.service.batch import BatchQueryEngine
from repro.service.sharded import ShardedHybridIndex
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "ThroughputRow",
    "mixed_workload",
    "throughput_experiment",
    "format_throughput",
    "write_throughput_json",
]


@dataclass
class ThroughputRow:
    """One serving mode's measurement.

    ``speedup`` is relative to ``reference`` — the per-query loop the
    mode's ``matches`` flag is also asserted against (``"sequential"``
    for the plain rows, ``"multiprobe_sequential"`` for the multi-probe
    rows, whose index answers a different query plan).
    """

    mode: str
    num_queries: int
    seconds: float
    qps: float
    speedup: float
    matches: bool
    linear_fraction: float
    reference: str = "sequential"
    #: Single-query latency percentiles (seconds), from a separate
    #: one-query-at-a-time pass after the timed batch run — batching
    #: amortises overheads, so batch time / n understates what one
    #: caller waits; NaN when the pass was skipped.
    p50: float = float("nan")
    p95: float = float("nan")
    p99: float = float("nan")
    #: Total candidates whose exact distance was computed across the
    #: query set (a linear-scan row charges the full index size per
    #: query); NaN when the mode does not report it.
    candidates: float = float("nan")
    #: Mean recall against the brute-force radius ground truth; NaN
    #: when not measured (only the adaptive rows measure it).
    recall: float = float("nan")


def mixed_workload(
    n: int,
    dim: int = 24,
    num_queries: int = 200,
    seed: RandomState = 0,
) -> tuple[np.ndarray, np.ndarray, float]:
    """A Figure 1-style landscape where neither pure strategy wins.

    Tight Gaussian clusters produce "hard" queries (dense buckets →
    Algorithm 2 picks linear search) while a uniform background
    produces "easy" ones (near-empty buckets → LSH search).  Returns
    ``(data, queries, radius)`` with the queries split off the data per
    the paper's protocol; the radius spans a cluster, so cluster
    queries report hundreds of neighbors and background queries few.
    """
    rng = ensure_rng(seed)
    num_clusters = 6
    centers = rng.uniform(0.0, 10.0, size=(num_clusters, dim))
    # One dominant, very tight cluster: its points co-collide in every
    # table, so its queries exceed the Algorithm 2 linear threshold
    # (a cluster of size s costs up to (L + ratio) * s, vs ratio * n
    # for the scan) and dispatch to linear search.  Five mid-size
    # clusters sit safely *under* that threshold — LSH-bound but
    # collision-heavy, the regime where Step-S2 dedup dominates — and
    # a uniform background supplies the easy, near-empty-bucket queries.
    spreads = np.array([0.08, 0.10, 0.10, 0.10, 0.10, 0.10])
    weights = np.array([0.40, 0.12, 0.12, 0.12, 0.12, 0.12])
    points = gaussian_mixture(
        n + num_queries,
        dim,
        centers,
        spreads,
        weights=weights,
        background_fraction=0.25,
        background_scale=10.0,
        seed=rng,
    )
    data, queries = split_queries(points, num_queries=num_queries, seed=rng)
    radius = 0.25 * np.sqrt(2.0 * dim) * 1.2
    return data, queries, float(radius)


def _linear_fraction(results: list[QueryResult]) -> float:
    return float(
        np.mean([r.stats.strategy == Strategy.LINEAR for r in results])
    )


def _results_equal(a: list[QueryResult], b: list[QueryResult]) -> bool:
    return all(
        np.array_equal(x.ids, y.ids) and np.array_equal(x.distances, y.distances)
        for x, y in zip(a, b)
    )


def _time_best(fn, repeats: int) -> tuple[float, list[QueryResult]]:
    """Run ``fn`` ``repeats`` times; return (best wall time, last results)."""
    best = float("inf")
    results: list[QueryResult] = []
    for _ in range(repeats):
        started = time.perf_counter()
        results = fn()
        best = min(best, time.perf_counter() - started)
    return best, results


def _time_best_interleaved(fn_a, fn_b, repeats: int):
    """Best-of timing for two functions, alternating run-by-run.

    Two timings taken minutes apart at tens-of-milliseconds scale mostly
    measure host drift (frequency scaling, noisy neighbours); running
    the pair back to back inside each repeat subjects both to the same
    conditions, so their *ratio* — here the tracing-overhead figure —
    is meaningful.  Returns ``(best_a, last_results_a, best_b,
    last_results_b)``.
    """
    best_a = best_b = float("inf")
    results_a = results_b = None
    for _ in range(repeats):
        started = time.perf_counter()
        results_a = fn_a()
        best_a = min(best_a, time.perf_counter() - started)
        started = time.perf_counter()
        results_b = fn_b()
        best_b = min(best_b, time.perf_counter() - started)
    return best_a, results_a, best_b, results_b


def _latency_pass(fn_one, queries: np.ndarray) -> LatencyHistogram:
    """One-query-at-a-time latencies into a mergeable histogram.

    ``fn_one`` answers a single query vector.  This is a separate pass
    from the throughput timing: the batch run measures amortised cost,
    this measures what an individual caller waits, which is what the
    p50/p95/p99 columns report.
    """
    histogram = LatencyHistogram()
    for q in queries:
        started = time.perf_counter()
        fn_one(q)
        histogram.record(time.perf_counter() - started)
    return histogram


def throughput_experiment(
    points: np.ndarray,
    queries: np.ndarray,
    metric: str,
    radius: float,
    num_tables: int = 50,
    num_shards: int = 4,
    cost_model: CostModel | None = None,
    repeats: int = 1,
    seed: RandomState = 0,
    include_workers: bool = False,
    num_workers: int | None = None,
    include_multiprobe: bool = False,
    num_probes: int = 2,
    allow_partial: bool = False,
    include_adaptive: bool = False,
    adaptive_target: int | None = None,
) -> list[ThroughputRow]:
    """Measure sequential / batched / sharded QPS on one workload.

    The sequential and batched rows share one index (so the comparison
    isolates the serving path), the sharded row builds its own ``K``
    shard indexes.  ``cost_model=None`` calibrates on ``points`` once
    and shares the result, keeping the three dispatch policies aligned.

    ``include_workers=True`` adds the ``workers`` row: the same shard
    configuration built with the frozen layout and the *same* seed and
    cost model (so its per-shard hash draws equal the ``sharded`` row's
    bit for bit), persisted to a transient artifact, and served by a
    process pool of ``num_workers`` workers mmap'ing the saved arrays.
    Its ``matches`` flag asserts bit-identity against the thread path's
    per-query reference.

    ``include_multiprobe=True`` adds the ``multiprobe_sequential`` and
    ``frozen_multiprobe`` rows: one multi-probe index (``num_probes``
    extra buckets per table, same paper parameters and cost model),
    measured as a per-query loop and as the frozen CSR layout's batch
    path.  ``frozen_multiprobe.matches`` asserts bit-identity against
    the multi-probe sequential loop, and its ``speedup`` is relative to
    that loop.

    ``allow_partial=True`` opts the ``workers`` row's queries into
    degraded answers (the serving deployment's ``--allow-partial``
    posture).  On a healthy pool no shard is ever missing, so the row's
    ``matches`` flag still asserts full bit-identity — the knob charges
    the partial-result bookkeeping, not a different answer.

    ``include_adaptive=True`` adds the ``adaptive_fixed`` and
    ``adaptive_budget`` rows: one multi-probe frozen index served with
    the full fixed fan-out and the *same* spec served under a per-query
    probe budget (``adaptive_target`` candidates; default
    ``max(32, n // 100)``).  Both rows report the total candidates
    examined and their recall against the brute-force radius ground
    truth; the budget row's ``matches`` flag asserts its answers are a
    *subset* of the fixed row's (trimming may only drop, never invent).
    """
    if cost_model is None:
        from repro.core.calibration import calibrate_cost_model

        cost_model = calibrate_cost_model(points, metric, seed=seed).model
    queries = np.asarray(queries)
    num_queries = queries.shape[0]

    from repro.api import Index

    from repro.core.hybrid import HybridSearcher

    hybrid = HybridLSH(
        points, metric=metric, radius=radius, num_tables=num_tables,
        cost_model=cost_model, seed=seed,
    )
    engine = BatchQueryEngine(hybrid.searcher, radius=radius)
    # Freezing the *same* built index isolates the layout effect: the
    # hash draws, buckets, and sketches are identical by construction.
    frozen_engine = BatchQueryEngine(
        HybridSearcher(hybrid.index.freeze(), cost_model), radius=radius
    )
    sharded = ShardedHybridIndex(
        points, metric=metric, radius=radius, num_shards=num_shards,
        num_tables=num_tables, cost_model=cost_model, seed=seed,
    )
    # The serving rows go through the public facade (what a deployment
    # calls); it delegates to the engines above, bit-identically.
    batched_front = Index.from_engine(engine)
    frozen_front = Index.from_engine(frozen_engine)
    sharded_front = Index.from_engine(sharded)

    # Warm every path once (BLAS thread pools, lazy imports) before timing.
    warm = queries[:2]
    [hybrid.searcher.query(q, radius) for q in warm]
    batched_front.query_batch(warm, radius)
    frozen_front.query_batch(warm, radius)
    sharded_front.query_batch(warm, radius)

    seq_seconds, seq_results = _time_best(
        lambda: [hybrid.searcher.query(q, radius) for q in queries], repeats
    )
    bat_seconds, bat_results = _time_best(
        lambda: batched_front.query_batch(queries, radius), repeats
    )
    # Tracing must be measurement-only: same frozen engine, tracing on.
    # The traced row's ``matches`` flag doubles as the bit-identity gate
    # and its QPS against ``frozen_batched`` measures the enabled-tracing
    # overhead — so the two runs are interleaved repeat-by-repeat to
    # cancel host drift out of that ratio.
    def _frozen_traced():
        frozen_front.enable_tracing(True)
        try:
            return frozen_front.query_batch(queries, radius)
        finally:
            frozen_front.enable_tracing(False)

    fz_seconds, fz_results, tr_seconds, tr_results = _time_best_interleaved(
        lambda: frozen_front.query_batch(queries, radius),
        _frozen_traced,
        repeats,
    )
    sh_seconds, sh_results = _time_best(
        lambda: sharded_front.query_batch(queries, radius), repeats
    )
    sh_reference = [sharded.query(q, radius) for q in queries]

    seq_latency = _latency_pass(lambda q: hybrid.searcher.query(q, radius), queries)
    bat_latency = _latency_pass(
        lambda q: batched_front.query_batch(q[None, :], radius), queries
    )
    fz_latency = _latency_pass(
        lambda q: frozen_front.query_batch(q[None, :], radius), queries
    )
    sh_latency = _latency_pass(
        lambda q: sharded_front.query_batch(q[None, :], radius), queries
    )
    frozen_front.enable_tracing(True)
    try:
        tr_latency = _latency_pass(
            lambda q: frozen_front.query_batch(q[None, :], radius), queries
        )
    finally:
        frozen_front.enable_tracing(False)

    wk_seconds = wk_results = wk_latency = None
    if include_workers:
        wk_seconds, wk_results, wk_latency = _measure_workers(
            points,
            queries,
            metric=metric,
            radius=radius,
            num_tables=num_tables,
            num_shards=num_shards,
            cost_model=cost_model,
            seed=seed,
            repeats=repeats,
            num_workers=num_workers,
            allow_partial=allow_partial,
        )

    def row(
        mode: str,
        seconds: float,
        matches: bool,
        linear_fraction: float,
        latency: LatencyHistogram | None = None,
    ) -> ThroughputRow:
        quantiles = latency.quantiles() if latency is not None else {}
        return ThroughputRow(
            mode=mode,
            num_queries=num_queries,
            seconds=seconds,
            qps=num_queries / seconds if seconds else float("inf"),
            speedup=seq_seconds / seconds if seconds else float("inf"),
            matches=matches,
            linear_fraction=linear_fraction,
            p50=quantiles.get("p50", float("nan")),
            p95=quantiles.get("p95", float("nan")),
            p99=quantiles.get("p99", float("nan")),
        )

    rows = [
        row(
            "sequential", seq_seconds, True, _linear_fraction(seq_results),
            latency=seq_latency,
        ),
        row(
            "batched",
            bat_seconds,
            _results_equal(seq_results, bat_results),
            _linear_fraction(bat_results),
            latency=bat_latency,
        ),
        row(
            "frozen_batched",
            fz_seconds,
            _results_equal(seq_results, fz_results),
            _linear_fraction(fz_results),
            latency=fz_latency,
        ),
        row(
            "frozen_batched_traced",
            tr_seconds,
            # Stage timers wrap timing only — the traced run must stay
            # bit-identical to the sequential loop like the untraced one.
            _results_equal(seq_results, tr_results),
            _linear_fraction(tr_results),
            latency=tr_latency,
        ),
        row(
            "sharded",
            sh_seconds,
            _results_equal(sh_reference, sh_results),
            float("nan"),
            latency=sh_latency,
        ),
    ]
    if include_workers:
        rows.append(
            row(
                "workers",
                wk_seconds,
                # Same seed + cost model as the sharded row -> identical
                # per-shard draws; the process pool must reproduce the
                # thread path's answers bit for bit.
                _results_equal(sh_reference, wk_results),
                float("nan"),
                latency=wk_latency,
            )
        )
    if include_multiprobe:
        rows.extend(
            _measure_multiprobe(
                points,
                queries,
                metric=metric,
                radius=radius,
                num_tables=num_tables,
                num_probes=num_probes,
                cost_model=cost_model,
                seed=seed,
                repeats=repeats,
            )
        )
    if include_adaptive:
        rows.extend(
            _measure_adaptive(
                points,
                queries,
                metric=metric,
                radius=radius,
                num_tables=num_tables,
                num_probes=num_probes,
                cost_model=cost_model,
                seed=seed,
                repeats=repeats,
                adaptive_target=adaptive_target,
            )
        )
    return rows


def _measure_multiprobe(
    points: np.ndarray,
    queries: np.ndarray,
    metric: str,
    radius: float,
    num_tables: int,
    num_probes: int,
    cost_model: CostModel,
    seed: RandomState,
    repeats: int,
) -> list[ThroughputRow]:
    """The multi-probe serving rows (dict sequential vs frozen batch).

    One :class:`~repro.index.multiprobe_index.MultiProbeLSHIndex` is
    built with the paper presets; freezing the *same* built index
    isolates the layout effect exactly as the plain-index rows do.
    Both rows report their speedup relative to the multi-probe
    sequential loop.
    """
    from repro.api import Index
    from repro.core.hybrid import HybridSearcher
    from repro.core.presets import paper_parameters
    from repro.index.multiprobe_index import MultiProbeLSHIndex

    params = paper_parameters(
        metric, dim=points.shape[1], radius=radius, num_tables=num_tables, seed=seed
    )
    mp_index = MultiProbeLSHIndex(
        params.family,
        k=params.k,
        num_tables=params.num_tables,
        num_probes=num_probes,
    ).build(points)
    mp_searcher = HybridSearcher(mp_index, cost_model)
    frozen_front = Index.from_engine(
        BatchQueryEngine(
            HybridSearcher(mp_index.freeze(), cost_model), radius=radius
        )
    )
    warm = queries[:2]
    [mp_searcher.query(q, radius) for q in warm]
    frozen_front.query_batch(warm, radius)
    seq_seconds, seq_results = _time_best(
        lambda: [mp_searcher.query(q, radius) for q in queries], repeats
    )
    fz_seconds, fz_results = _time_best(
        lambda: frozen_front.query_batch(queries, radius), repeats
    )
    seq_latency = _latency_pass(lambda q: mp_searcher.query(q, radius), queries)
    fz_latency = _latency_pass(
        lambda q: frozen_front.query_batch(q[None, :], radius), queries
    )
    num_queries = queries.shape[0]

    def row(
        mode: str,
        seconds: float,
        matches: bool,
        linear_fraction: float,
        latency: LatencyHistogram,
    ):
        quantiles = latency.quantiles()
        return ThroughputRow(
            mode=mode,
            num_queries=num_queries,
            seconds=seconds,
            qps=num_queries / seconds if seconds else float("inf"),
            speedup=seq_seconds / seconds if seconds else float("inf"),
            matches=matches,
            linear_fraction=linear_fraction,
            reference="multiprobe_sequential",
            p50=quantiles.get("p50", float("nan")),
            p95=quantiles.get("p95", float("nan")),
            p99=quantiles.get("p99", float("nan")),
        )

    return [
        row(
            "multiprobe_sequential", seq_seconds, True,
            _linear_fraction(seq_results), seq_latency,
        ),
        row(
            "frozen_multiprobe",
            fz_seconds,
            _results_equal(seq_results, fz_results),
            _linear_fraction(fz_results),
            fz_latency,
        ),
    ]


def _measure_adaptive(
    points: np.ndarray,
    queries: np.ndarray,
    metric: str,
    radius: float,
    num_tables: int,
    num_probes: int,
    cost_model: CostModel,
    seed: RandomState,
    repeats: int,
    adaptive_target: int | None = None,
) -> list[ThroughputRow]:
    """The adaptive-execution rows: fixed fan-out vs per-query budget.

    Two spec-built facades share every knob (multi-probe frozen layout,
    seed, cost ratio) except the :class:`~repro.core.adaptive.AdaptivePolicy`,
    so their hash draws are identical and the budget row's answers are
    provably a subset of the fixed row's.  Both report the candidates
    their queries actually distance-checked and their recall against the
    brute-force radius ground truth — the "fewer candidates at equal
    recall" claim the adaptive layer makes, measured rather than assumed.
    """
    from repro.api import Index, IndexSpec, QuerySpec
    from repro.distances.matrix import pairwise_distances

    n = points.shape[0]
    if adaptive_target is None:
        adaptive_target = max(32, n // 100)
    base = dict(
        metric=metric,
        radius=radius,
        num_tables=num_tables,
        layout="frozen",
        variant="multiprobe",
        num_probes=num_probes,
        cost_ratio=float(cost_model.beta_over_alpha),
        seed=seed if isinstance(seed, int) else 0,
    )
    fixed_front = Index.build(points, IndexSpec(**base))
    budget_front = Index.build(
        points,
        IndexSpec(**base, adaptive={"target_candidates": int(adaptive_target)}),
    )

    warm = queries[:2]
    fixed_front.query(QuerySpec(warm))
    budget_front.query(QuerySpec(warm))
    fx_seconds, fx_results, ad_seconds, ad_results = _time_best_interleaved(
        lambda: list(fixed_front.query(QuerySpec(queries))),
        lambda: list(budget_front.query(QuerySpec(queries))),
        repeats,
    )
    fx_latency = _latency_pass(
        lambda q: fixed_front.query(QuerySpec(q)), queries
    )
    ad_latency = _latency_pass(
        lambda q: budget_front.query(QuerySpec(q)), queries
    )

    truth = pairwise_distances(queries, points, metric) <= radius

    def mean_recall(outcomes) -> float:
        recalls = []
        for outcome, row_truth in zip(outcomes, truth):
            true_ids = np.flatnonzero(row_truth)
            recalls.append(
                1.0
                if true_ids.size == 0
                else float(np.isin(true_ids, outcome.ids).mean())
            )
        return float(np.mean(recalls))

    def total_candidates(outcomes) -> float:
        return float(
            sum(max(0, outcome.candidates_examined) for outcome in outcomes)
        )

    def _is_subset(a, b) -> bool:
        # The id sets must nest exactly; distances may differ in the
        # final ulps when the budget flips a row from the scan to the
        # LSH kernel (different BLAS reduction order), so they are
        # compared within tolerance on the shared ids.
        if not set(a.ids.tolist()) <= set(b.ids.tolist()):
            return False
        ref = dict(zip(b.ids.tolist(), b.distances.tolist()))
        return all(
            np.isclose(d, ref[i], rtol=1e-9, atol=1e-12)
            for i, d in zip(a.ids.tolist(), a.distances.tolist())
        )

    subset_ok = all(
        _is_subset(a, b) for a, b in zip(ad_results, fx_results)
    )
    num_queries = queries.shape[0]

    def row(
        mode: str,
        seconds: float,
        matches: bool,
        outcomes,
        latency: LatencyHistogram,
    ) -> ThroughputRow:
        quantiles = latency.quantiles()
        return ThroughputRow(
            mode=mode,
            num_queries=num_queries,
            seconds=seconds,
            qps=num_queries / seconds if seconds else float("inf"),
            speedup=fx_seconds / seconds if seconds else float("inf"),
            matches=matches,
            linear_fraction=float(
                np.mean([o.strategy == "linear" for o in outcomes])
            ),
            reference="adaptive_fixed",
            p50=quantiles.get("p50", float("nan")),
            p95=quantiles.get("p95", float("nan")),
            p99=quantiles.get("p99", float("nan")),
            candidates=total_candidates(outcomes),
            recall=mean_recall(outcomes),
        )

    return [
        row("adaptive_fixed", fx_seconds, True, fx_results, fx_latency),
        row("adaptive_budget", ad_seconds, subset_ok, ad_results, ad_latency),
    ]


def _measure_workers(
    points: np.ndarray,
    queries: np.ndarray,
    metric: str,
    radius: float,
    num_tables: int,
    num_shards: int,
    cost_model: CostModel,
    seed: RandomState,
    repeats: int,
    num_workers: int | None,
    allow_partial: bool = False,
) -> tuple[float, list[QueryResult], LatencyHistogram]:
    """Build, persist and time the process-pool serving mode.

    The frozen sharded index shares the thread row's seed and cost
    model, is saved to a transient artifact, and reopened behind the
    worker pool (``execution="processes"``); build, save and pool
    startup are excluded from the timing, like every other mode.
    ``allow_partial`` opts the timed queries into degraded answers; on
    a healthy pool the answers are unchanged, only the partial-result
    bookkeeping is charged.
    """
    import shutil
    import tempfile

    from repro.api import Index, IndexSpec

    frozen_sharded = ShardedHybridIndex(
        points,
        metric=metric,
        radius=radius,
        num_shards=num_shards,
        num_tables=num_tables,
        cost_model=cost_model,
        seed=seed,
        layout="frozen",
    )
    spec = IndexSpec(
        metric=metric,
        radius=radius,
        num_tables=num_tables,
        num_shards=num_shards,
        layout="frozen",
        execution="processes",
        seed=seed if isinstance(seed, int) else None,
    )
    front = Index.from_engine(frozen_sharded, spec=spec)
    path = tempfile.mkdtemp(prefix="repro-bench-workers-")
    try:
        front.save(path)
        front.close()
        workers_front = Index.open(path, num_workers=num_workers)
        try:
            kwargs = {"allow_partial": True} if allow_partial else {}
            workers_front.query_batch(queries[:2], radius, **kwargs)  # warm the pipes
            seconds, results = _time_best(
                lambda: workers_front.query_batch(queries, radius, **kwargs), repeats
            )
            latency = _latency_pass(
                lambda q: workers_front.query_batch(q[None, :], radius, **kwargs),
                queries,
            )
            return seconds, results, latency
        finally:
            workers_front.close()
    finally:
        shutil.rmtree(path, ignore_errors=True)


def format_throughput(rows: list[ThroughputRow], title: str = "") -> str:
    """Render the QPS comparison as a text table (percentiles in ms)."""
    headers = [
        "Mode", "Queries", "Seconds", "QPS", "Speedup", "Exact", "%LS",
        "p50ms", "p95ms", "p99ms", "Cands", "Recall",
    ]

    def ms(seconds: float) -> str:
        return "-" if np.isnan(seconds) else f"{seconds * 1e3:.2f}"

    body = [
        [
            row.mode,
            str(row.num_queries),
            f"{row.seconds:.3f}",
            f"{row.qps:.0f}",
            f"{row.speedup:.2f}x",
            "yes" if row.matches else "NO",
            "-" if np.isnan(row.linear_fraction) else f"{row.linear_fraction:.0%}",
            ms(row.p50),
            ms(row.p95),
            ms(row.p99),
            "-" if np.isnan(row.candidates) else f"{row.candidates:.0f}",
            "-" if np.isnan(row.recall) else f"{row.recall:.3f}",
        ]
        for row in rows
    ]
    table = format_table(headers, body)
    return f"{title}\n{table}" if title else table


def write_throughput_json(
    rows: list[ThroughputRow], path: str, meta: dict | None = None
) -> None:
    """Persist the measurement as a JSON artifact (perf trajectory)."""
    qps_by_mode = {row.mode: row.qps for row in rows}
    seq_qps = qps_by_mode.get("sequential")
    payload = {
        "experiment": "throughput",
        "python": platform.python_version(),
        "numpy": np.__version__,
        # Recorded so the workers-vs-threads comparison can be judged in
        # context: on a 1-core host the process pool cannot win.
        "cpu_count": os.cpu_count(),
        **(meta or {}),
        "modes": {
            row.mode: {
                "queries": row.num_queries,
                "seconds": row.seconds,
                "qps": row.qps,
                # vs the mode's own bit-identity reference loop (the
                # multiprobe rows reference multiprobe_sequential)...
                "speedup_vs_reference": row.speedup,
                "reference": row.reference,
                # ...and vs the shared sequential baseline, so
                # cross-mode ratios in this artifact stay comparable.
                "speedup_vs_sequential": (
                    row.qps / seq_qps if seq_qps else row.speedup
                ),
                "matches_reference": row.matches,
                "linear_fraction": None
                if np.isnan(row.linear_fraction)
                else row.linear_fraction,
                # Single-query latency percentiles (seconds) from the
                # dedicated one-at-a-time pass; null when not measured.
                "latency_p50": None if np.isnan(row.p50) else row.p50,
                "latency_p95": None if np.isnan(row.p95) else row.p95,
                "latency_p99": None if np.isnan(row.p99) else row.p99,
                # Adaptive-execution evidence: distance-checked candidate
                # total and brute-force recall; null for other modes.
                "candidates_examined": None
                if np.isnan(row.candidates)
                else row.candidates,
                "recall": None if np.isnan(row.recall) else row.recall,
            }
            for row in rows
        },
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
