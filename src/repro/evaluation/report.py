"""Plain-text rendering of experiment rows (paper-style tables/series)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.evaluation.experiments import Figure2Row, Figure3Row, RecallRow, Table1Row

__all__ = [
    "format_table",
    "format_figure2",
    "format_figure3",
    "format_table1",
    "format_recall",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned fixed-width text table."""
    columns = [list(col) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in columns]
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table 1: relative cost and error of HLLs per dataset."""
    headers = ["Dataset", "% Cost", "% Error", "% Error std", "r", "queries"]
    body = [
        [
            row.dataset,
            f"{row.cost_percent:.2f}%",
            f"{row.error_percent:.2f}%",
            f"{row.error_std_percent:.2f}%",
            f"{row.radius:g}",
            str(row.num_queries),
        ]
        for row in rows
    ]
    return format_table(headers, body)


def format_figure2(rows: Sequence[Figure2Row], title: str = "") -> str:
    """Render one Figure 2 panel as a radius / times series."""
    headers = [
        "Radius",
        "Hybrid (s)",
        "LSH (s)",
        "Linear (s)",
        "winner",
        "%LS calls",
        "Hybrid recall",
        "LSH recall",
    ]
    body = [
        [
            f"{row.radius:g}",
            f"{row.hybrid_seconds:.4f}",
            f"{row.lsh_seconds:.4f}",
            f"{row.linear_seconds:.4f}",
            row.winner,
            f"{100 * row.linear_call_fraction:.0f}%",
            f"{row.hybrid_recall:.3f}",
            f"{row.lsh_recall:.3f}",
        ]
        for row in rows
    ]
    table = format_table(headers, body)
    return f"{title}\n{table}" if title else table


def format_recall(rows: Sequence[RecallRow], title: str = "") -> str:
    """Render the recall comparison (the paper's omitted experiment)."""
    headers = ["Radius", "Hybrid recall", "LSH recall", "Analytic", "%LS calls"]
    body = [
        [
            f"{row.radius:g}",
            f"{row.hybrid_recall:.3f}",
            f"{row.lsh_recall:.3f}",
            f"{row.analytic_recall:.3f}",
            f"{100 * row.linear_call_fraction:.0f}%",
        ]
        for row in rows
    ]
    table = format_table(headers, body)
    return f"{title}\n{table}" if title else table


def format_figure3(rows: Sequence[Figure3Row], title: str = "") -> str:
    """Render Figure 3 (both panels) as a radius series."""
    headers = ["Radius", "Avg out", "Max out", "Min out", "n/2", "%LS calls"]
    body = [
        [
            f"{row.radius:g}",
            f"{row.avg_output:.1f}",
            str(row.max_output),
            str(row.min_output),
            str(row.n // 2),
            f"{row.linear_call_percent:.1f}%",
        ]
        for row in rows
    ]
    table = format_table(headers, body)
    return f"{title}\n{table}" if title else table
