"""Evaluation harness: ground truth, metrics, runners and experiment specs.

Reproduces the paper's Section 4 protocol: 100 queries randomly removed
from each dataset, averages over repeated runs, and one experiment
function per table/figure:

* :func:`table1_experiment` — Table 1 (relative cost and error of HLL);
* :func:`figure2_experiment` — Figure 2 (CPU time vs radius for hybrid
  / LSH / linear);
* :func:`figure3_experiment` — Figure 3 (output-size spread and % of
  linear-search calls on Webspam).
"""

from repro.evaluation.ground_truth import GroundTruth
from repro.evaluation.metrics import (
    mean_recall,
    recall,
    relative_error,
    summarize,
)
from repro.evaluation.runner import StrategyRun, run_queries
from repro.evaluation.experiments import (
    Figure2Row,
    Figure3Row,
    RecallRow,
    Table1Row,
    figure2_experiment,
    figure3_experiment,
    recall_experiment,
    table1_experiment,
)
from repro.evaluation.profile import (
    distance_profile,
    hardness_profile,
    suggest_radii,
)
from repro.evaluation.report import (
    format_figure2,
    format_figure3,
    format_recall,
    format_table,
)
from repro.evaluation.throughput import (
    ThroughputRow,
    format_throughput,
    mixed_workload,
    throughput_experiment,
    write_throughput_json,
)

__all__ = [
    "GroundTruth",
    "recall",
    "mean_recall",
    "relative_error",
    "summarize",
    "StrategyRun",
    "run_queries",
    "Table1Row",
    "Figure2Row",
    "Figure3Row",
    "RecallRow",
    "table1_experiment",
    "figure2_experiment",
    "figure3_experiment",
    "recall_experiment",
    "distance_profile",
    "hardness_profile",
    "suggest_radii",
    "format_table",
    "format_figure2",
    "format_figure3",
    "format_recall",
    "ThroughputRow",
    "mixed_workload",
    "throughput_experiment",
    "format_throughput",
    "write_throughput_json",
]
