"""Experiment specifications — one function per paper table/figure.

Each function takes a :class:`~repro.datasets.base.Dataset` (usually a
stand-in from :mod:`repro.datasets`), applies the paper's protocol
(remove 100 query points, paper parameter presets, average over runs)
and returns typed rows that the report module renders and the
benchmarks regenerate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.calibration import calibrate_cost_model
from repro.core.cost_model import CostModel
from repro.core.hybrid import HybridSearcher
from repro.core.linear_scan import LinearScan
from repro.core.lsh_search import LSHSearch
from repro.core.presets import paper_parameters
from repro.core.results import Strategy
from repro.datasets.base import Dataset
from repro.datasets.queries import split_queries
from repro.evaluation.ground_truth import GroundTruth
from repro.evaluation.metrics import relative_error
from repro.evaluation.runner import run_queries
from repro.index.lsh_index import LSHIndex
from repro.utils.rng import RandomState

__all__ = [
    "Table1Row",
    "Figure2Row",
    "Figure3Row",
    "RecallRow",
    "table1_experiment",
    "figure2_experiment",
    "figure3_experiment",
    "recall_experiment",
    "build_paper_index",
]


def build_paper_index(
    data: np.ndarray,
    metric: str,
    radius: float,
    num_tables: int = 50,
    delta: float = 0.1,
    hll_precision: int = 7,
    seed: RandomState = None,
) -> LSHIndex:
    """Build one sketched index with the paper's parameter presets."""
    params = paper_parameters(
        metric, dim=data.shape[1], radius=radius, num_tables=num_tables, delta=delta, seed=seed
    )
    return LSHIndex(
        params.family,
        k=params.k,
        num_tables=params.num_tables,
        hll_precision=hll_precision,
    ).build(data)


# ----------------------------------------------------------------------
# Table 1 — relative cost and error of HLLs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    """One dataset column of Table 1.

    ``cost_percent`` is the share of total LSH query time spent merging
    HLLs and estimating ``candSize``; ``error_percent`` is the mean
    relative error of the estimate vs. the exact candidate count, and
    ``error_std_percent`` its standard deviation across queries.
    """

    dataset: str
    cost_percent: float
    error_percent: float
    error_std_percent: float
    num_queries: int
    radius: float


def table1_experiment(
    dataset: Dataset,
    num_queries: int = 100,
    radius: float | None = None,
    num_tables: int = 50,
    delta: float = 0.1,
    hll_precision: int = 7,
    seed: int = 0,
) -> Table1Row:
    """Measure HLL estimation overhead and accuracy (paper Table 1).

    Protocol: the paper reports averages "for a small range of radii
    where LSH-based search significantly outperforms linear search";
    we use the smallest radius of the dataset's sweep by default.

    Per query we time (a) the full LSH-based search pipeline and
    (b) the extra sketch-merge + estimate step, then compare the
    estimate with the exact distinct-candidate count.
    """
    radius = float(dataset.radii[0]) if radius is None else float(radius)
    data, queries = split_queries(dataset.points, num_queries=num_queries, seed=seed)
    index = build_paper_index(
        data,
        dataset.metric,
        radius,
        num_tables=num_tables,
        delta=delta,
        hll_precision=hll_precision,
        seed=seed,
    )
    searcher = LSHSearch(index)

    errors: list[float] = []
    hll_seconds = 0.0
    total_seconds = 0.0
    for q in queries:
        start = time.perf_counter()
        lookup = index.lookup(q)
        estimated = index.merged_sketch(lookup).estimate()
        hll_elapsed = time.perf_counter() - start
        # Run the S2+S3 pipeline from the same lookup, as hybrid would.
        result = searcher.query_from_lookup(q, radius, lookup)
        total_elapsed = time.perf_counter() - start
        hll_seconds += hll_elapsed - _lookup_seconds_estimate(index, q)
        total_seconds += total_elapsed
        exact = result.stats.exact_candidates
        if exact > 0:
            errors.append(relative_error(estimated, exact))

    error_arr = np.asarray(errors) if errors else np.asarray([0.0])
    return Table1Row(
        dataset=dataset.name,
        cost_percent=100.0 * max(0.0, hll_seconds) / total_seconds,
        error_percent=100.0 * float(error_arr.mean()),
        error_std_percent=100.0 * float(error_arr.std()),
        num_queries=int(queries.shape[0]),
        radius=radius,
    )


def _lookup_seconds_estimate(index: LSHIndex, query: np.ndarray) -> float:
    """Seconds to hash + locate the query's buckets (the Step-S1 share).

    Table 1's "% Cost" isolates the HLL overhead from the S1 lookup
    that both classic LSH and hybrid search must pay anyway, so we
    time a bare lookup and subtract it.
    """
    start = time.perf_counter()
    index.lookup(query)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# Figure 2 — CPU time vs radius for the three strategies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure2Row:
    """One radius point of a Figure 2 panel."""

    radius: float
    hybrid_seconds: float
    lsh_seconds: float
    linear_seconds: float
    hybrid_recall: float
    lsh_recall: float
    linear_recall: float
    linear_call_fraction: float

    @property
    def winner(self) -> str:
        """Which strategy was fastest at this radius."""
        times = {
            "hybrid": self.hybrid_seconds,
            "lsh": self.lsh_seconds,
            "linear": self.linear_seconds,
        }
        return min(times, key=times.get)


def figure2_experiment(
    dataset: Dataset,
    radii: tuple[float, ...] | None = None,
    num_queries: int = 100,
    repeats: int = 5,
    num_tables: int = 50,
    delta: float = 0.1,
    hll_precision: int = 7,
    cost_model: CostModel | None = None,
    seed: int = 0,
    with_recall: bool = True,
) -> list[Figure2Row]:
    """CPU time of hybrid / LSH / linear over a radius sweep (Figure 2).

    One index is built per radius (the paper's parameters depend on
    ``r``) and shared by the hybrid and pure-LSH strategies, exactly as
    in the paper's comparison.  ``cost_model`` defaults to the Section
    4.2 protocol: measure ``alpha`` and ``beta`` on a random sample of
    the data (the paper used 100 queries x 10,000 points).
    """
    radii = dataset.radii if radii is None else tuple(radii)
    data, queries = split_queries(dataset.points, num_queries=num_queries, seed=seed)
    if cost_model is None:
        cost_model = calibrate_cost_model(data, dataset.metric, seed=seed).model
    linear = LinearScan(data, dataset.metric)
    truth = GroundTruth(data, queries, dataset.metric) if with_recall else None

    rows: list[Figure2Row] = []
    for radius in radii:
        index = build_paper_index(
            data,
            dataset.metric,
            radius,
            num_tables=num_tables,
            delta=delta,
            hll_precision=hll_precision,
            seed=seed,
        )
        hybrid_run = run_queries(
            HybridSearcher(index, cost_model), queries, radius, "hybrid",
            repeats=repeats, ground_truth=truth,
        )
        lsh_run = run_queries(
            LSHSearch(index), queries, radius, "lsh", repeats=repeats, ground_truth=truth
        )
        linear_run = run_queries(
            linear, queries, radius, "linear", repeats=repeats, ground_truth=truth
        )
        rows.append(
            Figure2Row(
                radius=float(radius),
                hybrid_seconds=hybrid_run.total_seconds,
                lsh_seconds=lsh_run.total_seconds,
                linear_seconds=linear_run.total_seconds,
                hybrid_recall=hybrid_run.recall,
                lsh_recall=lsh_run.recall,
                linear_recall=linear_run.recall,
                linear_call_fraction=hybrid_run.linear_call_fraction,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 3 — output-size spread and % linear-search calls (Webspam)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure3Row:
    """One radius point of Figure 3 (both panels)."""

    radius: float
    avg_output: float
    max_output: int
    min_output: int
    linear_call_percent: float
    n: int

    @property
    def max_exceeds_half_n(self) -> bool:
        """The paper's observation: hard queries report > n/2 points."""
        return self.max_output > self.n / 2


def figure3_experiment(
    dataset: Dataset,
    radii: tuple[float, ...] | None = None,
    num_queries: int = 100,
    num_tables: int = 50,
    delta: float = 0.1,
    hll_precision: int = 7,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> list[Figure3Row]:
    """Output-size statistics and hybrid linear-call share (Figure 3).

    The left panel (avg/max/min output size) is exact, from ground
    truth; the right panel replays the hybrid decision per query.
    ``cost_model=None`` calibrates alpha/beta on the data (Section 4.2).
    """
    radii = dataset.radii if radii is None else tuple(radii)
    data, queries = split_queries(dataset.points, num_queries=num_queries, seed=seed)
    if cost_model is None:
        cost_model = calibrate_cost_model(data, dataset.metric, seed=seed).model
    truth = GroundTruth(data, queries, dataset.metric)

    rows: list[Figure3Row] = []
    for radius in radii:
        sizes = truth.output_sizes(radius)
        index = build_paper_index(
            data,
            dataset.metric,
            radius,
            num_tables=num_tables,
            delta=delta,
            hll_precision=hll_precision,
            seed=seed,
        )
        hybrid = HybridSearcher(index, cost_model)
        decisions = [hybrid.decide(q) for q in queries]
        linear_share = float(
            np.mean([d == Strategy.LINEAR for d in decisions])
        )
        rows.append(
            Figure3Row(
                radius=float(radius),
                avg_output=float(sizes.mean()),
                max_output=int(sizes.max()),
                min_output=int(sizes.min()),
                linear_call_percent=100.0 * linear_share,
                n=int(data.shape[0]),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Recall vs radius — the experiment the paper mentions but omits
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecallRow:
    """One radius point of the recall comparison.

    ``analytic_recall`` is the expectation
    ``mean_i 1 - (1 - p(c_i)^k)^L`` over the true neighbors' actual
    distances — the number the parameter rule is really promising.
    """

    radius: float
    hybrid_recall: float
    lsh_recall: float
    analytic_recall: float
    linear_call_fraction: float


def recall_experiment(
    dataset: Dataset,
    radii: tuple[float, ...] | None = None,
    num_queries: int = 100,
    num_tables: int = 50,
    delta: float = 0.1,
    hll_precision: int = 7,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> list[RecallRow]:
    """Measured and analytic recall of hybrid vs pure LSH (paper §4.2).

    The paper notes "hybrid search gives higher recall ratio than
    LSH-based search since it uses linear search for 'hard' queries"
    but omits the numbers for space; this regenerates them.  The
    analytic column integrates the per-neighbor success probability
    ``1 - (1 - p(c)^k)^L`` over the exact neighbor distances, giving
    the theory line the measurements should track.
    """
    from repro.core.presets import paper_parameters
    from repro.hashing.params import expected_recall

    radii = dataset.radii if radii is None else tuple(radii)
    data, queries = split_queries(dataset.points, num_queries=num_queries, seed=seed)
    if cost_model is None:
        cost_model = calibrate_cost_model(data, dataset.metric, seed=seed).model
    truth = GroundTruth(data, queries, dataset.metric)

    rows: list[RecallRow] = []
    for radius in radii:
        params = paper_parameters(
            dataset.metric, dim=data.shape[1], radius=float(radius),
            num_tables=num_tables, delta=delta, seed=seed,
        )
        index = LSHIndex(
            params.family, k=params.k, num_tables=params.num_tables,
            hll_precision=hll_precision,
        ).build(data)
        hybrid_run = run_queries(
            HybridSearcher(index, cost_model), queries, float(radius), "hybrid",
            repeats=1, ground_truth=truth,
        )
        lsh_run = run_queries(
            LSHSearch(index), queries, float(radius), "lsh",
            repeats=1, ground_truth=truth,
        )
        neighbor_distances = np.concatenate([
            truth.distances(i)[truth.neighbors(i, float(radius))]
            for i in range(queries.shape[0])
        ])
        probabilities = params.family.collision_probability_batch(neighbor_distances)
        analytic = expected_recall(probabilities, k=params.k, num_tables=params.num_tables)
        rows.append(
            RecallRow(
                radius=float(radius),
                hybrid_recall=hybrid_run.recall,
                lsh_recall=lsh_run.recall,
                analytic_recall=analytic,
                linear_call_fraction=hybrid_run.linear_call_fraction,
            )
        )
    return rows
