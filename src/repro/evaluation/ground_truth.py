"""Exact ground truth for rNNR queries, computed once and cached.

Recall measurement and the Figure 3 output-size statistics both need
the exact neighbor sets of every query at every radius; a single
distance matrix pass per query serves all radii at once.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric, get_metric
from repro.utils.validation import check_matrix

__all__ = ["GroundTruth"]


class GroundTruth:
    """Exact neighbor sets of a query set over a point set.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    queries:
        ``(q, d)`` query matrix.
    metric:
        Metric name or object.

    Notes
    -----
    Distances are computed lazily per query and cached, so asking for
    several radii costs one scan per query total.
    """

    def __init__(self, points: np.ndarray, queries: np.ndarray, metric: str | Metric) -> None:
        self.points = check_matrix(points, name="points")
        self.queries = check_matrix(queries, dim=self.points.shape[1], name="queries")
        self.metric = get_metric(metric)
        self._distances: dict[int, np.ndarray] = {}

    def distances(self, query_index: int) -> np.ndarray:
        """All n distances of one query (cached)."""
        if query_index not in self._distances:
            self._distances[query_index] = self.metric.distances_to(
                self.points, self.queries[query_index]
            )
        return self._distances[query_index]

    def neighbors(self, query_index: int, radius: float) -> np.ndarray:
        """Exact ids within ``radius`` of query ``query_index``."""
        return np.flatnonzero(self.distances(query_index) <= radius)

    def neighbor_sets(self, radius: float) -> list[np.ndarray]:
        """Exact neighbor ids for every query at one radius."""
        return [self.neighbors(i, radius) for i in range(self.queries.shape[0])]

    def output_sizes(self, radius: float) -> np.ndarray:
        """Exact output size per query (Figure 3 left panel data)."""
        return np.asarray(
            [self.neighbors(i, radius).size for i in range(self.queries.shape[0])],
            dtype=np.int64,
        )

    def __repr__(self) -> str:
        return (
            f"GroundTruth(n={self.points.shape[0]}, q={self.queries.shape[0]}, "
            f"metric={self.metric.name})"
        )
