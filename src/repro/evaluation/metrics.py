"""Quality metrics: recall, relative estimation error, summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["recall", "mean_recall", "relative_error", "summarize", "Summary"]


def recall(reported_ids: np.ndarray, true_ids: np.ndarray) -> float:
    """Fraction of true near neighbors that were reported.

    Empty ground truth counts as perfect recall (nothing to miss).
    """
    true_ids = np.asarray(true_ids)
    if true_ids.size == 0:
        return 1.0
    reported_ids = np.asarray(reported_ids)
    return float(np.isin(true_ids, reported_ids).mean())


def mean_recall(
    reported: list[np.ndarray], truth: list[np.ndarray]
) -> float:
    """Average per-query recall over a query set."""
    if len(reported) != len(truth):
        raise ValueError(
            f"got {len(reported)} result sets but {len(truth)} ground-truth sets"
        )
    if not reported:
        return 1.0
    return float(np.mean([recall(r, t) for r, t in zip(reported, truth)]))


def relative_error(estimate: float, exact: float) -> float:
    """``|estimate - exact| / exact``; zero-exact pairs use the convention
    0 for a zero estimate and ``inf`` otherwise."""
    if exact == 0:
        return 0.0 if estimate == 0 else math.inf
    return abs(estimate - exact) / abs(exact)


@dataclass(frozen=True)
class Summary:
    """Mean / std / min / max of a sample (for reporting)."""

    mean: float
    std: float
    min: float
    max: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.3g} (min {self.min:.4g}, max {self.max:.4g})"


def summarize(values: np.ndarray | list[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        mean=float(arr.mean()),
        std=float(arr.std()),
        min=float(arr.min()),
        max=float(arr.max()),
        count=int(arr.size),
    )
