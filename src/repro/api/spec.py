"""Declarative index and query specifications.

:class:`IndexSpec` is the single vocabulary for constructing a hybrid
index — metric, hash family, table count and width, sketch
configuration, cost model, shard count, cache policy — as one
immutable, validated value with a JSON round-trip
(:meth:`IndexSpec.to_dict` / :meth:`IndexSpec.from_dict`).  Every
frontend (the :class:`repro.api.Index` facade, the CLI, the JSON-lines
protocol, saved-index files) speaks this document instead of its own
constructor dialect.

:class:`QuerySpec` is the request-side counterpart: one value that
expresses a radius query, an exact top-k query, or a whole batch of
either, so ``Index.query`` needs exactly one signature.

JSON schema (all keys optional unless noted)::

    {
      "metric":        "l2" | "l1" | "cosine" | "hamming" | "jaccard",  # required
      "radius":        2.0,            # required; tuned/default query radius
      "num_tables":    50,             # L
      "delta":         0.1,            # failure probability of the (1-delta) guarantee
      "k":             null,           # concatenation width; null = paper rule
      "hash_family":   null,           # registered family name; null = metric default
      "bucket_width":  null,           # w for p-stable families; null = paper preset
      "family_params": null,           # extra kwargs for a custom family factory
      "hll_precision": 7,              # m = 2**p sketch registers
      "hll_seed":      0,
      "lazy_threshold": null,          # small-bucket trick cutoff; null = m
      "estimator":     "hll",          # registered candSize estimator
      "cost_ratio":    6.0,            # beta/alpha; null = calibrate by timing
      "num_shards":    1,              # K > 1 builds a sharded index
      "cache_size":    0,              # LRU result-cache capacity; 0 = off
      "cache_quantum": 1e-9,           # cache key quantisation step
      "dedup":         "vectorized",   # serving-side Step-S2 dedup
      "layout":        "dict",         # bucket storage: "dict" | "frozen" (CSR arrays)
      "variant":       "plain",        # index variant: "plain" | "multiprobe"
                                       # | "covering" (hamming only, integer radius)
      "num_probes":    2,              # extra probed buckets per table (multiprobe)
      "execution":     "threads",      # shard fan-out: "threads" | "processes"
                                       # ("processes" = mmap'd worker pool;
                                       #  requires layout "frozen")
      "replicas":      1,              # endpoints per worker slot; > 1
                                       # replicates every shard for failover
                                       # (requires execution "processes")
      "adaptive":      null,           # AdaptivePolicy document; null = fixed
                                       # probe budgets, exact top-k fallback
      "seed":          null            # master randomness (int for reproducibility)
    }

:class:`QuerySpec` additionally carries per-request adaptive overrides
(``adaptive`` / ``target_candidates`` / ``quality_floor``, all ``None``
= follow the index policy) — see
:class:`~repro.core.adaptive.AdaptivePolicy`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.core.adaptive import AdaptivePolicy
from repro.distances import get_metric
from repro.exceptions import ConfigurationError
from repro.hashing.base import get_family
from repro.sketches.registry import get_estimator
from repro.utils.validation import (
    check_delta,
    check_positive,
    check_positive_int,
)

__all__ = ["IndexSpec", "QuerySpec"]

_SPEC_VERSION = 1


@dataclass(frozen=True)
class IndexSpec:
    """Immutable, validated description of one hybrid index.

    Examples
    --------
    >>> spec = IndexSpec(metric="l2", radius=2.0, num_shards=4)
    >>> IndexSpec.from_dict(spec.to_dict()) == spec
    True
    >>> IndexSpec(metric="l2", radius=-1.0)
    Traceback (most recent call last):
        ...
    repro.exceptions.ConfigurationError: radius must be finite and > 0, got -1.0
    """

    metric: str
    radius: float
    num_tables: int = 50
    delta: float = 0.1
    k: int | None = None
    hash_family: str | None = None
    bucket_width: float | None = None
    family_params: dict[str, Any] | None = None
    hll_precision: int = 7
    hll_seed: int = 0
    lazy_threshold: int | None = None
    estimator: str = "hll"
    cost_ratio: float | None = 6.0
    num_shards: int = 1
    cache_size: int = 0
    cache_quantum: float = 1e-9
    dedup: str = "vectorized"
    layout: str = "dict"
    variant: str = "plain"
    num_probes: int = 2
    execution: str = "threads"
    replicas: int = 1
    adaptive: AdaptivePolicy | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "metric", get_metric(self.metric).name)
        set_(self, "radius", check_positive(self.radius, "radius"))
        set_(self, "num_tables", check_positive_int(self.num_tables, "num_tables"))
        set_(self, "delta", check_delta(self.delta))
        if self.k is not None:
            set_(self, "k", check_positive_int(self.k, "k"))
        if self.hash_family is not None:
            get_family(self.hash_family)  # raises on unknown names
            set_(self, "hash_family", self.hash_family.lower())
        if self.bucket_width is not None:
            set_(self, "bucket_width", check_positive(self.bucket_width, "bucket_width"))
        if self.family_params is not None and not isinstance(self.family_params, dict):
            raise ConfigurationError(
                f"family_params must be a dict or None, got {self.family_params!r}"
            )
        set_(self, "hll_precision", check_positive_int(self.hll_precision, "hll_precision"))
        set_(self, "hll_seed", int(self.hll_seed))
        if self.lazy_threshold is not None and (
            not isinstance(self.lazy_threshold, int) or self.lazy_threshold < 0
        ):
            raise ConfigurationError(
                f"lazy_threshold must be a non-negative int or None, "
                f"got {self.lazy_threshold!r}"
            )
        get_estimator(self.estimator)  # raises on unknown names
        set_(self, "estimator", self.estimator.lower())
        if self.cost_ratio is not None:
            set_(self, "cost_ratio", check_positive(self.cost_ratio, "cost_ratio"))
        set_(self, "num_shards", check_positive_int(self.num_shards, "num_shards"))
        if not isinstance(self.cache_size, int) or self.cache_size < 0:
            raise ConfigurationError(
                f"cache_size must be a non-negative int, got {self.cache_size!r}"
            )
        if not self.cache_quantum >= 0:
            raise ConfigurationError(
                f"cache_quantum must be >= 0, got {self.cache_quantum!r}"
            )
        set_(self, "cache_quantum", float(self.cache_quantum))
        if self.dedup not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f'dedup must be "scalar" or "vectorized", got {self.dedup!r}'
            )
        if self.layout not in ("dict", "frozen"):
            raise ConfigurationError(
                f'layout must be "dict" or "frozen", got {self.layout!r}'
            )
        if self.variant not in ("plain", "multiprobe", "covering"):
            raise ConfigurationError(
                f'variant must be "plain", "multiprobe" or "covering", '
                f"got {self.variant!r}"
            )
        if not isinstance(self.num_probes, int) or isinstance(self.num_probes, bool) or self.num_probes < 0:
            raise ConfigurationError(
                f"num_probes must be a non-negative int, got {self.num_probes!r}"
            )
        if self.variant == "covering":
            if self.metric != "hamming":
                raise ConfigurationError(
                    'variant="covering" is a Hamming-space construction; '
                    f"it requires metric=\"hamming\", got {self.metric!r}"
                )
            if not float(self.radius).is_integer():
                raise ConfigurationError(
                    'variant="covering" builds its guarantee for an integer '
                    f"Hamming radius, got {self.radius!r}"
                )
            if (
                self.hash_family is not None
                or self.k is not None
                or self.bucket_width is not None
                or self.family_params
            ):
                raise ConfigurationError(
                    'variant="covering" derives its tables from the radius '
                    "(r + 1 bit blocks); hash_family/k/bucket_width/"
                    "family_params do not apply"
                )
            # The construction fixes the table count at r + 1; normalise
            # so the persisted document never claims a count the artifact
            # does not have.
            set_(self, "num_tables", int(self.radius) + 1)
        if self.execution not in ("threads", "processes"):
            raise ConfigurationError(
                f'execution must be "threads" or "processes", '
                f"got {self.execution!r}"
            )
        if self.execution == "processes" and self.layout != "frozen":
            raise ConfigurationError(
                'execution="processes" requires layout="frozen" — the worker '
                "pool serves mmap'd frozen shard artifacts (zero-copy)"
            )
        set_(self, "replicas", check_positive_int(self.replicas, "replicas"))
        if self.replicas > 1 and self.execution != "processes":
            raise ConfigurationError(
                'replicas > 1 requires execution="processes" — only the '
                "worker pool runs independent endpoints per shard slot"
            )
        if self.adaptive is not None:
            if isinstance(self.adaptive, dict):
                # JSON documents carry the policy as a nested object.
                set_(self, "adaptive", AdaptivePolicy.from_dict(self.adaptive))
            elif not isinstance(self.adaptive, AdaptivePolicy):
                raise ConfigurationError(
                    f"adaptive must be an AdaptivePolicy, a policy document "
                    f"or None, got {self.adaptive!r}"
                )
        if self.seed is not None and (
            isinstance(self.seed, bool) or not isinstance(self.seed, int)
        ):
            raise ConfigurationError(
                f"seed must be an int or None (JSON-serialisable), got {self.seed!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable document; inverse of :meth:`from_dict`."""
        doc = asdict(self)
        doc["spec_version"] = _SPEC_VERSION
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> IndexSpec:
        """Validate and build a spec from a (parsed) JSON document."""
        if not isinstance(doc, dict):
            raise ConfigurationError(f"spec document must be an object, got {doc!r}")
        doc = dict(doc)
        version = doc.pop("spec_version", _SPEC_VERSION)
        if version != _SPEC_VERSION:
            raise ConfigurationError(f"unsupported spec_version: {version!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(f"unknown spec keys: {unknown}")
        if "metric" not in doc or "radius" not in doc:
            raise ConfigurationError('spec requires "metric" and "radius"')
        return cls(**doc)

    def with_overrides(self, **overrides: Any) -> IndexSpec:
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **overrides)


@dataclass(frozen=True, eq=False)
class QuerySpec:
    """One request against an :class:`repro.api.Index`.

    A single value covers the whole request surface:

    * ``QuerySpec(vector)`` — radius query at the index's tuned radius;
    * ``QuerySpec(vector, radius=0.5)`` — radius query at an explicit radius;
    * ``QuerySpec(vector, k=10)`` — exact top-k query;
    * ``QuerySpec(matrix, ...)`` — a batch of either kind (one result
      per row, answered through the batched engine).

    ``queries`` is normalised to a ``(q, d)`` float matrix; ``single``
    records whether the caller passed one vector (the facade then
    returns one :class:`~repro.core.results.QueryResult` instead of a
    list).

    Examples
    --------
    >>> spec = QuerySpec([1.0, 2.0], radius=0.5)
    >>> spec.mode, spec.single
    ('radius', True)
    >>> QuerySpec([[1.0, 2.0], [3.0, 4.0]], k=3).mode
    'topk'
    """

    queries: npt.NDArray[np.float64]
    radius: float | None = None
    k: int | None = None
    #: None until ``__post_init__`` resolves it from the query shape.
    single: bool | None = None
    #: opt into degraded answers when shards are unavailable: results
    #: from the reachable shards, tagged ``degraded=True`` with the
    #: missing shard ids, instead of a ShardUnavailableError.  Only
    #: meaningful for ``execution="processes"`` backends; elsewhere
    #: shards cannot fail independently and the flag is a no-op.
    allow_partial: bool = False
    #: per-request adaptive-execution overrides; ``None`` = follow the
    #: index's :class:`~repro.core.adaptive.AdaptivePolicy` for each.
    adaptive: bool | None = None
    target_candidates: int | None = None
    quality_floor: float | None = None

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        queries = np.asarray(self.queries, dtype=np.float64)
        if queries.ndim == 1:
            if self.single is None:
                set_(self, "single", True)
            queries = queries[None, :]
        elif queries.ndim == 2:
            if self.single is None:
                set_(self, "single", False)
        else:
            raise ConfigurationError(
                f"queries must be a vector or a (q, d) matrix, "
                f"got ndim={queries.ndim}"
            )
        set_(self, "queries", queries)
        if self.radius is not None and self.k is not None:
            raise ConfigurationError("pass either radius or k, not both")
        if self.radius is not None:
            set_(self, "radius", check_positive(self.radius, "radius"))
        if self.k is not None:
            set_(self, "k", check_positive_int(self.k, "k"))
        set_(self, "single", bool(self.single))
        set_(self, "allow_partial", bool(self.allow_partial))
        if self.adaptive is not None:
            set_(self, "adaptive", bool(self.adaptive))
        if self.target_candidates is not None:
            if (
                isinstance(self.target_candidates, bool)
                or not isinstance(self.target_candidates, int)
                or self.target_candidates <= 0
            ):
                raise ConfigurationError(
                    f"target_candidates must be a positive int or None, "
                    f"got {self.target_candidates!r}"
                )
        if self.quality_floor is not None:
            if not 0.0 <= float(self.quality_floor) <= 1.0:
                raise ConfigurationError(
                    f"quality_floor must be in [0, 1] or None, "
                    f"got {self.quality_floor!r}"
                )
            set_(self, "quality_floor", float(self.quality_floor))

    @property
    def mode(self) -> str:
        """``"topk"`` when ``k`` is set, else ``"radius"``."""
        return "topk" if self.k is not None else "radius"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable document; inverse of :meth:`from_dict`."""
        return {
            "queries": self.queries.tolist(),
            "radius": self.radius,
            "k": self.k,
            "single": self.single,
            "allow_partial": self.allow_partial,
            "adaptive": self.adaptive,
            "target_candidates": self.target_candidates,
            "quality_floor": self.quality_floor,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> QuerySpec:
        """Validate and build a query spec from a (parsed) JSON document."""
        if not isinstance(doc, dict) or "queries" not in doc:
            raise ConfigurationError(f'query spec requires "queries", got {doc!r}')
        known = {
            "queries", "radius", "k", "single", "allow_partial",
            "adaptive", "target_candidates", "quality_floor",
        }
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(f"unknown query-spec keys: {unknown}")
        return cls(
            queries=np.asarray(doc["queries"], dtype=np.float64),
            radius=doc.get("radius"),
            k=doc.get("k"),
            single=doc.get("single"),
            allow_partial=bool(doc.get("allow_partial", False)),
            adaptive=doc.get("adaptive"),
            target_candidates=doc.get("target_candidates"),
            quality_floor=doc.get("quality_floor"),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuerySpec):
            return NotImplemented
        return (
            np.array_equal(self.queries, other.queries)
            and self.radius == other.radius
            and self.k == other.k
            and self.single == other.single
            and self.allow_partial == other.allow_partial
            and self.adaptive == other.adaptive
            and self.target_candidates == other.target_candidates
            and self.quality_floor == other.quality_floor
        )

    def __repr__(self) -> str:
        q, d = self.queries.shape
        what = f"k={self.k}" if self.k is not None else f"radius={self.radius}"
        return f"QuerySpec({q}x{d}, {what}, single={self.single})"
