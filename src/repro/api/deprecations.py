"""Deprecation shims for the pre-spec front doors.

The top-level package keeps exporting ``HybridLSH``, ``QueryService``,
``BatchQueryEngine`` and ``ShardedHybridIndex`` so existing code runs
unchanged — but constructing one through ``repro.<Name>`` now emits a
single :class:`DeprecationWarning` per process pointing at the
spec-driven replacement.  The implementation classes themselves (in
:mod:`repro.core` and :mod:`repro.service`) stay warning-free: they are
the engines the :class:`repro.api.Index` facade runs on.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = ["deprecated_front_door", "warn_legacy_shape", "warn_once"]

#: names that have already warned this process (tests may clear this)
_WARNED: set[str] = set()


def warn_once(name: str, alternative: str, stacklevel: int = 3) -> None:
    """Emit one :class:`DeprecationWarning` per process for ``name``."""
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name}(...) is a deprecated front door; build via {alternative} "
        f"(see repro.api). The class keeps working unchanged.",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def warn_legacy_shape(name: str, alternative: str, stacklevel: int = 3) -> None:
    """Emit one :class:`DeprecationWarning` per process for a result shape.

    The typed envelope (:class:`repro.api.outcome.QueryOutcome`) is the
    supported answer shape; the pre-envelope shapes stay constructible
    through explicit shims (``to_result`` / ``to_results``) that warn
    once and then behave exactly as before.
    """
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name} is a deprecated result shape; use the QueryOutcome "
        f"envelope via {alternative} (see repro.api.outcome). "
        f"The shape itself is unchanged.",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def deprecated_front_door(cls: type[Any], alternative: str) -> type[Any]:
    """A subclass of ``cls`` that warns (once) on construction.

    The shim is substitutable everywhere the original is accepted
    (``isinstance`` checks see the real class) and forwards every
    argument untouched.
    """

    class Shim(cls):  # type: ignore[misc, valid-type]
        def __init__(self, *args: Any, **kwargs: Any) -> None:
            warn_once(cls.__name__, alternative)
            super().__init__(*args, **kwargs)

    Shim.__name__ = cls.__name__
    Shim.__qualname__ = cls.__qualname__
    Shim.__doc__ = cls.__doc__
    Shim.__module__ = cls.__module__
    return Shim
