"""Full-index persistence: spec + shards + id maps + cost model.

:func:`save_index` writes an :class:`~repro.api.facade.Index` to a
directory; :func:`open_index` reassembles it without rehashing a single
point, so the reopened index answers **bit-identically** to the one
that was saved (per-shard tables and sketches round-trip through
:mod:`repro.index.serialize`, the shard id maps and the calibrated
cost-model constants ride along).  Layout::

    path/
      index.json       # format version, spec document, cost model,
                       # shard routing state, bucket layout
      shard_000.npz    # one per dict-layout shard, via repro.index.serialize
      shard_000.frozen/  # one per frozen-layout shard: plain .npy arrays,
      ...                # reopened with np.load(mmap_mode="r") — zero-copy,
                         # no bucket reconstruction (repro.index.frozen)
      shard_gids.npz   # global-id map per shard (sharded indexes only)

Everything is JSON + numpy archives — no pickle, safe to load from
untrusted storage.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Any

import numpy as np

from repro.api.spec import IndexSpec
from repro.core.cost_model import CostModel
from repro.core.hybrid import HybridLSH, HybridSearcher
from repro.exceptions import ConfigurationError, CorruptArtifactError, ReproError
from repro.index.frozen import FrozenLSHIndex, load_frozen_index, save_frozen_index
from repro.index.serialize import load_index as _load_shard
from repro.index.serialize import save_index as _save_shard
from repro.service.batch import BatchQueryEngine
from repro.service.sharded import ShardedHybridIndex
from repro.utils.fsio import write_json_atomic

__all__ = ["save_index", "open_index"]

_FORMAT_VERSION = 1
_META_FILE = "index.json"
_GIDS_FILE = "shard_gids.npz"


def _shard_file(shard: int) -> str:
    return f"shard_{shard:03d}.npz"


def _frozen_shard_dir(shard: int) -> str:
    return f"shard_{shard:03d}.frozen"


def _save_shard_any(shard_index: Any, path: str, shard: int) -> str:
    """Persist one shard in its own layout; returns the layout tag.

    Dict-layout shards stay one compressed ``.npz``; frozen shards
    become a directory of mmap-loadable ``.npy`` arrays (see
    :mod:`repro.index.frozen`).
    """
    if isinstance(shard_index, FrozenLSHIndex):
        save_frozen_index(shard_index, os.path.join(path, _frozen_shard_dir(shard)))
        return "frozen"
    _save_shard(shard_index, os.path.join(path, _shard_file(shard)))
    return "dict"


def _load_shard_any(path: str, shard: int, layout: str) -> Any:
    if layout == "frozen":
        return load_frozen_index(os.path.join(path, _frozen_shard_dir(shard)))
    return _load_shard(os.path.join(path, _shard_file(shard)))


def write_shard_gids(path: str, shard_gids: list[np.ndarray]) -> None:
    """Write the per-shard global-id maps archive (single layout owner).

    Every writer of a sharded artifact — :func:`save_index` for both
    engine kinds and :meth:`~repro.service.workers.WorkerPool.checkpoint`
    — goes through here so the archive's keying scheme has one home.
    """
    target = os.path.join(path, _GIDS_FILE)
    tmp = f"{target}.tmp-{os.getpid()}"
    try:
        # Through a file handle so numpy cannot append another ``.npz``
        # to the temp name; fsync before the rename makes the swap safe
        # against a crash (or an injected worker kill) mid-write.
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                **{f"gids_{s:03d}": gids for s, gids in enumerate(shard_gids)},
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _read_meta(meta_path: str) -> dict[str, Any]:
    """Parse ``index.json``, raising a typed error on torn/corrupt files."""
    with open(meta_path) as fh:
        try:
            meta = json.load(fh)
        except ValueError as exc:
            raise CorruptArtifactError(
                f"index metadata {meta_path!r} is not valid JSON ({exc}); "
                "the artifact is truncated or corrupt"
            ) from exc
    if not isinstance(meta, dict):
        raise CorruptArtifactError(
            f"index metadata {meta_path!r} must hold a JSON object, "
            f"got {type(meta).__name__}"
        )
    missing = [
        key for key in ("spec", "cost_model", "n", "dim", "num_shards")
        if key not in meta
    ]
    if missing:
        raise CorruptArtifactError(
            f"index metadata {meta_path!r} is missing keys {missing}; "
            "the artifact is truncated or corrupt"
        )
    return meta


def save_index(index: Any, path: str) -> None:
    """Persist ``index`` (an :class:`repro.api.Index`) under directory ``path``."""
    from repro.api.facade import Index

    if not isinstance(index, Index):
        raise ConfigurationError(
            f"save_index persists repro.api.Index objects, got {type(index).__name__}"
        )
    if index.spec is None:
        raise ConfigurationError(
            "this Index wraps a legacy engine and carries no IndexSpec; "
            "build it via Index.build(points, spec) to make it persistable"
        )
    engine = index.engine
    cost_model = index.cost_model
    meta: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "spec": index.spec.to_dict(),
        "cost_model": {"alpha": cost_model.alpha, "beta": cost_model.beta},
        "n": index.n,
        "dim": index.dim,
    }
    os.makedirs(path, exist_ok=True)
    from repro.service.workers import WorkerPool

    if isinstance(engine, WorkerPool):
        # The parent holds no shard state: each owning worker writes its
        # shards (compacting any overflow first), the parent writes the
        # id maps and metadata around them.
        meta["num_shards"] = engine.num_shards
        meta["next_shard"] = int(engine._next_shard)
        meta["layout"] = "frozen"
        engine.save_shards(path)
        if engine.num_shards > 1:
            write_shard_gids(path, engine._shard_gids)
    elif isinstance(engine, ShardedHybridIndex):
        meta["num_shards"] = engine.num_shards
        meta["next_shard"] = int(engine._next_shard)
        layouts = {shard.index.layout for shard in engine.shards}
        if len(layouts) != 1:
            # Validate before writing anything: failing halfway would
            # leave a partial artifact next to a stale index.json.
            raise ConfigurationError(
                f"shards use mixed bucket layouts {sorted(layouts)}; "
                "freeze all shards or none before saving"
            )
        meta["layout"] = layouts.pop()
        for s, shard in enumerate(engine.shards):
            _save_shard_any(shard.index, path, s)
        write_shard_gids(path, engine._shard_gids)
    else:
        meta["num_shards"] = 1
        meta["next_shard"] = 0
        meta["layout"] = _save_shard_any(engine.index, path, 0)
    # The metadata commits last and atomically: readers that find a
    # complete index.json are guaranteed complete shard artifacts too.
    write_json_atomic(os.path.join(path, _META_FILE), meta)


def open_index(
    path: str,
    num_workers: int | None = None,
    fault_policy: Any = None,
    fault_plan: Any = None,
    endpoints: list[Any] | None = None,
) -> Any:
    """Reopen an index saved by :func:`save_index`.

    Returns an :class:`repro.api.Index` whose radius, top-k and batch
    answers are bit-identical to the saved instance's: the per-shard
    hash kernels, buckets and sketches are reconstructed exactly, and
    the cost model is restored from its saved constants (calibration is
    never re-run).  A spec carrying ``execution="processes"`` is served
    through a :class:`~repro.service.workers.WorkerPool` — ``K`` worker
    processes mmap the saved frozen shards, no arrays are loaded in the
    parent; ``num_workers`` overrides the pool width, ``fault_policy``
    (a :class:`~repro.faults.FaultTolerancePolicy`) tunes its deadlines
    / retries / breaker, and ``fault_plan`` installs a deterministic
    :class:`~repro.faults.FaultPlan` for chaos drills.  ``endpoints``
    connects the pool to already-running shard servers
    (``repro.cli shard-serve``) over TCP instead of spawning local
    worker processes — one ``"host:port,host:port"`` replica group per
    worker slot.
    """
    from repro.api.facade import (
        Index,
        _cache_from_spec,
        _resolve_estimator,
        _ShardedBackend,
    )

    meta_path = os.path.join(path, _META_FILE)
    if not os.path.exists(meta_path):
        raise ConfigurationError(f"no saved index at {path!r} (missing {_META_FILE})")
    meta = _read_meta(meta_path)
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported index format version: {meta.get('format_version')!r}"
        )
    spec = IndexSpec.from_dict(meta["spec"])
    if spec.execution == "processes":
        from repro.service.workers import WorkerPool

        pool = WorkerPool(
            path,
            num_workers=num_workers,
            policy=fault_policy,
            fault_plan=fault_plan,
            endpoints=endpoints,
        )
        return Index(_ShardedBackend(pool), spec=spec, cache=_cache_from_spec(spec))
    if num_workers is not None:
        raise ConfigurationError(
            "num_workers applies to execution=\"processes\" indexes only; "
            f"this artifact was saved with execution={spec.execution!r}"
        )
    if fault_policy is not None or fault_plan is not None:
        raise ConfigurationError(
            "fault_policy/fault_plan apply to execution=\"processes\" indexes "
            f"only; this artifact was saved with execution={spec.execution!r}"
        )
    if endpoints is not None:
        raise ConfigurationError(
            "endpoints apply to execution=\"processes\" indexes only; "
            f"this artifact was saved with execution={spec.execution!r}"
        )
    cost_model = CostModel(
        alpha=float(meta["cost_model"]["alpha"]), beta=float(meta["cost_model"]["beta"])
    )
    estimator = _resolve_estimator(spec)
    num_shards = int(meta["num_shards"])
    layout = meta.get("layout", "dict")
    backend: Any
    try:
        shard_indexes = [
            _load_shard_any(path, s, layout) for s in range(num_shards)
        ]
    except ReproError:
        raise
    except Exception as exc:
        raise CorruptArtifactError(
            f"saved index at {path!r} has unreadable shard data ({exc}); "
            "the artifact is truncated or corrupt"
        ) from exc
    if num_shards > 1:
        gids_path = os.path.join(path, _GIDS_FILE)
        try:
            with np.load(gids_path, allow_pickle=False) as archive:
                shard_gids = [archive[f"gids_{s:03d}"] for s in range(num_shards)]
        except Exception as exc:
            raise CorruptArtifactError(
                f"shard id map {gids_path!r} is unreadable ({exc}); "
                "the artifact is truncated or corrupt"
            ) from exc
        shards = [
            HybridLSH.from_index(
                idx, spec.radius, cost_model, delta=spec.delta, estimator=estimator
            )
            for idx in shard_indexes
        ]
        backend_engine = ShardedHybridIndex.from_state(
            shards,
            shard_gids,
            metric=spec.metric,
            radius=spec.radius,
            cost_model=cost_model,
            next_shard=int(meta.get("next_shard", 0)),
            dedup=spec.dedup,
        )
        backend = _ShardedBackend(backend_engine)
    else:
        from repro.api.facade import _SingleBackend

        searcher = HybridSearcher(shard_indexes[0], cost_model, estimator=estimator)
        engine = BatchQueryEngine(searcher, radius=spec.radius, dedup=spec.dedup)
        backend = _SingleBackend(engine)
    return Index(backend, spec=spec, cache=_cache_from_spec(spec))
