"""Spec-driven public API: one declarative front door for the package.

The paper's contribution is a single decision procedure; this package
gives it a single surface:

* :class:`IndexSpec` / :class:`QuerySpec` — immutable, validated
  descriptions of an index and a request, with JSON round-trips
  (``to_dict`` / ``from_dict``) so the CLI, the JSON-lines protocol
  and saved-index files all speak the same document;
* :class:`Index` — ``Index.build(points, spec)``, one
  ``index.query(QuerySpec)`` for radius / top-k / batch,
  ``insert``, and full ``save`` / ``Index.open`` persistence
  (including sharded indexes);
* the plugin registries — :func:`register_family` /
  :func:`get_family` for LSH families and :func:`register_estimator` /
  :func:`get_estimator` for ``candSize`` estimators — extending the
  distance-registry pattern so specs resolve everything by name.
"""

from repro.api.facade import Index, ServiceStats
from repro.api.outcome import BatchOutcome, QueryOutcome
from repro.api.persist import open_index, save_index
from repro.api.spec import IndexSpec, QuerySpec
from repro.core.adaptive import AdaptivePolicy
from repro.hashing.base import available_families, get_family, register_family
from repro.sketches.registry import (
    available_estimators,
    get_estimator,
    register_estimator,
)

__all__ = [
    "AdaptivePolicy",
    "BatchOutcome",
    "Index",
    "IndexSpec",
    "QueryOutcome",
    "QuerySpec",
    "ServiceStats",
    "save_index",
    "open_index",
    "register_family",
    "get_family",
    "available_families",
    "register_estimator",
    "get_estimator",
    "available_estimators",
]
