"""The ``Index`` facade: one spec-driven front door for every workload.

The package grew three entry points — :class:`~repro.core.hybrid.HybridLSH`
(single index), :class:`~repro.service.sharded.ShardedHybridIndex`
(partitioned), and :class:`~repro.service.service.QueryService`
(cache + counters) — each with its own constructor vocabulary.
:class:`Index` replaces them with one declarative surface:

* :meth:`Index.build` consumes an :class:`~repro.api.spec.IndexSpec`
  and assembles the right engine underneath (batched single index or
  sharded fan-out), the cost model (fixed ratio or timing-calibrated),
  the ``candSize`` estimator (resolved from the estimator registry),
  and the optional result cache;
* :meth:`Index.query` answers a :class:`~repro.api.spec.QuerySpec` —
  radius, exact top-k, single or batch — through one method, with
  answers bit-identical to the legacy paths it delegates to;
* :meth:`Index.insert` routes new points in and invalidates only the
  affected shards' cache entries (the cache stores per-shard partial
  answers under shard-tagged keys);
* :meth:`Index.save` / :meth:`Index.open` persist everything —
  per-shard tables and sketches, shard id maps, the spec, and the
  calibrated cost model — so a process restart never rebuilds.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any, cast

import numpy as np

from repro.api.deprecations import warn_legacy_shape
from repro.api.outcome import BatchOutcome, QueryOutcome
from repro.api.spec import IndexSpec, QuerySpec
from repro.core.adaptive import AdaptivePolicy
from repro.core.calibration import (
    DistanceProfile,
    calibrate_cost_model,
    measure_distance_profile,
)
from repro.core.cost_model import CostModel
from repro.core.hybrid import HybridLSH, HybridSearcher
from repro.core.presets import _PSTABLE_PRESETS, paper_parameters
from repro.core.linear_scan import exact_topk_results
from repro.core.results import QueryResult
from repro.distances import get_metric
from repro.distances.matrix import pairwise_distances
from repro.exceptions import ConfigurationError
from repro.faults import FaultPlan, FaultTolerancePolicy
from repro.hashing.base import family_for_metric, get_family
from repro.hashing.params import concatenation_width
from repro.index.lsh_index import LSHIndex
from repro.observability import StageTrace, stage_timer
from repro.service.batch import BatchQueryEngine
from repro.service.cache import QueryResultCache
from repro.service.sharded import ShardedHybridIndex
from repro.service.stats import ServiceStats
from repro.sketches.registry import get_estimator
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["Index", "ServiceStats"]


class _SingleBackend:
    """Adapter presenting a :class:`BatchQueryEngine` as a 1-shard backend."""

    kind = "single"

    def __init__(self, engine: BatchQueryEngine) -> None:
        self.engine = engine

    @property
    def num_partitions(self) -> int:
        return 1

    @property
    def n(self) -> int:
        return self.engine.n

    @property
    def dim(self) -> int:
        return self.engine.dim

    def resolve_radius(self, radius: float | None) -> float:
        return self.engine._resolve_radius(radius)

    def query_batch(
        self,
        queries: np.ndarray,
        radius: float,
        trace: StageTrace | None = None,
        allow_partial: bool = False,
        adaptive: AdaptivePolicy | None = None,
    ) -> list[QueryResult]:
        # A single in-process engine has no independently failing shards
        # — ``allow_partial`` is accepted for surface parity and ignored.
        return self.engine.query_batch(queries, radius, trace=trace, adaptive=adaptive)

    def shard_query_batch(
        self,
        shard: int,
        queries: np.ndarray,
        radius: float,
        adaptive: AdaptivePolicy | None = None,
    ) -> list[QueryResult]:
        return self.engine.query_batch(queries, radius, adaptive=adaptive)

    def merge(self, parts: list[QueryResult], radius: float) -> QueryResult:
        return parts[0]

    def map_shards(
        self, work: Callable[[int], list[QueryResult]]
    ) -> list[list[QueryResult]]:
        return [work(0)]

    def topk_batch(
        self,
        queries: np.ndarray,
        k: int,
        trace: StageTrace | None = None,
        allow_partial: bool = False,
    ) -> list[QueryResult]:
        index = self.engine.index
        if k > index.n:
            raise ConfigurationError(f"k ({k}) must not exceed the index size ({index.n})")
        with stage_timer(trace, "linear"):
            block = pairwise_distances(queries, index.points, index.family.metric)
        with stage_timer(trace, "merge"):
            return exact_topk_results(
                np.arange(index.n, dtype=np.int64), [block], k, index.n
            )

    def insert(self, new_points: np.ndarray) -> tuple[np.ndarray, set[int]]:
        ids = self.engine.insert(new_points)
        return ids, ({0} if ids.size else set())

    @property
    def recalibrations(self) -> int:
        return int(self.engine.recalibrations)

    def close(self) -> None:
        pass


class _ShardedBackend:
    """Adapter presenting a K-shard engine as a backend.

    Works for both partitioned engines — the thread fan-out
    (:class:`ShardedHybridIndex`) and the process pool
    (:class:`~repro.service.workers.WorkerPool`) — because they share
    one query/insert surface.
    """

    def __init__(self, sharded: Any) -> None:
        self.engine = sharded
        self.kind = getattr(sharded, "kind", "sharded")

    @property
    def num_partitions(self) -> int:
        return self.engine.num_shards

    @property
    def n(self) -> int:
        return self.engine.n

    @property
    def dim(self) -> int:
        return self.engine.dim

    def resolve_radius(self, radius: float | None) -> float:
        return self.engine._resolve_radius(radius)

    def query_batch(
        self,
        queries: np.ndarray,
        radius: float,
        trace: StageTrace | None = None,
        allow_partial: bool = False,
        adaptive: AdaptivePolicy | None = None,
    ) -> list[QueryResult]:
        return self.engine.query_batch(
            queries, radius, trace=trace, allow_partial=allow_partial,
            adaptive=adaptive,
        )

    def shard_query_batch(
        self,
        shard: int,
        queries: np.ndarray,
        radius: float,
        adaptive: AdaptivePolicy | None = None,
    ) -> list[QueryResult]:
        return self.engine.shard_query_batch(shard, queries, radius, adaptive=adaptive)

    def merge(self, parts: list[QueryResult], radius: float) -> QueryResult:
        return self.engine.merge_radius(parts, radius)

    def map_shards(
        self, work: Callable[[int], list[QueryResult]]
    ) -> list[list[QueryResult]]:
        return self.engine.map_shards(work)

    def topk_batch(
        self,
        queries: np.ndarray,
        k: int,
        trace: StageTrace | None = None,
        allow_partial: bool = False,
    ) -> list[QueryResult]:
        return self.engine.query_topk_batch(
            queries, k, trace=trace, allow_partial=allow_partial
        )

    def insert(self, new_points: np.ndarray) -> tuple[np.ndarray, set[int]]:
        affected = set(int(s) for s in self.engine.peek_assignment(new_points.shape[0]))
        ids = self.engine.insert(new_points)
        return ids, (affected if ids.size else set())

    @property
    def recalibrations(self) -> int:
        # Worker pools recalibrate inside the worker processes; the
        # parent-side engine then has no counter of its own.
        return int(getattr(self.engine, "recalibrations", 0))

    def close(self) -> None:
        self.engine.close()


def _resolve_estimator(spec: IndexSpec) -> Any:
    """Spec estimator name -> searcher argument.

    The *built-in* HLL estimator maps to ``None`` so the searcher keeps
    the vectorised batch sketch merge (the paper's path, bit-identical
    and fastest); any other registration — including a user-replaced
    ``"hll"`` — is honoured as the callable the registry resolves.
    """
    from repro.sketches.registry import _hll_estimate

    estimator = get_estimator(spec.estimator)
    if estimator is _hll_estimate:
        return None
    return estimator


def _resolve_cost_model(spec: IndexSpec, points: np.ndarray) -> CostModel:
    if spec.cost_ratio is not None:
        return CostModel.from_ratio(spec.cost_ratio)
    return calibrate_cost_model(points, get_metric(spec.metric), seed=spec.seed).model


def _resolve_family_and_k(spec: IndexSpec, dim: int, seed: Any = None) -> tuple[Any, int]:
    """Resolve (family, k) for one index build.

    The default spec reproduces :func:`~repro.core.presets.paper_parameters`
    exactly (identical hash draws for a given seed); any override —
    named family, explicit ``k``, bucket width, extra factory kwargs —
    switches to direct registry-driven construction.  ``seed`` is the
    randomness for *this* index's family draw — the spec's own seed for
    a single index, a spawned per-shard stream for sharded builds.
    """
    customised = (
        spec.hash_family is not None
        or spec.k is not None
        or spec.bucket_width is not None
        or spec.family_params
    )
    if not customised:
        params = paper_parameters(
            spec.metric,
            dim=dim,
            radius=spec.radius,
            num_tables=spec.num_tables,
            delta=spec.delta,
            seed=seed,
        )
        return params.family, params.k
    kwargs = dict(spec.family_params or {})
    metric_name = get_metric(spec.metric).name
    preset = _PSTABLE_PRESETS.get(metric_name)
    if spec.bucket_width is not None:
        kwargs.setdefault("w", spec.bucket_width)
    elif preset is not None and spec.hash_family is None:
        kwargs.setdefault("w", preset[1] * spec.radius)
    if spec.hash_family is not None:
        family = get_family(spec.hash_family)(dim, seed=seed, **kwargs)
    else:
        family = family_for_metric(spec.metric, dim, seed=seed, **kwargs)
    k = spec.k
    if k is None:
        if preset is not None and spec.hash_family is None:
            k = preset[0]
        else:
            k = concatenation_width(
                spec.num_tables, spec.delta, family.collision_probability(spec.radius)
            )
    return family, k


def _spec_is_shard_customised(spec: IndexSpec) -> bool:
    """Whether a sharded build needs the spec-driven per-shard factory.

    The paper-preset fields route through :class:`HybridLSH` directly
    (identical draws to the legacy constructor); anything beyond them —
    named family, explicit ``k``/width/params, lazy threshold, sketch
    seed — builds each shard through :func:`_build_single_index`.
    """
    return bool(
        spec.k is not None
        or spec.hash_family is not None
        or spec.bucket_width is not None
        or spec.family_params
        or spec.lazy_threshold is not None
        or spec.hll_seed
        or spec.variant != "plain"
    )


def _build_single_index(spec: IndexSpec, points: np.ndarray, seed: Any, freeze: bool) -> Any:
    """Build one (possibly customised) index as the spec describes it.

    ``variant`` selects the index class: ``"plain"`` and
    ``"multiprobe"`` share the family/``k`` resolution above;
    ``"covering"`` derives its ``r + 1`` block tables from the spec
    radius instead of drawing a hash family.  Either layout
    (``freeze=True`` -> the variant's frozen CSR counterpart) answers
    bit-identically to its dict-layout twin.
    """
    if spec.variant == "covering":
        from repro.index.covering import CoveringLSHIndex

        index = CoveringLSHIndex(
            dim=points.shape[1],
            radius=int(spec.radius),
            hll_precision=spec.hll_precision,
            hll_seed=spec.hll_seed,
            lazy_threshold=spec.lazy_threshold,
            seed=seed,
        ).build(points)
    else:
        family, k = _resolve_family_and_k(spec, points.shape[1], seed=seed)
        kwargs = dict(
            k=k,
            num_tables=spec.num_tables,
            hll_precision=spec.hll_precision,
            hll_seed=spec.hll_seed,
            lazy_threshold=spec.lazy_threshold,
        )
        if spec.variant == "multiprobe":
            from repro.index.multiprobe_index import MultiProbeLSHIndex

            index = MultiProbeLSHIndex(
                family, num_probes=spec.num_probes, **kwargs
            ).build(points)
        else:
            index = LSHIndex(family, **kwargs).build(points)
    if freeze:
        index = index.freeze()
    return index


def _custom_shard_factory(
    spec: IndexSpec, cost_model: CostModel, estimator: Any
) -> Callable[[np.ndarray, Any], HybridLSH]:
    """``factory(shard_points, rng) -> HybridLSH`` for customised shards.

    Mirrors the single-index build path per shard, with the shard's
    spawned randomness driving the family draw; freezing (when the spec
    asks for it) stays in :class:`ShardedHybridIndex`'s build step.
    """

    def factory(shard_points: np.ndarray, rng: Any) -> HybridLSH:
        index = _build_single_index(spec, shard_points, seed=rng, freeze=False)
        return HybridLSH.from_index(
            index, spec.radius, cost_model, delta=spec.delta, estimator=estimator
        )

    return factory


class Index:
    """Spec-driven facade over the whole serving stack.

    Build one from data and an :class:`~repro.api.spec.IndexSpec`, ask
    it anything via :class:`~repro.api.spec.QuerySpec`, persist it with
    :meth:`save` / :meth:`open`:

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import Index, IndexSpec, QuerySpec
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(600, 12))
    >>> index = Index.build(points, IndexSpec(
    ...     metric="l2", radius=1.0, num_tables=6, num_shards=2, seed=1))
    >>> int(index.query(QuerySpec(points[17])).ids[0])
    17
    >>> index.query(QuerySpec(points[17], k=3)).ids.shape
    (3,)
    """

    def __init__(
        self,
        backend: Any,
        spec: IndexSpec | None = None,
        cache: QueryResultCache | None = None,
    ) -> None:
        self._backend = backend
        self.spec = spec
        self.cache = cache
        self.stats = ServiceStats(pool_workers=_fanout_width_of(backend))
        self._tracing = False
        # Lazily measured distance profile for radius-from-k estimation
        # (None when the backend has no in-process points to sample).
        self._profile: DistanceProfile | None = None
        self._profile_ready = False
        # Pool-lifetime counter values captured at the last reset_stats,
        # so snapshots after a reset report deltas, not lifetime totals.
        self._transport_baseline: dict[str, Any] | None = None
        self._recalibration_baseline = 0
        _register_gauge_hooks(self.stats, backend)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        points: np.ndarray,
        spec: IndexSpec,
        num_workers: int | None = None,
        fault_policy: FaultTolerancePolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> Index:
        """Build an index over ``points`` as described by ``spec``.

        ``execution="processes"`` builds the sharded frozen index, saves
        it to a transient artifact, and serves it through a
        :class:`~repro.service.workers.WorkerPool` of ``num_workers``
        processes (default ``min(num_shards, cpu count)``); the artifact
        is removed when the returned index is closed.  ``fault_policy``
        tunes that pool's deadlines / retries / circuit breakers, and
        ``fault_plan`` installs a deterministic chaos schedule
        (:mod:`repro.faults`) — both are process-pool-only knobs.
        """
        if not isinstance(spec, IndexSpec):
            spec = IndexSpec.from_dict(spec)
        if spec.execution != "processes":
            # Mirror Index.open: dropping the arguments silently would
            # let the caller believe they configured a process pool.
            if num_workers is not None:
                raise ConfigurationError(
                    'num_workers applies to execution="processes" specs only; '
                    f"this spec has execution={spec.execution!r}"
                )
            if fault_policy is not None or fault_plan is not None:
                raise ConfigurationError(
                    'fault_policy/fault_plan apply to execution="processes" '
                    f"specs only; this spec has execution={spec.execution!r}"
                )
        points = check_matrix(points, name="points")
        cost_model = _resolve_cost_model(spec, points)
        estimator = _resolve_estimator(spec)
        backend: _ShardedBackend | _SingleBackend
        if spec.num_shards > 1:
            factory = (
                _custom_shard_factory(spec, cost_model, estimator)
                if _spec_is_shard_customised(spec)
                else None
            )
            sharded = ShardedHybridIndex(
                points,
                metric=spec.metric,
                radius=spec.radius,
                num_shards=spec.num_shards,
                num_tables=spec.num_tables,
                delta=spec.delta,
                hll_precision=spec.hll_precision,
                cost_model=cost_model,
                seed=spec.seed,
                estimator=estimator,
                dedup=spec.dedup,
                layout=spec.layout,
                index_factory=factory,
            )
            backend = _ShardedBackend(sharded)
        else:
            index = _build_single_index(
                spec, points, seed=spec.seed, freeze=spec.layout == "frozen"
            )
            searcher = HybridSearcher(index, cost_model, estimator=estimator)
            backend = _SingleBackend(
                BatchQueryEngine(searcher, radius=spec.radius, dedup=spec.dedup)
            )
        built = cls(backend, spec=spec, cache=_cache_from_spec(spec))
        if spec.execution == "processes":
            return _as_process_pool(
                built,
                num_workers=num_workers,
                fault_policy=fault_policy,
                fault_plan=fault_plan,
            )
        return built

    @classmethod
    def from_engine(
        cls,
        engine: Any,
        cache: QueryResultCache | None = None,
        spec: IndexSpec | None = None,
    ) -> Index:
        """Wrap an already-built engine in the facade.

        Accepts a :class:`~repro.service.batch.BatchQueryEngine`, a
        :class:`~repro.service.sharded.ShardedHybridIndex`, a
        :class:`~repro.core.hybrid.HybridLSH`, or a bare
        :class:`~repro.core.hybrid.HybridSearcher` — this is the
        rebase hook for the legacy front doors.
        """
        from repro.service.workers import WorkerPool

        backend: _ShardedBackend | _SingleBackend
        if isinstance(engine, ShardedHybridIndex | WorkerPool):
            backend = _ShardedBackend(engine)
        elif isinstance(engine, BatchQueryEngine):
            backend = _SingleBackend(engine)
        elif isinstance(engine, HybridLSH):
            backend = _SingleBackend(
                BatchQueryEngine(engine.searcher, radius=engine.radius)
            )
        elif isinstance(engine, HybridSearcher):
            backend = _SingleBackend(BatchQueryEngine(engine))
        else:
            raise ConfigurationError(
                f"cannot wrap {type(engine).__name__} as an Index backend"
            )
        return cls(backend, spec=spec, cache=cache)

    @classmethod
    def open(
        cls,
        path: str,
        num_workers: int | None = None,
        fault_policy: FaultTolerancePolicy | None = None,
        fault_plan: FaultPlan | None = None,
        endpoints: list | None = None,
    ) -> Index:
        """Reopen an index saved by :meth:`save` (bit-identical answers).

        A spec with ``execution="processes"`` comes back behind a
        :class:`~repro.service.workers.WorkerPool` whose workers mmap
        the saved shards — no rebuild, no rehash; ``num_workers``
        overrides the pool width (default ``min(num_shards, cpus)``),
        ``fault_policy`` tunes the pool's deadlines / retries /
        breakers, ``fault_plan`` installs a deterministic chaos
        schedule.  ``endpoints`` connects the pool to standalone shard
        servers (``repro.cli shard-serve``) instead of spawning
        processes — one ``"host:port,host:port"`` replica group per
        worker slot.  A torn or truncated artifact raises
        :class:`~repro.exceptions.CorruptArtifactError`.
        """
        from repro.api.persist import open_index

        return open_index(
            path,
            num_workers=num_workers,
            fault_policy=fault_policy,
            fault_plan=fault_plan,
            endpoints=endpoints,
        )

    def save(self, path: str) -> None:
        """Persist the full index state (spec, shards, id maps, cost model)."""
        from repro.api.persist import save_index

        save_index(self, path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Any:
        """The underlying engine (batched single index or sharded fan-out)."""
        return self._backend.engine

    @property
    def num_shards(self) -> int:
        """Number of data partitions (1 for a single index)."""
        return self._backend.num_partitions

    @property
    def n(self) -> int:
        """Number of served points."""
        return self._backend.n

    @property
    def dim(self) -> int:
        """Expected query dimensionality."""
        return self._backend.dim

    @property
    def cost_model(self) -> CostModel:
        """The cost model driving the per-query dispatch."""
        engine = self._backend.engine
        searcher = getattr(engine, "searcher", None)
        if searcher is not None:
            return searcher.cost_model
        return engine.cost_model  # sharded fan-out / worker pool

    @property
    def execution(self) -> str:
        """How shard work fans out: ``"threads"`` or ``"processes"``."""
        return "processes" if self._backend.kind == "processes" else "threads"

    def reset_stats(self) -> None:
        """Zero the counters (cache contents are kept).

        Pool-lifetime counters owned by a process-pool backend — pipe
        bytes, respawns, the failure counters — cannot be zeroed in
        place (the pool keeps accumulating), so their current values are
        captured as a baseline that :meth:`stats_snapshot` subtracts;
        worker-local stats are reset in the workers themselves via the
        pool's ``reset`` op.  A snapshot right after a reset therefore
        reads all-zero everywhere, including ``workers.*``.
        """
        pool = self._backend.engine if self._backend.kind == "processes" else None
        if pool is not None:
            if hasattr(pool, "reset_worker_stats"):
                pool.reset_worker_stats()
            failure = pool.failure_counters()
            self._transport_baseline = {
                "bytes_shipped": int(pool.bytes_shipped),
                "worker_respawns": int(pool.respawns),
                "worker_timeouts": int(failure["worker_timeouts"]),
                "worker_retries": int(failure["worker_retries"]),
                "breaker_opens": int(failure["breaker_opens"]),
                "replica_failovers": int(failure.get("replica_failovers", 0)),
                "respawns_by_cause": dict(failure["respawns_by_cause"]),
            }
        self._recalibration_baseline = self._backend_recalibrations()
        self.stats.reset()

    def enable_tracing(self, enabled: bool = True) -> None:
        """Toggle per-service stage tracing for every subsequent query.

        Traced queries attribute wall time to the named pipeline stages
        (accumulated in ``stats.stage_seconds``); answers are
        bit-identical to untraced ones.  Per-call tracing — passing a
        :class:`~repro.observability.StageTrace` straight to the
        internal batch paths — works regardless of this switch.
        """
        self._tracing = bool(enabled)

    @property
    def tracing_enabled(self) -> bool:
        """Whether per-service stage tracing is on."""
        return self._tracing

    def stats_snapshot(self) -> dict[str, object]:
        """Enriched stats document: facade counters + live worker stats.

        For a process-pool backend, each worker's own ``ServiceStats``
        (latency histogram, bytes shipped over its pipe, its gauges) is
        fetched via the pool's ``stats`` op and merged — exactly — into
        a ``workers`` sub-document alongside the per-worker breakdown.
        """
        pool = self._backend.engine if self._backend.kind == "processes" else None
        if pool is not None:
            # Pipes, respawns and the failure counters are parent-side
            # pool-lifetime counters; sync them into the facade stats at
            # snapshot time, net of the last reset_stats baseline.
            failure = pool.failure_counters()
            base = self._transport_baseline or {}
            base_causes = base.get("respawns_by_cause") or {}
            causes = {
                str(cause): max(0, int(n) - int(base_causes.get(cause, 0)))
                for cause, n in failure["respawns_by_cause"].items()
            }
            self.stats.set_transport(
                max(0, int(pool.bytes_shipped) - int(base.get("bytes_shipped", 0))),
                max(0, int(pool.respawns) - int(base.get("worker_respawns", 0))),
                worker_timeouts=max(
                    0,
                    int(failure["worker_timeouts"])
                    - int(base.get("worker_timeouts", 0)),
                ),
                worker_retries=max(
                    0,
                    int(failure["worker_retries"])
                    - int(base.get("worker_retries", 0)),
                ),
                breaker_opens=max(
                    0,
                    int(failure["breaker_opens"]) - int(base.get("breaker_opens", 0)),
                ),
                replica_failovers=max(
                    0,
                    int(failure.get("replica_failovers", 0))
                    - int(base.get("replica_failovers", 0)),
                ),
                respawns_by_cause={k: v for k, v in causes.items() if v},
            )
        self.stats.set_recalibrations(
            max(0, self._backend_recalibrations() - self._recalibration_baseline)
        )
        doc = self.stats.as_dict()
        if pool is not None and hasattr(pool, "worker_stats"):
            per_worker = pool.worker_stats()
            aggregate = ServiceStats()
            for worker_doc in per_worker:
                aggregate.merge(ServiceStats.from_dict(worker_doc))
            workers_doc = aggregate.as_dict()
            workers_doc.pop("pool_workers", None)
            doc["workers"] = {
                "aggregate": workers_doc,
                "per_worker": per_worker,
            }
        return doc

    def close(self) -> None:
        """Release backend resources (sharded thread pool); idempotent."""
        self._backend.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self, request: QuerySpec | np.ndarray, radius: float | None = None
    ) -> QueryOutcome | BatchOutcome:
        """Answer one :class:`~repro.api.spec.QuerySpec` (or raw vector/matrix).

        Radius requests return points within the radius; ``k`` requests
        return the exact k nearest neighbors.  A single-vector request
        returns one :class:`~repro.api.outcome.QueryOutcome`, a matrix a
        :class:`~repro.api.outcome.BatchOutcome` (answered through the
        batched engine) — the typed envelope on every execution path,
        with payload arrays bit-identical to the legacy shapes.

        The request's ``adaptive`` / ``target_candidates`` /
        ``quality_floor`` fields override the index's
        :class:`~repro.core.adaptive.AdaptivePolicy` for this request
        only.
        """
        if not isinstance(request, QuerySpec):
            request = QuerySpec(request, radius=radius)
        elif radius is not None:
            raise ConfigurationError(
                "pass the radius inside the QuerySpec, not alongside it"
            )
        policy = self._policy_for(request)
        if request.k is not None:  # mode == "topk"
            results = self._topk_batch(
                request.queries,
                request.k,
                allow_partial=request.allow_partial,
                policy=policy,
            )
        else:
            results = self._radius_batch(
                request.queries,
                request.radius,
                allow_partial=request.allow_partial,
                policy=policy,
            )
        outcomes = tuple(QueryOutcome.from_result(r) for r in results)
        return outcomes[0] if request.single else BatchOutcome(outcomes)

    def query_batch(
        self,
        queries: np.ndarray,
        radius: float | None = None,
        allow_partial: bool = False,
    ) -> list[QueryResult]:
        """Answer a ``(q, d)`` radius-query matrix (one result per row).

        This is the legacy ``list[QueryResult]`` shape — deprecated in
        favour of ``query(QuerySpec(queries))`` returning a
        :class:`~repro.api.outcome.BatchOutcome` — and warns once per
        process; answers are unchanged.  ``allow_partial=True`` lets a
        process-pool backend answer from the reachable shards when a
        worker is unrecoverable, tagging results ``degraded=True``;
        elsewhere it is a no-op.
        """
        warn_legacy_shape("Index.query_batch()", "Index.query(QuerySpec(queries))")
        return self._radius_batch(
            np.asarray(queries),
            radius,
            allow_partial=allow_partial,
            policy=self._policy_for(None),
        )

    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Insert points; only the receiving shards' cache entries drop.

        Cache keys are tagged with the shard whose partial answer they
        hold, so entries for untouched shards stay hot across inserts —
        the per-shard refinement of the old clear-everything behavior.
        """
        new_points = check_matrix(new_points, dim=self.dim, name="new_points")
        ids, affected_shards = self._backend.insert(new_points)
        if self.cache is not None and ids.size:
            for shard in affected_shards:
                self.cache.invalidate_shard(shard)
        return ids

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _policy_for(self, request: QuerySpec | None) -> AdaptivePolicy | None:
        """The adaptive policy one request executes under (None = fixed).

        The index policy (``spec.adaptive``) is the base; the request's
        ``adaptive`` / ``target_candidates`` / ``quality_floor`` fields
        override it.  A request can opt *in* on an index with no policy
        (the base is then a disabled default policy) and opt *out* of an
        index-wide policy with ``adaptive=False``.
        """
        base = self.spec.adaptive if self.spec is not None else None
        if request is None:
            return base if base is not None and base.enabled else None
        if base is None:
            if (
                request.adaptive is None
                and request.target_candidates is None
                and request.quality_floor is None
            ):
                return None
            base = AdaptivePolicy(enabled=request.adaptive is True)
        policy = base.resolve(
            request.adaptive, request.target_candidates, request.quality_floor
        )
        return policy if policy.enabled else None

    def _backend_recalibrations(self) -> int:
        """Live recalibration total summed over the backend's engines."""
        return int(getattr(self._backend, "recalibrations", 0))

    def _profile_points(self) -> np.ndarray | None:
        """A point sample reachable in-process (None for worker pools)."""
        engine = self._backend.engine
        index = getattr(engine, "index", None)
        if index is not None:  # BatchQueryEngine
            return cast("np.ndarray", index.points)
        shards = getattr(engine, "shards", None)
        if shards:  # ShardedHybridIndex: round-robin partition, so any
            # one shard is an unbiased sample of the dataset.
            return cast("np.ndarray", shards[0].index.points)
        return None

    def _distance_profile(self) -> DistanceProfile | None:
        """Lazily measured distance profile for radius-from-k estimation.

        Measured once, on first adaptive top-k use, from in-process
        points with the spec's seed (deterministic); ``None`` when the
        backend ships its points to worker processes — those requests
        keep the exact top-k path.
        """
        if self._profile_ready:
            return self._profile
        spec = self.spec
        points = self._profile_points() if spec is not None else None
        if points is not None and points.shape[0] > 0:
            assert spec is not None
            self._profile = measure_distance_profile(
                points,
                get_metric(spec.metric),
                seed=0 if spec.seed is None else spec.seed,
            )
        self._profile_ready = True
        return self._profile

    def _topk_batch(
        self,
        queries: np.ndarray,
        k: int,
        allow_partial: bool = False,
        policy: AdaptivePolicy | None = None,
    ) -> list[QueryResult]:
        started = time.perf_counter()
        trace = StageTrace() if self._tracing else None
        queries = check_matrix(queries, dim=self.dim, name="queries")
        k = check_positive_int(k, "k")
        results: list[QueryResult] | None = None
        if policy is not None and policy.enabled:
            results = self._topk_adaptive(queries, k, policy, allow_partial, trace)
        if results is None:
            results = self._backend.topk_batch(
                queries, k, trace=trace, allow_partial=allow_partial
            )
        self._account(results, queries.shape[0], started, trace)
        return results

    def _topk_adaptive(
        self,
        queries: np.ndarray,
        k: int,
        policy: AdaptivePolicy,
        allow_partial: bool,
        trace: StageTrace | None,
    ) -> list[QueryResult] | None:
        """Top-k through radius-from-k estimation (None = no profile).

        Estimates the radius whose ball should hold ``k_safety * k``
        points from the calibration distance profile, answers a radius
        batch, and *certifies* a row as a top-k answer when it returned
        at least ``k`` hits and either is exact by construction (linear
        scan rows) or carries the paper's ``1 - delta`` recall guarantee
        at a radius the index is tuned for and the policy's
        ``quality_floor`` accepts it.  Uncertified rows escalate the
        radius ``max_escalations`` times, then fall back to the exact
        top-k path.  With the default ``quality_floor=1.0`` only exact
        rows certify, so answers are bit-identical to the exact
        reference.
        """
        profile = self._distance_profile()
        if profile is None:
            return None
        n = self.n
        if k > n:
            raise ConfigurationError(
                f"k ({k}) must not exceed the index size ({n})"
            )
        spec = self.spec
        delta = spec.delta if spec is not None else 0.1
        tuned_radius = spec.radius if spec is not None else None
        certify_lsh = policy.quality_floor <= 1.0 - delta
        adaptive = policy if policy.bounds_probes or policy.recalibrate else None
        num_queries = queries.shape[0]
        self.stats.record_adaptive(radius_estimates=num_queries)
        radius = profile.radius_for_k(k, n, safety=policy.k_safety)
        final: list[QueryResult | None] = [None] * num_queries
        pending = list(range(num_queries))
        for _ in range(policy.max_escalations + 1):
            if not pending:
                break
            rows = self._backend.query_batch(
                queries[pending], float(radius), trace=trace, adaptive=adaptive
            )
            still: list[int] = []
            for pos, row in zip(pending, rows):
                certified = (
                    row.output_size >= k
                    and not row.degraded
                    and (
                        row.stats.exact
                        or (
                            certify_lsh
                            and tuned_radius is not None
                            and radius <= tuned_radius
                        )
                    )
                )
                if certified:
                    final[pos] = _topk_from_radius(row, k)
                else:
                    still.append(pos)
            pending = still
            radius *= policy.radius_growth
        if pending:
            fallback = self._backend.topk_batch(
                queries[pending], k, trace=trace, allow_partial=allow_partial
            )
            for pos, row in zip(pending, fallback):
                final[pos] = row
        return cast("list[QueryResult]", final)

    def _radius_batch(
        self,
        queries: np.ndarray,
        radius: float | None,
        allow_partial: bool = False,
        policy: AdaptivePolicy | None = None,
    ) -> list[QueryResult]:
        started = time.perf_counter()
        trace = StageTrace() if self._tracing else None
        queries = check_matrix(queries, dim=self.dim, name="queries")
        radius = self._backend.resolve_radius(radius)
        adaptive = policy if policy is not None and policy.enabled else None
        bypass_cache = allow_partial or (
            adaptive is not None and (adaptive.bounds_probes or adaptive.recalibrate)
        )
        if self.cache is None or bypass_cache:
            # allow_partial bypasses the cache even when one is
            # configured: a degraded partial answer must never be stored
            # (it would poison later full-fidelity reads) and per-shard
            # cache assembly cannot express missing shards.  A policy
            # that trims probes (or mutates the cost model) bypasses it
            # too — trimmed partials must never serve fixed-budget
            # reads, and vice versa.
            results = self._backend.query_batch(
                queries,
                radius,
                trace=trace,
                allow_partial=allow_partial,
                adaptive=adaptive,
            )
        else:
            # The cache path fans out per shard through map_shards; its
            # engine work is accounted in the batch latency but not
            # attributed to stages (the trace stays empty here).
            results = self._radius_batch_cached(queries, radius)
        if adaptive is not None and adaptive.bounds_probes:
            self.stats.record_adaptive(probe_queries=len(results))
        self._account(results, queries.shape[0], started, trace)
        return results

    def _radius_batch_cached(
        self, queries: np.ndarray, radius: float
    ) -> list[QueryResult]:
        """Cache-fronted batch: per-shard partials under shard-tagged keys.

        A query's answer is the merge of ``K`` shard partials; each
        partial is cached under its own shard tag, so a query after an
        insert recomputes only the shards the insert touched.  In-batch
        duplicates of a missing query are answered once and shared
        (popular-item storms), exactly like the legacy service.
        """
        cache = self.cache
        assert cache is not None  # only called on the cache-enabled path
        num_shards = self._backend.num_partitions
        num_queries = queries.shape[0]
        results: list[QueryResult | None] = [None] * num_queries
        base_keys = [cache.make_key(q, radius) for q in queries]
        miss_rep: dict[bytes, int] = {}
        duplicates: list[tuple[int, int]] = []
        parts_by_row: dict[int, list[QueryResult | None]] = {}
        shard_miss_rows: list[list[int]] = [[] for _ in range(num_shards)]
        hits = 0
        for i, base in enumerate(base_keys):
            if base in miss_rep:
                # A batch-mate already carries this missing key: answer
                # it once and share the result, without touching the
                # store's hit/miss counters.
                duplicates.append((i, miss_rep[base]))
                continue
            parts = [
                cache.get(base if s == 0 else cache.retag_key(base, s))
                for s in range(num_shards)
            ]
            missing = [s for s, part in enumerate(parts) if part is None]
            if not missing:
                results[i] = self._backend.merge(parts, radius)
                hits += 1
            else:
                miss_rep[base] = i
                parts_by_row[i] = parts
                for s in missing:
                    shard_miss_rows[s].append(i)

        if parts_by_row:

            def work(shard: int) -> list[QueryResult]:
                rows = shard_miss_rows[shard]
                if not rows:
                    return []
                return self._backend.shard_query_batch(shard, queries[rows], radius)

            fresh = self._backend.map_shards(work)
            for s in range(num_shards):
                for row, part in zip(shard_miss_rows[s], fresh[s]):
                    parts_by_row[row][s] = part
                    key = base_keys[row] if s == 0 else cache.retag_key(base_keys[row], s)
                    cache.put(key, part)
            for row, parts in parts_by_row.items():
                results[row] = self._backend.merge(parts, radius)
        for i, rep in duplicates:
            results[i] = results[rep]

        self.stats.record_cache(
            hits=hits, misses=len(parts_by_row), deduplicated=len(duplicates)
        )
        # Every row was filled above (hit, fresh merge, or duplicate share).
        return cast("list[QueryResult]", results)

    def _account(
        self,
        results: list[QueryResult],
        count: int,
        started: float,
        trace: StageTrace | None = None,
    ) -> None:
        strategies: dict[str, int] = {}
        degraded = 0
        for result in results:
            name = result.stats.strategy.value
            strategies[name] = strategies.get(name, 0) + 1
            if result.degraded:
                degraded += 1
        self.stats.record_batch(
            count, time.perf_counter() - started, strategies=strategies, trace=trace
        )
        if degraded:
            self.stats.record_degraded(degraded)

    def __repr__(self) -> str:
        cache = "off" if self.cache is None else f"{len(self.cache)}/{self.cache.maxsize}"
        spec = "legacy-wrapped" if self.spec is None else self.spec.metric
        return (
            f"Index(n={self.n}, dim={self.dim}, shards={self.num_shards}, "
            f"spec={spec}, cache={cache})"
        )


def _topk_from_radius(row: QueryResult, k: int) -> QueryResult:
    """Select the k nearest from one certified radius answer.

    Uses the same ``(distance, id)`` lexsort tie-breaking as
    :func:`~repro.core.linear_scan.exact_topk_results` and reports the
    k-th distance as the result radius (the top-k convention), so a
    certified exact row is bit-identical to the exact reference.  The
    row's decision stats ride along unchanged — they describe the work
    that actually ran.
    """
    order = np.lexsort((row.ids, row.distances))[:k]
    ids = row.ids[order]
    distances = row.distances[order]
    return QueryResult(
        ids=ids,
        distances=distances,
        radius=float(distances[-1]),
        stats=row.stats,
        degraded=row.degraded,
        missing_shards=row.missing_shards,
    )


def _cache_from_spec(spec: IndexSpec) -> QueryResultCache | None:
    if spec.cache_size <= 0:
        return None
    return QueryResultCache(maxsize=spec.cache_size, quantum=spec.cache_quantum)


def _frozen_indexes_of(backend: Any) -> list[Any]:
    """Frozen indexes reachable in-process from ``backend`` (may be [])."""
    engine = getattr(backend, "engine", None)
    if engine is None:
        return []
    if isinstance(engine, BatchQueryEngine):
        candidates = [engine.index]
    else:
        candidates = [eng.index for eng in getattr(engine, "_engines", [])]
    # Duck-typed so both FrozenLSHIndex and the frozen covering layout
    # qualify; a worker pool has no in-process indexes (its workers ship
    # these gauges back through the ``stats`` op instead).
    return [ix for ix in candidates if hasattr(ix, "overflow_count") and hasattr(ix, "refreeze_count")]


def _register_gauge_hooks(stats: ServiceStats, backend: Any) -> None:
    """Wire live backend gauges into the stats object.

    Frozen layouts expose their overflow side-table size and background
    re-freeze counters; hooks read the *current* values at snapshot
    time, so the gauges track inserts and re-freezes without the stats
    layer polling anything.
    """
    engine = getattr(backend, "engine", None)
    if hasattr(engine, "open_breaker_count"):
        counter = engine.open_breaker_count
        stats.gauge_hooks["breaker_open_workers"] = lambda: float(counter())
    indexes = _frozen_indexes_of(backend)
    if not indexes:
        return
    stats.gauge_hooks["overflow_points"] = lambda: float(
        sum(ix.overflow_count for ix in indexes)
    )
    stats.gauge_hooks["refreeze_generations"] = lambda: float(
        sum(ix.refreeze_count for ix in indexes)
    )
    stats.gauge_hooks["refreeze_seconds_total"] = lambda: float(
        sum(ix.refreeze_seconds_total for ix in indexes)
    )
    stats.gauge_hooks["last_refreeze_seconds"] = lambda: float(
        max((ix.last_refreeze_seconds for ix in indexes), default=0.0)
    )


def _fanout_width_of(backend: Any) -> int:
    """The chosen shard fan-out width (0 for an unpartitioned engine)."""
    engine = getattr(backend, "engine", None)
    width = getattr(engine, "num_workers", None)  # process pool
    if width is None:
        width = getattr(engine, "max_workers", None)  # thread fan-out
    return int(width) if width else 0


def _as_process_pool(
    index: Index,
    num_workers: int | None = None,
    fault_policy: FaultTolerancePolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> Index:
    """Re-serve a freshly built sharded frozen index through a WorkerPool.

    Saves the index to a transient artifact (the workers' mmap source),
    releases the thread-backed engine, and opens the pool over it; the
    artifact is deleted when the returned index is closed.
    """
    import tempfile

    from repro.api.persist import save_index
    from repro.service.workers import WorkerPool

    path = tempfile.mkdtemp(prefix="repro-worker-pool-")
    try:
        save_index(index, path)
    except BaseException:
        import shutil

        shutil.rmtree(path, ignore_errors=True)
        raise
    finally:
        index.close()
    assert index.spec is not None  # build() always attaches the spec
    pool = WorkerPool(
        path,
        num_workers=num_workers,
        owns_path=True,
        policy=fault_policy,
        fault_plan=fault_plan,
        replicas=index.spec.replicas,
    )
    return Index(
        _ShardedBackend(pool), spec=index.spec, cache=_cache_from_spec(index.spec)
    )
