"""The typed result envelope returned by :meth:`repro.api.Index.query`.

Every execution path — single index, batched, sharded threads, worker
processes, TCP shard servers — used to answer with the engine-level
:class:`~repro.core.results.QueryResult` (or a plain ``list`` of them).
That shape leaks engine internals (``stats.strategy`` is an enum, the
adaptive diagnostics hide inside ``stats``) and gives batch callers an
anonymous list with no place for batch-level metadata.

:class:`QueryOutcome` is the typed envelope: the payload arrays plus the
first-class serving facts callers actually branch on — which strategy
answered, how many probe rings were examined, how many candidates were
distance-checked, whether the answer is exact / degraded — with the full
engine diagnostics still attached as ``stats``.  :class:`BatchOutcome`
wraps a batch as an immutable :class:`~collections.abc.Sequence` so the
idiomatic consumptions (``len``, indexing, iteration, ``zip``) all keep
working.

The payload is **bit-identical** to the legacy shapes: ``ids`` and
``distances`` are the very arrays the engine produced, never copied or
re-ordered.  The legacy shapes remain constructible through
:meth:`QueryOutcome.to_result` / :meth:`BatchOutcome.to_results`, which
warn once per process (:mod:`repro.api.deprecations`) and then behave
exactly as before.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import overload

import numpy as np
import numpy.typing as npt

from repro.api.deprecations import warn_legacy_shape
from repro.core.results import QueryResult, QueryStats
from repro.observability import StageTrace

__all__ = ["BatchOutcome", "QueryOutcome"]


@dataclass(frozen=True)
class QueryOutcome:
    """One query's answer plus the serving facts that produced it.

    Attributes
    ----------
    ids:
        Global point ids of the reported neighbors (the engine's own
        array, bit-identical to the legacy result).
    distances:
        Distances aligned with ``ids``.
    radius:
        The radius answered (for top-k outcomes: the k-th distance, the
        legacy top-k convention).
    strategy:
        Which strategy produced the answer (``"lsh"`` / ``"linear"`` /
        ``"hybrid"``), as a plain string.
    probes_used:
        Probe rings examined per table beyond the home bucket; under an
        adaptive probe budget this is the per-query stopping ring.
        ``-1`` when the path does not track probing.
    candidates_examined:
        Distinct candidates whose exact distance was computed (the full
        index size for a linear scan); ``-1`` when unknown.
    estimated_candidates:
        The merged-HLL ``candSize`` estimate the dispatch decision (and
        any adaptive probe budget) keyed on; ``nan`` when not computed.
    exact:
        True when the answer is exact by construction (linear scan,
        exact top-k selection, or a certified adaptive top-k answer).
    degraded:
        True when one or more shards were unavailable and the caller
        opted into partial results.
    missing_shards:
        The shard ids absent from a degraded answer.
    stats:
        The full engine-level decision diagnostics (cost-model inputs,
        collision counts) for consumers that need them.
    trace:
        Optional per-stage timing of the call that produced this
        outcome (only attached when tracing was requested).
    """

    ids: npt.NDArray[np.int64]
    distances: npt.NDArray[np.float64]
    radius: float
    strategy: str
    probes_used: int = -1
    candidates_examined: int = -1
    estimated_candidates: float = float("nan")
    exact: bool = False
    degraded: bool = False
    missing_shards: tuple[int, ...] = ()
    stats: QueryStats = field(default_factory=QueryStats)
    trace: StageTrace | None = None

    @classmethod
    def from_result(
        cls, result: QueryResult, trace: StageTrace | None = None
    ) -> QueryOutcome:
        """Wrap one engine-level result (arrays are shared, not copied)."""
        stats = result.stats
        return cls(
            ids=result.ids,
            distances=result.distances,
            radius=float(result.radius),
            strategy=stats.strategy.value,
            probes_used=int(stats.probes_used),
            candidates_examined=int(stats.exact_candidates),
            estimated_candidates=float(stats.estimated_candidates),
            exact=bool(stats.exact),
            degraded=bool(result.degraded),
            missing_shards=tuple(result.missing_shards),
            stats=stats,
            trace=trace,
        )

    @property
    def output_size(self) -> int:
        """Number of reported neighbors."""
        return int(self.ids.shape[0])

    def recall_against(self, true_ids: npt.NDArray[np.int64]) -> float:
        """Fraction of ``true_ids`` present in this outcome.

        An empty ground truth yields recall 1.0 by convention.
        """
        true_ids = np.asarray(true_ids)
        if true_ids.size == 0:
            return 1.0
        return float(np.isin(true_ids, self.ids).mean())

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly envelope document (the stream protocol's v2 body).

        ``ids`` and ``distances`` become plain lists; ``nan`` estimates
        become ``None`` (JSON has no NaN); the engine diagnostics and
        trace are deliberately excluded — they are in-process objects.
        """
        estimated: float | None = self.estimated_candidates
        if estimated != estimated:  # nan
            estimated = None
        return {
            "ids": [int(i) for i in self.ids],
            "distances": [float(d) for d in self.distances],
            "radius": self.radius,
            "strategy": self.strategy,
            "probes_used": self.probes_used,
            "candidates_examined": self.candidates_examined,
            "estimated_candidates": estimated,
            "exact": self.exact,
            "degraded": self.degraded,
            "missing_shards": list(self.missing_shards),
        }

    def to_result(self) -> QueryResult:
        """The legacy :class:`QueryResult` shape (deprecated; warns once).

        The returned object carries the *same* arrays and stats — the
        envelope never copies — so the payload is bit-identical.
        """
        warn_legacy_shape("QueryOutcome.to_result()", "Index.query")
        return QueryResult(
            ids=self.ids,
            distances=self.distances,
            radius=self.radius,
            stats=self.stats,
            degraded=self.degraded,
            missing_shards=self.missing_shards,
        )

    def __repr__(self) -> str:
        return (
            f"QueryOutcome(r={self.radius}, found={self.output_size}, "
            f"strategy={self.strategy}, probes={self.probes_used}, "
            f"exact={self.exact})"
        )


@dataclass(frozen=True)
class BatchOutcome(Sequence[QueryOutcome]):
    """An immutable batch of :class:`QueryOutcome`, one per query row.

    Supports the full read-only sequence protocol (``len``, indexing,
    slicing, iteration, ``in``), so code written against the legacy
    ``list[QueryResult]`` shape keeps working unchanged on the payload
    level.  Batch-level summaries (:attr:`degraded_count`,
    :attr:`strategy_counts`) live here instead of forcing callers to
    re-aggregate.
    """

    outcomes: tuple[QueryOutcome, ...]

    def __len__(self) -> int:
        return len(self.outcomes)

    @overload
    def __getitem__(self, index: int) -> QueryOutcome: ...

    @overload
    def __getitem__(self, index: slice) -> BatchOutcome: ...

    def __getitem__(self, index: int | slice) -> QueryOutcome | BatchOutcome:
        if isinstance(index, slice):
            return BatchOutcome(self.outcomes[index])
        return self.outcomes[index]

    def __iter__(self) -> Iterator[QueryOutcome]:
        return iter(self.outcomes)

    @property
    def degraded_count(self) -> int:
        """How many outcomes in the batch are partial answers."""
        return sum(1 for outcome in self.outcomes if outcome.degraded)

    @property
    def strategy_counts(self) -> dict[str, int]:
        """Outcome count per answering strategy."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.strategy] = counts.get(outcome.strategy, 0) + 1
        return counts

    def to_results(self) -> list[QueryResult]:
        """The legacy ``list[QueryResult]`` shape (deprecated; warns once)."""
        warn_legacy_shape("BatchOutcome.to_results()", "Index.query")
        return [
            QueryResult(
                ids=outcome.ids,
                distances=outcome.distances,
                radius=outcome.radius,
                stats=outcome.stats,
                degraded=outcome.degraded,
                missing_shards=outcome.missing_shards,
            )
            for outcome in self.outcomes
        ]

    def __repr__(self) -> str:
        return f"BatchOutcome(n={len(self.outcomes)})"
