"""Command-line interface: regenerate paper experiments without pytest.

Usage::

    python -m repro.cli table1   [--datasets webspam corel ...] [--n 12000]
    python -m repro.cli figure2  --dataset webspam [--n 12000] [--queries 50]
    python -m repro.cli figure3  [--n 12000]
    python -m repro.cli profile  --dataset corel [--n 5000]

Every command prints the same text tables the benchmark harness emits,
so results can be generated in CI logs or piped to files.
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets import corel_like, covertype_like, mnist_like, webspam_like
from repro.evaluation import (
    figure2_experiment,
    figure3_experiment,
    format_figure2,
    format_figure3,
    format_recall,
    recall_experiment,
    table1_experiment,
)
from repro.evaluation.profile import distance_profile, hardness_profile, suggest_radii
from repro.evaluation.report import format_table, format_table1

_DATASETS = {
    "webspam": webspam_like,
    "covertype": covertype_like,
    "corel": corel_like,
    "mnist": mnist_like,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=12_000, help="dataset size")
    parser.add_argument("--queries", type=int, default=50, help="query-set size")
    parser.add_argument("--tables", type=int, default=50, help="L, number of hash tables")
    parser.add_argument("--seed", type=int, default=0, help="master seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Hybrid LSH (EDBT 2017) experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="Table 1: HLL cost and error")
    p_table1.add_argument(
        "--datasets", nargs="+", choices=sorted(_DATASETS), default=sorted(_DATASETS)
    )
    _add_common(p_table1)

    p_fig2 = sub.add_parser("figure2", help="Figure 2: CPU time vs radius")
    p_fig2.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    p_fig2.add_argument("--repeats", type=int, default=2)
    _add_common(p_fig2)

    p_fig3 = sub.add_parser("figure3", help="Figure 3: output sizes and %LS calls")
    _add_common(p_fig3)

    p_profile = sub.add_parser("profile", help="distance/hardness diagnostics")
    p_profile.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    _add_common(p_profile)

    p_recall = sub.add_parser(
        "recall", help="recall vs radius (the paper's omitted experiment)"
    )
    p_recall.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    _add_common(p_recall)

    return parser


def _cmd_table1(args: argparse.Namespace) -> None:
    rows = []
    for name in args.datasets:
        dataset = _DATASETS[name](n=args.n, seed=args.seed)
        rows.append(
            table1_experiment(
                dataset,
                num_queries=args.queries,
                num_tables=args.tables,
                seed=args.seed,
            )
        )
    print(format_table1(rows))


def _cmd_figure2(args: argparse.Namespace) -> None:
    dataset = _DATASETS[args.dataset](n=args.n, seed=args.seed)
    rows = figure2_experiment(
        dataset,
        num_queries=args.queries,
        repeats=args.repeats,
        num_tables=args.tables,
        seed=args.seed,
    )
    print(format_figure2(rows, title=f"Figure 2: {dataset.name} ({dataset.metric})"))


def _cmd_figure3(args: argparse.Namespace) -> None:
    dataset = webspam_like(n=args.n, seed=args.seed)
    rows = figure3_experiment(
        dataset, num_queries=args.queries, num_tables=args.tables, seed=args.seed
    )
    print(format_figure3(rows, title=f"Figure 3: {dataset.name}"))


def _cmd_profile(args: argparse.Namespace) -> None:
    dataset = _DATASETS[args.dataset](n=args.n, seed=args.seed)
    profile = distance_profile(dataset.points, dataset.metric, seed=args.seed)
    print(f"{dataset.name}: n = {dataset.n}, d = {dataset.dim}, metric = {dataset.metric}")
    print(format_table(
        ["quantile", "distance"],
        [[f"{q:g}", f"{v:.4g}"] for q, v in sorted(profile.quantiles.items())],
    ))
    print(f"suggested sweep: {tuple(round(r, 4) for r in suggest_radii(profile))}")
    print(f"paper sweep    : {dataset.radii}")
    mid_radius = dataset.radii[len(dataset.radii) // 2]
    hardness = hardness_profile(
        dataset.points, dataset.metric, float(mid_radius),
        num_queries=args.queries, seed=args.seed,
    )
    print(
        f"hardness at r = {mid_radius:g}: avg out {hardness.avg_output:.1f}, "
        f"max {hardness.max_output}, min {hardness.min_output}, "
        f"hard fraction {hardness.hard_fraction:.0%}"
    )


def _cmd_recall(args: argparse.Namespace) -> None:
    dataset = _DATASETS[args.dataset](n=args.n, seed=args.seed)
    rows = recall_experiment(
        dataset, num_queries=args.queries, num_tables=args.tables, seed=args.seed
    )
    print(format_recall(rows, title=f"Recall vs radius: {dataset.name}"))


_COMMANDS = {
    "table1": _cmd_table1,
    "figure2": _cmd_figure2,
    "figure3": _cmd_figure3,
    "profile": _cmd_profile,
    "recall": _cmd_recall,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
