"""Command-line interface: regenerate paper experiments without pytest.

Usage::

    python -m repro.cli table1   [--datasets webspam corel ...] [--n 12000]
    python -m repro.cli figure2  --dataset webspam [--n 12000] [--queries 50]
    python -m repro.cli figure3  [--n 12000]
    python -m repro.cli profile  --dataset corel [--n 5000]
    python -m repro.cli throughput [--n 20000] [--shards 4] [--json out.json]
    python -m repro.cli throughput --execution processes [--workers 4]
    python -m repro.cli build    --dataset corel --out idx/ [--spec spec.json]
    python -m repro.cli serve    --dataset corel [--shards 2] [--cache-size 512]
    python -m repro.cli serve    --index idx/ [--workers 4] [--inflight 4]
    python -m repro.cli serve    --index idx/ --stats-interval 10 [--stats-log stats.jsonl]
    python -m repro.cli serve    --index idx/ --connect 127.0.0.1:7401 --connect 127.0.0.1:7402
    python -m repro.cli shard-serve --artifact idx/ [--shards 0,2] [--port 7401]
    python -m repro.cli loadgen  --index idx/ --rate 200 --duration 5 [--json out.json]

Every experiment command prints the same text tables the benchmark
harness emits, so results can be generated in CI logs or piped to
files.  ``build`` and ``serve`` are spec-driven (:mod:`repro.api`):
``build`` assembles an :class:`~repro.api.Index` from an
:class:`~repro.api.IndexSpec` — from a JSON file via ``--spec``,
otherwise from the flags — and persists it; ``serve`` speaks the
:mod:`repro.service.stream` JSON-lines protocol on stdin/stdout over a
freshly built or reopened index.

``shard-serve`` exposes a saved artifact's shards over TCP (a
standalone :class:`~repro.service.shard_server.ShardServer` process);
``serve --connect HOST:PORT[,HOST:PORT]`` (one flag per worker slot,
commas separating replicas of that slot) serves through such servers
instead of spawning local workers.  ``loadgen`` offers open-loop
Poisson load against a saved or connected index and reports tail
latency (:mod:`repro.service.loadgen`).
"""

from __future__ import annotations

import argparse
import io
import json
import sys

from repro.datasets import corel_like, covertype_like, mnist_like, webspam_like
from repro.evaluation import (
    figure2_experiment,
    figure3_experiment,
    format_figure2,
    format_figure3,
    format_recall,
    format_throughput,
    mixed_workload,
    recall_experiment,
    table1_experiment,
    throughput_experiment,
    write_throughput_json,
)
from repro.evaluation.profile import distance_profile, hardness_profile, suggest_radii
from repro.evaluation.report import format_table, format_table1

_DATASETS = {
    "webspam": webspam_like,
    "covertype": covertype_like,
    "corel": corel_like,
    "mnist": mnist_like,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=12_000, help="dataset size")
    parser.add_argument("--queries", type=int, default=50, help="query-set size")
    parser.add_argument("--tables", type=int, default=50, help="L, number of hash tables")
    parser.add_argument("--seed", type=int, default=0, help="master seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Hybrid LSH (EDBT 2017) experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="Table 1: HLL cost and error")
    p_table1.add_argument(
        "--datasets", nargs="+", choices=sorted(_DATASETS), default=sorted(_DATASETS)
    )
    _add_common(p_table1)

    p_fig2 = sub.add_parser("figure2", help="Figure 2: CPU time vs radius")
    p_fig2.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    p_fig2.add_argument("--repeats", type=int, default=2)
    _add_common(p_fig2)

    p_fig3 = sub.add_parser("figure3", help="Figure 3: output sizes and %LS calls")
    _add_common(p_fig3)

    p_profile = sub.add_parser("profile", help="distance/hardness diagnostics")
    p_profile.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    _add_common(p_profile)

    p_recall = sub.add_parser(
        "recall", help="recall vs radius (the paper's omitted experiment)"
    )
    p_recall.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    _add_common(p_recall)

    p_tp = sub.add_parser(
        "throughput", help="QPS: sequential vs batched vs sharded serving"
    )
    p_tp.add_argument("--n", type=int, default=20_000, help="dataset size")
    p_tp.add_argument("--queries", type=int, default=200, help="query-set size")
    p_tp.add_argument("--tables", type=int, default=50, help="L, number of hash tables")
    p_tp.add_argument("--dim", type=int, default=24, help="dimensionality")
    p_tp.add_argument("--shards", type=int, default=4, help="K, number of shards")
    p_tp.add_argument("--repeats", type=int, default=1)
    p_tp.add_argument(
        "--ratio", type=float, default=6.0,
        help="beta/alpha cost ratio (0 = calibrate by timing)",
    )
    p_tp.add_argument("--json", metavar="PATH", help="also write the JSON artifact")
    p_tp.add_argument("--seed", type=int, default=0, help="master seed")
    p_tp.add_argument(
        "--assert-frozen-speedup", type=float, default=None, metavar="X",
        help="exit non-zero unless frozen_batched is bit-identical and "
             "reaches X times the sequential QPS (CI regression gate)",
    )
    p_tp.add_argument(
        "--execution", choices=("threads", "processes"), default="threads",
        help="'processes' also measures the mmap'd worker-pool mode "
             "('workers' row) against the thread-pool sharded fan-out",
    )
    p_tp.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="worker-pool width for --execution processes "
             "(default: min(shards, cpu count))",
    )
    p_tp.add_argument(
        "--assert-workers-speedup", type=float, default=None, metavar="X",
        help="exit non-zero unless the workers mode is bit-identical to the "
             "thread path; on multi-core hosts additionally require X times "
             "the sharded (thread-pool) QPS — skipped on 1-core hosts",
    )
    p_tp.add_argument(
        "--include-multiprobe", action="store_true",
        help="also measure a multi-probe index: per-query loop "
             "('multiprobe_sequential') vs its frozen CSR layout batched "
             "('frozen_multiprobe', bit-identity asserted)",
    )
    p_tp.add_argument(
        "--probes", type=int, default=2, metavar="P",
        help="extra probed buckets per table for the multiprobe rows",
    )
    p_tp.add_argument(
        "--assert-multiprobe-speedup", type=float, default=None, metavar="X",
        help="exit non-zero unless frozen_multiprobe is bit-identical to the "
             "multi-probe sequential loop and reaches X times its QPS "
             "(CI regression gate; implies --include-multiprobe)",
    )
    p_tp.add_argument(
        "--allow-partial", action="store_true",
        help="opt the workers row's queries into degraded answers "
             "(requires --execution processes; answers stay bit-identical "
             "on a healthy pool, only the partial-result bookkeeping is "
             "charged)",
    )
    p_tp.add_argument(
        "--include-adaptive", action="store_true",
        help="also measure adaptive execution: a fixed-fan-out facade "
             "('adaptive_fixed') vs the same spec under a per-query "
             "candidate budget ('adaptive_budget'), recording candidates "
             "examined and recall vs brute-force ground truth",
    )
    p_tp.add_argument(
        "--adaptive-target", type=int, default=None, metavar="C",
        help="target_candidates for the adaptive_budget row "
             "(default: max(32, n // 100))",
    )
    p_tp.add_argument(
        "--assert-adaptive-candidates", type=float, default=None, metavar="X",
        help="exit non-zero unless adaptive_budget's answers are an id-subset "
             "of adaptive_fixed's, examine at most X times its candidates, "
             "and recall stays within 0.005 "
             "(CI regression gate; implies --include-adaptive)",
    )

    p_build = sub.add_parser(
        "build", help="build a spec-driven index over a dataset and save it"
    )
    p_build.add_argument(
        "--dataset", choices=sorted(_DATASETS), default="corel",
        help="synthetic dataset stand-in to index",
    )
    p_build.add_argument("--out", required=True, metavar="DIR",
                         help="directory to persist the index into")
    _add_spec_options(p_build)
    _add_common(p_build)

    p_serve = sub.add_parser(
        "serve", help="answer JSON-lines queries on stdin (see repro.service.stream)"
    )
    p_serve.add_argument(
        "--dataset", choices=sorted(_DATASETS), default="corel",
        help="synthetic dataset stand-in to index",
    )
    p_serve.add_argument("--index", metavar="DIR", default=None,
                         help="serve a saved index instead of building one")
    p_serve.add_argument("--batch-size", type=int, default=64,
                         help="micro-batch size for consecutive queries")
    p_serve.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="worker-pool width for execution='processes' indexes "
             "(default: min(shards, cpu count))",
    )
    p_serve.add_argument(
        "--inflight", type=int, default=1, metavar="B",
        help="in-flight batch window; > 1 enables the concurrent request "
             "loop (reader thread, responses kept in request order)",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-op worker reply deadline for execution='processes' "
             "indexes (default: the FaultTolerancePolicy default)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="transport-failure retries per worker request (each retry "
             "respawns the worker before re-sending)",
    )
    p_serve.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="ping idle workers every SECONDS to catch hangs between "
             "requests; 0 disables (the default)",
    )
    p_serve.add_argument(
        "--stats-interval", type=float, default=0.0, metavar="SECONDS",
        help="emit a JSONL stats snapshot line every SECONDS (plus one at "
             "shutdown); 0 disables",
    )
    p_serve.add_argument(
        "--stats-log", metavar="PATH", default=None,
        help="append the periodic stats lines to PATH instead of stderr",
    )
    p_serve.add_argument(
        "--allow-partial", action="store_true",
        help="opt every query into degraded answers when shards are "
             "unavailable (per-request \"allow_partial\" can widen but "
             "never narrow this server-level default)",
    )
    p_serve.add_argument(
        "--proto", choices=("v1", "v2"), default="v2",
        help="response protocol: v2 (default) emits the QueryOutcome "
             "envelope with a \"v\": 2 marker; v1 restores the legacy "
             "response body byte-for-byte",
    )
    p_serve.add_argument(
        "--connect", action="append", default=None, metavar="HOST:PORT[,HOST:PORT]",
        help="serve through standalone shard servers (repro.cli shard-serve) "
             "instead of spawning local workers: one flag per worker slot, "
             "commas separating that slot's replicas; requires --index",
    )
    _add_spec_options(p_serve)
    _add_common(p_serve)

    p_shard = sub.add_parser(
        "shard-serve",
        help="serve a saved artifact's shards over TCP (see serve --connect)",
    )
    p_shard.add_argument(
        "--artifact", required=True, metavar="DIR",
        help="saved execution='processes' index directory to serve from",
    )
    p_shard.add_argument(
        "--shards", default=None, metavar="IDS",
        help="comma-separated shard ids to open (default: all shards)",
    )
    p_shard.add_argument("--host", default="127.0.0.1", help="bind address")
    p_shard.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0: let the OS pick; the chosen port is "
             "printed in the startup JSON line)",
    )

    p_lg = sub.add_parser(
        "loadgen",
        help="open-loop Poisson load against a saved index; tail latency out",
    )
    p_lg.add_argument("--index", required=True, metavar="DIR",
                      help="saved index directory to drive")
    p_lg.add_argument(
        "--connect", action="append", default=None, metavar="HOST:PORT[,HOST:PORT]",
        help="drive through standalone shard servers instead of spawning "
             "local workers (same shape as serve --connect)",
    )
    p_lg.add_argument("--rate", type=float, default=100.0,
                      help="offered load, requests/second")
    p_lg.add_argument("--duration", type=float, default=5.0,
                      help="run length, seconds")
    p_lg.add_argument("--seed", type=int, default=0, help="workload seed")
    p_lg.add_argument("--mode", choices=("radius", "topk"), default="radius",
                      help="query kind to offer")
    p_lg.add_argument("--k", type=int, default=10, help="k for --mode topk")
    p_lg.add_argument("--radius", type=float, default=None,
                      help="radius for --mode radius (default: the index's)")
    p_lg.add_argument(
        "--allow-partial", action="store_true",
        help="opt requests into degraded answers instead of failures when "
             "a whole replica set is down",
    )
    p_lg.add_argument("--concurrency", type=int, default=8,
                      help="driver threads sharing the arrival schedule")
    p_lg.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-op worker reply deadline (FaultTolerancePolicy override)",
    )
    p_lg.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="transport-failure retries per request",
    )
    p_lg.add_argument("--json", metavar="PATH", default=None,
                      help="write the full result document to PATH")
    p_lg.add_argument(
        "--samples", action="store_true",
        help="keep the per-request [arrival, latency] samples in the "
             "output (they dominate the file size)",
    )

    return parser


def _add_spec_options(parser: argparse.ArgumentParser) -> None:
    """Flags that assemble an :class:`~repro.api.IndexSpec`."""
    parser.add_argument("--spec", metavar="JSON", default=None,
                        help="IndexSpec JSON file; its keys override the flags")
    parser.add_argument("--radius", type=float, default=None,
                        help="default query radius (default: the dataset's mid sweep radius)")
    parser.add_argument("--shards", type=int, default=1,
                        help="K > 1 builds a sharded index")
    parser.add_argument("--cache-size", type=int, default=0,
                        help="LRU result-cache capacity (0 disables)")
    parser.add_argument(
        "--ratio", type=float, default=6.0,
        help="beta/alpha cost ratio (0 = calibrate by timing)",
    )
    parser.add_argument(
        "--layout", choices=("dict", "frozen"), default="dict",
        help="bucket storage layout; 'frozen' compacts into CSR arrays "
             "(vectorised serving, mmap-backed persistence)",
    )
    parser.add_argument(
        "--variant", choices=("plain", "multiprobe", "covering"), default="plain",
        help="index variant: 'multiprobe' probes extra buckets per table "
             "(see --probes), 'covering' builds the no-false-negative "
             "Hamming construction (requires a hamming dataset and an "
             "integer radius); both compose with either --layout",
    )
    parser.add_argument(
        "--probes", type=int, default=2, metavar="P",
        help="extra probed buckets per table for --variant multiprobe",
    )
    parser.add_argument(
        "--execution", choices=("threads", "processes"), default="threads",
        help="shard fan-out: 'processes' serves mmap'd frozen shards from "
             "a pool of worker processes (requires --layout frozen)",
    )


def _cmd_table1(args: argparse.Namespace) -> None:
    rows = []
    for name in args.datasets:
        dataset = _DATASETS[name](n=args.n, seed=args.seed)
        rows.append(
            table1_experiment(
                dataset,
                num_queries=args.queries,
                num_tables=args.tables,
                seed=args.seed,
            )
        )
    print(format_table1(rows))


def _cmd_figure2(args: argparse.Namespace) -> None:
    dataset = _DATASETS[args.dataset](n=args.n, seed=args.seed)
    rows = figure2_experiment(
        dataset,
        num_queries=args.queries,
        repeats=args.repeats,
        num_tables=args.tables,
        seed=args.seed,
    )
    print(format_figure2(rows, title=f"Figure 2: {dataset.name} ({dataset.metric})"))


def _cmd_figure3(args: argparse.Namespace) -> None:
    dataset = webspam_like(n=args.n, seed=args.seed)
    rows = figure3_experiment(
        dataset, num_queries=args.queries, num_tables=args.tables, seed=args.seed
    )
    print(format_figure3(rows, title=f"Figure 3: {dataset.name}"))


def _cmd_profile(args: argparse.Namespace) -> None:
    dataset = _DATASETS[args.dataset](n=args.n, seed=args.seed)
    profile = distance_profile(dataset.points, dataset.metric, seed=args.seed)
    print(f"{dataset.name}: n = {dataset.n}, d = {dataset.dim}, metric = {dataset.metric}")
    print(format_table(
        ["quantile", "distance"],
        [[f"{q:g}", f"{v:.4g}"] for q, v in sorted(profile.quantiles.items())],
    ))
    print(f"suggested sweep: {tuple(round(r, 4) for r in suggest_radii(profile))}")
    print(f"paper sweep    : {dataset.radii}")
    mid_radius = dataset.radii[len(dataset.radii) // 2]
    hardness = hardness_profile(
        dataset.points, dataset.metric, float(mid_radius),
        num_queries=args.queries, seed=args.seed,
    )
    print(
        f"hardness at r = {mid_radius:g}: avg out {hardness.avg_output:.1f}, "
        f"max {hardness.max_output}, min {hardness.min_output}, "
        f"hard fraction {hardness.hard_fraction:.0%}"
    )


def _cmd_recall(args: argparse.Namespace) -> None:
    dataset = _DATASETS[args.dataset](n=args.n, seed=args.seed)
    rows = recall_experiment(
        dataset, num_queries=args.queries, num_tables=args.tables, seed=args.seed
    )
    print(format_recall(rows, title=f"Recall vs radius: {dataset.name}"))


def _cost_model_from_ratio(ratio: float):
    """``--ratio 0`` means "calibrate by timing" (slower, hardware-true)."""
    if ratio and ratio > 0:
        from repro.core import CostModel

        return CostModel.from_ratio(ratio)
    return None


def _cmd_throughput(args: argparse.Namespace) -> None:
    if args.workers is not None and args.execution != "processes":
        # Same policy as Index.build/open: dropping the flag silently
        # would let the user believe the pool was measured.
        sys.exit("error: --workers requires --execution processes")
    if args.allow_partial and args.execution != "processes":
        sys.exit("error: --allow-partial requires --execution processes")
    points, queries, radius = mixed_workload(
        args.n, dim=args.dim, num_queries=args.queries, seed=args.seed
    )
    include_multiprobe = (
        args.include_multiprobe or args.assert_multiprobe_speedup is not None
    )
    include_adaptive = (
        args.include_adaptive or args.assert_adaptive_candidates is not None
    )
    rows = throughput_experiment(
        points,
        queries,
        metric="l2",
        radius=radius,
        num_tables=args.tables,
        num_shards=args.shards,
        cost_model=_cost_model_from_ratio(args.ratio),
        repeats=args.repeats,
        seed=args.seed,
        include_workers=args.execution == "processes",
        num_workers=args.workers,
        include_multiprobe=include_multiprobe,
        num_probes=args.probes,
        allow_partial=args.allow_partial,
        include_adaptive=include_adaptive,
        adaptive_target=args.adaptive_target,
    )
    title = (
        f"Serving throughput: n = {args.n}, d = {args.dim}, "
        f"{args.queries} queries, K = {args.shards}, r = {radius:.3g}"
    )
    print(format_throughput(rows, title=title))
    by_mode = {row.mode: row for row in rows}
    if args.assert_frozen_speedup is not None:
        frozen, seq = by_mode["frozen_batched"], by_mode["sequential"]
        if not frozen.matches:
            sys.exit("error: frozen_batched answers diverged from sequential")
        if frozen.qps < args.assert_frozen_speedup * seq.qps:
            sys.exit(
                f"error: frozen_batched speedup "
                f"{frozen.qps / seq.qps:.2f}x < {args.assert_frozen_speedup}x bar"
            )
        print(
            f"frozen_batched {frozen.qps / seq.qps:.2f}x >= "
            f"{args.assert_frozen_speedup}x: OK"
        )
    if args.assert_workers_speedup is not None:
        import os as _os

        if "workers" not in by_mode:
            sys.exit(
                "error: --assert-workers-speedup requires --execution processes"
            )
        workers, sharded = by_mode["workers"], by_mode["sharded"]
        if not workers.matches:
            sys.exit("error: workers answers diverged from the thread path")
        cores = _os.cpu_count() or 1
        if cores <= 1:
            # A process pool cannot beat threads without real cores; the
            # bit-identity gate above still ran.
            print(
                f"workers bit-identical: OK (speedup bar skipped on "
                f"{cores}-core host)"
            )
        elif workers.qps < args.assert_workers_speedup * sharded.qps:
            sys.exit(
                f"error: workers speedup {workers.qps / sharded.qps:.2f}x "
                f"over sharded < {args.assert_workers_speedup}x bar"
            )
        else:
            print(
                f"workers {workers.qps / sharded.qps:.2f}x over sharded >= "
                f"{args.assert_workers_speedup}x: OK"
            )
    if args.assert_multiprobe_speedup is not None:
        frozen_mp = by_mode["frozen_multiprobe"]
        mp_seq = by_mode["multiprobe_sequential"]
        if not frozen_mp.matches:
            sys.exit(
                "error: frozen_multiprobe answers diverged from the "
                "multi-probe sequential loop"
            )
        if frozen_mp.qps < args.assert_multiprobe_speedup * mp_seq.qps:
            sys.exit(
                f"error: frozen_multiprobe speedup "
                f"{frozen_mp.qps / mp_seq.qps:.2f}x < "
                f"{args.assert_multiprobe_speedup}x bar"
            )
        print(
            f"frozen_multiprobe {frozen_mp.qps / mp_seq.qps:.2f}x >= "
            f"{args.assert_multiprobe_speedup}x: OK"
        )
    if args.assert_adaptive_candidates is not None:
        ad, fx = by_mode["adaptive_budget"], by_mode["adaptive_fixed"]
        if not ad.matches:
            sys.exit(
                "error: adaptive_budget answers are not an id-subset of "
                "adaptive_fixed"
            )
        bar = args.assert_adaptive_candidates
        if ad.candidates > bar * fx.candidates:
            sys.exit(
                f"error: adaptive_budget examined "
                f"{ad.candidates / fx.candidates:.2f}x the fixed "
                f"candidates > {bar}x bar"
            )
        if ad.recall < fx.recall - 0.005:
            sys.exit(
                f"error: adaptive_budget recall {ad.recall:.4f} fell more "
                f"than 0.005 below fixed recall {fx.recall:.4f}"
            )
        print(
            f"adaptive_budget {ad.candidates / fx.candidates:.2f}x "
            f"candidates <= {bar}x at recall {ad.recall:.4f} "
            f"(fixed {fx.recall:.4f}): OK"
        )
    if args.json:
        write_throughput_json(
            rows,
            args.json,
            meta={
                "n": args.n,
                "dim": args.dim,
                "num_shards": args.shards,
                "num_tables": args.tables,
                "radius": radius,
                "seed": args.seed,
            },
        )
        print(f"wrote {args.json}")


def _index_spec_from_args(args: argparse.Namespace, metric: str, radius: float):
    """Assemble an :class:`~repro.api.IndexSpec` from the CLI flags.

    A ``--spec`` JSON file wins over individual flags, which win over
    the dataset-derived metric and radius.
    """
    from repro.api import IndexSpec

    doc = {
        "metric": metric,
        "radius": radius,
        "num_tables": args.tables,
        "num_shards": args.shards,
        "cache_size": args.cache_size,
        "cost_ratio": args.ratio if args.ratio and args.ratio > 0 else None,
        "layout": args.layout,
        "variant": args.variant,
        "num_probes": args.probes,
        "execution": args.execution,
        "seed": args.seed,
    }
    if args.spec:
        with open(args.spec) as fh:
            doc.update(json.load(fh))
    return IndexSpec.from_dict(doc)


def _build_index(args: argparse.Namespace):
    """Build a spec-driven index over the chosen dataset stand-in.

    Invalid flag combinations (e.g. ``--variant covering`` on a
    non-Hamming dataset, or ``--execution processes`` without
    ``--layout frozen``) exit non-zero with the validation message
    instead of a traceback — the CLI contract for misconfiguration.
    """
    from repro.api import Index
    from repro.exceptions import ConfigurationError

    dataset = _DATASETS[args.dataset](n=args.n, seed=args.seed)
    radius = (
        float(dataset.radii[len(dataset.radii) // 2])
        if args.radius is None
        else args.radius
    )
    if (
        getattr(args, "variant", "plain") == "covering"
        and args.radius is None
        and dataset.metric == "hamming"
    ):
        # Dataset sweep radii are rarely integral; the covering
        # construction needs an integer Hamming radius.  (Non-Hamming
        # datasets fall through so validation reports the real problem.)
        radius = float(max(1, int(round(radius))))
    try:
        spec = _index_spec_from_args(args, dataset.metric, radius)
        num_workers = getattr(args, "workers", None)
        fault_policy = getattr(args, "fault_policy", None)
        return dataset, Index.build(
            dataset.points, spec, num_workers=num_workers, fault_policy=fault_policy
        )
    except ConfigurationError as exc:
        sys.exit(f"error: {exc}")


def _cmd_build(args: argparse.Namespace) -> None:
    dataset, index = _build_index(args)
    index.save(args.out)
    print(
        f"built {dataset.name}: n = {index.n}, d = {index.dim}, "
        f"shards = {index.num_shards} -> saved to {args.out}"
    )
    print(json.dumps(index.spec.to_dict(), indent=2))
    # Releases worker processes and any transient pool artifact when the
    # spec asked for execution="processes".
    index.close()


def _fault_policy_from_args(args: argparse.Namespace):
    """Assemble a FaultTolerancePolicy from --deadline/--retries/--heartbeat.

    Returns ``None`` when no fault flag was given, so indexes keep the
    library defaults (and non-processes indexes never see a policy).
    """
    from repro.exceptions import ConfigurationError
    from repro.faults import FaultTolerancePolicy

    overrides = {}
    if args.deadline is not None:
        overrides["recv_deadline"] = args.deadline
    if args.retries is not None:
        overrides["max_retries"] = args.retries
    if getattr(args, "heartbeat", None) is not None:
        overrides["heartbeat_interval"] = args.heartbeat
    if not overrides:
        return None
    try:
        return FaultTolerancePolicy().with_overrides(**overrides)
    except ConfigurationError as exc:
        sys.exit(f"error: {exc}")


def _cmd_serve(args: argparse.Namespace, stdin=None, stdout=None) -> None:
    from repro.api import Index
    from repro.exceptions import ConfigurationError
    from repro.service import serve_stream, serve_stream_concurrent

    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    if args.inflight < 1:
        sys.exit("error: --inflight must be >= 1")
    if args.connect and not args.index:
        sys.exit("error: --connect requires --index (the artifact carries "
                 "the spec and shard map the client merges with)")
    fault_policy = _fault_policy_from_args(args)
    if args.index:
        # A saved index carries its own spec; accepting build flags here
        # and ignoring them would silently serve a different policy than
        # the operator asked for.  (--workers, --inflight, --connect,
        # --allow-partial, and the --stats-* telemetry flags are runtime
        # knobs, not spec fields, so they stay allowed.)
        conflicting = [
            flag
            for flag, given in (
                ("--spec", args.spec is not None),
                ("--radius", args.radius is not None),
                ("--shards", args.shards != 1),
                ("--cache-size", args.cache_size != 0),
                ("--ratio", args.ratio != 6.0),
                ("--layout", args.layout != "dict"),
                ("--variant", args.variant != "plain"),
                ("--probes", args.probes != 2),
                ("--execution", args.execution != "threads"),
            )
            if given
        ]
        if conflicting:
            sys.exit(
                f"error: --index serves the saved index's own spec; "
                f"remove {', '.join(conflicting)} (or rebuild with "
                f"`repro.cli build`)"
            )
        try:
            index = Index.open(
                args.index,
                num_workers=args.workers,
                fault_policy=fault_policy,
                endpoints=args.connect,
            )
        except ConfigurationError as exc:
            sys.exit(f"error: {exc}")
        source = args.index
    else:
        args.fault_policy = fault_policy
        dataset, index = _build_index(args)
        source = dataset.name
    spec = index.spec
    workers = (
        f", workers = {index.stats.pool_workers}"
        if index.execution == "processes"
        else ""
    )
    print(
        f"serving {source}: n = {index.n}, d = {index.dim}, "
        f"metric = {spec.metric}, r = {spec.radius:g}, "
        f"shards = {index.num_shards}, execution = {index.execution}{workers} "
        "(one JSON request per line; Ctrl-D to stop)",
        file=sys.stderr,
    )
    proto = 1 if getattr(args, "proto", "v2") == "v1" else 2
    if args.inflight > 1:
        responses = serve_stream_concurrent(
            index,
            stdin,
            batch_size=args.batch_size,
            window=args.inflight,
            default_allow_partial=args.allow_partial,
            proto=proto,
        )
    else:
        lines, more_ready = _line_stream_with_probe(stdin)
        responses = serve_stream(
            index,
            lines,
            batch_size=args.batch_size,
            more_ready=more_ready,
            default_allow_partial=args.allow_partial,
            proto=proto,
        )
    stop_stats = _start_stats_reporter(
        index, getattr(args, "stats_interval", 0.0), getattr(args, "stats_log", None)
    )
    try:
        for response in responses:
            print(response, file=stdout, flush=True)
    finally:
        stop_stats()


def _cmd_shard_serve(args: argparse.Namespace) -> None:
    """Serve a saved artifact's shards over TCP until interrupted.

    Prints exactly one JSON line on stdout once the listener is bound —
    ``{"host": ..., "port": ..., "shards": [...], "pid": ...}`` — so a
    launcher (or CI script) can parse the chosen port and shard set,
    then blocks in the accept loop.  SIGINT/Ctrl-C shuts down cleanly.
    """
    import os

    from repro.exceptions import ConfigurationError
    from repro.service.shard_server import ShardServer

    shard_ids = None
    if args.shards is not None:
        try:
            shard_ids = [int(s) for s in args.shards.split(",") if s.strip()]
        except ValueError:
            sys.exit(f"error: --shards must be comma-separated ints, got {args.shards!r}")
        if not shard_ids:
            sys.exit("error: --shards named no shard ids")
    try:
        server = ShardServer(
            args.artifact, shard_ids=shard_ids, host=args.host, port=args.port
        )
    except (ConfigurationError, OSError) as exc:
        sys.exit(f"error: {exc}")
    print(
        json.dumps(
            {
                "host": server.host,
                "port": server.port,
                "shards": server.shard_ids,
                "pid": os.getpid(),
            }
        ),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()


def _cmd_loadgen(args: argparse.Namespace) -> None:
    """Offer open-loop load against a saved (or connected) index."""
    from repro.api import Index
    from repro.exceptions import ConfigurationError
    from repro.service.loadgen import run_loadgen

    fault_policy = _fault_policy_from_args(args)
    try:
        index = Index.open(
            args.index, fault_policy=fault_policy, endpoints=args.connect
        )
    except ConfigurationError as exc:
        sys.exit(f"error: {exc}")
    try:
        doc = run_loadgen(
            index,
            rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            mode=args.mode,
            k=args.k,
            radius=args.radius,
            allow_partial=args.allow_partial,
            concurrency=args.concurrency,
        )
    except ValueError as exc:
        sys.exit(f"error: {exc}")
    finally:
        index.close()
    if not args.samples:
        doc.pop("samples", None)
    latency = doc["latency"]
    print(
        f"loadgen: {doc['requests']} requests at {doc['rate']:g}/s for "
        f"{doc['duration']:g}s -> {doc['failures']} failures, "
        f"{doc['degraded']} degraded; "
        f"p50 {latency['p50_ms'] or float('nan'):.2f}ms, "
        f"p95 {latency['p95_ms'] or float('nan'):.2f}ms, "
        f"p99 {latency['p99_ms'] or float('nan'):.2f}ms",
        file=sys.stderr,
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    else:
        print(json.dumps(doc))


def _start_stats_reporter(index, interval: float, log_path: str | None):
    """Periodic JSONL stats lines while serving; returns a stop callable.

    Every ``interval`` seconds one ``index.stats_snapshot()`` document
    (timestamped) is appended as a single JSON line to ``log_path`` (or
    stderr), plus a final line at shutdown so short sessions still
    record their totals.  ``interval <= 0`` disables everything and the
    returned callable is a no-op.  Snapshots always describe the index
    this process started serving, even if the stream later swaps
    targets via ``open``/``create`` ops.
    """
    import threading
    import time as time_mod

    if not interval or interval <= 0:
        return lambda: None
    sink = open(log_path, "a", encoding="utf-8") if log_path else sys.stderr
    stop = threading.Event()

    def emit() -> None:
        doc = {"ts": time_mod.time(), **index.stats_snapshot()}
        print(json.dumps(doc), file=sink, flush=True)

    def loop() -> None:
        while not stop.wait(interval):
            emit()

    thread = threading.Thread(target=loop, name="repro-stats", daemon=True)
    thread.start()

    def stop_stats() -> None:
        stop.set()
        thread.join(timeout=5.0)
        try:
            emit()
        finally:
            if sink is not sys.stderr:
                sink.close()

    return stop_stats


def _line_stream_with_probe(stdin):
    """Line iterator over ``stdin`` plus an honest backlog probe.

    Micro-batching needs to know whether more requests are already
    waiting.  A bare ``select`` on the fd cannot see lines sitting in
    a ``TextIOWrapper``'s readahead buffer, so a keep-alive client's
    burst would be served line by line.  Reading the fd through our
    own buffer makes the backlog fully inspectable: ``more_ready`` is
    true while a complete line is buffered or the fd is readable.

    Returns ``(lines, more_ready)``; falls back to ``(stdin, None)``
    (answer every query immediately) when the stream has no usable fd.
    """
    import os
    import select

    try:
        fd = stdin.fileno()
    except (AttributeError, OSError, ValueError, io.UnsupportedOperation):
        return stdin, None

    buffer = bytearray()
    eof = [False]

    def fd_ready() -> bool:
        try:
            return bool(select.select([fd], [], [], 0.0)[0])
        except (OSError, ValueError):
            return False

    def more_ready() -> bool:
        return b"\n" in buffer or (not eof[0] and fd_ready())

    def lines():
        while True:
            newline = buffer.find(b"\n")
            if newline >= 0:
                line = bytes(buffer[: newline + 1])
                del buffer[: newline + 1]
                yield line.decode("utf-8", errors="replace")
                continue
            if eof[0]:
                if buffer:
                    tail = bytes(buffer)
                    buffer.clear()
                    yield tail.decode("utf-8", errors="replace")
                return
            chunk = os.read(fd, 65536)
            if chunk:
                buffer.extend(chunk)
            else:
                eof[0] = True

    return lines(), more_ready


_COMMANDS = {
    "table1": _cmd_table1,
    "figure2": _cmd_figure2,
    "figure3": _cmd_figure3,
    "profile": _cmd_profile,
    "recall": _cmd_recall,
    "throughput": _cmd_throughput,
    "build": _cmd_build,
    "serve": _cmd_serve,
    "shard-serve": _cmd_shard_serve,
    "loadgen": _cmd_loadgen,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
