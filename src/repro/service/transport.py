"""Shard transports: one wire contract, two carriers (pipe and TCP).

:class:`~repro.service.workers.WorkerPool` speaks a tuple-based
request/reply protocol (``("radius", ...)``, ``("insert", ...)``, ...).
This module abstracts *how* those tuples travel behind a
:class:`ShardTransport` interface so the pool's deadline / retry /
breaker machinery is carrier-agnostic — "the transport changes, the
policy does not":

* :class:`PipeTransport` — the original carrier: a duplex
  ``multiprocessing`` pipe to a locally spawned worker process.
  Framing, checksums and reconnection are all delegated to the OS pipe
  (a broken pipe *is* the crash signal).
* :class:`TcpTransport` — the same tuples pickled into length-prefixed,
  CRC32-checksummed frames over a TCP socket to a standalone shard
  server (:mod:`repro.service.shard_server`, ``repro.cli shard-serve``),
  so shards can live on other hosts.  Every socket wait is bounded by
  ``settimeout`` (the socket-level analogue of the bounded ``poll``
  the ``deadline-required`` lint rule enforces), and a failed checksum
  or truncated frame surfaces as :class:`FrameError` — never as a
  half-deserialised object.

Failure *classification* lives with the carrier because the same OS
error means different things on different wires: an ``EOFError`` from a
live worker process is a truncated payload (``"corrupt"``), while a
socket EOF is the peer closing the connection (``"disconnect"`` — the
endpoint is retried after reconnect-with-backoff rather than declared
dead).  The pool maps causes to recovery moves; transports only name
them.

The server side of the TCP frame protocol is
:class:`ServerConnection`, which duck-types the subset of the
``multiprocessing.Connection`` surface the shard-serving loop uses
(``poll`` / ``recv`` / ``send`` / ``send_bytes`` / ``close``) so one
loop serves both carriers — plus ``send_corrupt`` as the injection
point for the ``corrupt_frame`` fault kind.
"""

from __future__ import annotations

import contextlib
import pickle
import select
import socket
import struct
import time
import zlib

from repro.exceptions import DeadlineExceededError

__all__ = [
    "FrameError",
    "ShardTransport",
    "PipeTransport",
    "TcpTransport",
    "ServerConnection",
    "encode_frame",
    "corrupt_frame",
]

#: frame header: CRC32 of the payload, then the payload length in bytes.
_HEADER = struct.Struct(">IQ")

#: refuse frames claiming more than this many payload bytes — a corrupt
#: or hostile length prefix must not drive a multi-gigabyte allocation.
_MAX_FRAME_BYTES = 1 << 33

#: server-side I/O bound: once ``poll`` reports a frame in flight, the
#: whole frame must arrive within this window or the peer is dropped
#: (protects the server from half-open clients parking a thread).
_SERVER_IO_DEADLINE = 30.0

#: socket read chunk size.
_CHUNK = 1 << 20


class FrameError(RuntimeError):
    """A TCP frame failed its checksum, length, or payload decode.

    Classified as ``"corrupt"`` by the pool: the connection delivered
    bytes, but not the bytes the peer framed — retry elsewhere.
    """


def encode_frame(message: object) -> bytes:
    """Pickle ``message`` into one checksummed length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(zlib.crc32(payload), len(payload)) + payload


def frame_bytes(payload: bytes) -> bytes:
    """Frame pre-pickled ``payload`` bytes (checksum over what's sent).

    This is the ``send_bytes`` path: the checksum matches the (possibly
    deliberately truncated) payload, so the receiver's CRC passes and
    the *unpickle* step fails — exactly how a ``corrupt`` pipe fault
    presents, kept equivalent on TCP.
    """
    return _HEADER.pack(zlib.crc32(payload), len(payload)) + payload


def corrupt_frame(message: object) -> bytes:
    """A frame whose checksum deliberately contradicts its payload.

    The injection vector for :attr:`~repro.faults.FaultKind.CORRUPT_FRAME`:
    length and payload are intact, the CRC is bit-flipped, so the
    receiver rejects the frame at the checksum gate.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(zlib.crc32(payload) ^ 0xFFFFFFFF, len(payload)) + payload


def decode_frame(header: bytes, payload: bytes) -> object:
    """Verify and unpickle one received frame; :class:`FrameError` on damage."""
    crc, length = _HEADER.unpack(header)
    if len(payload) != length:
        raise FrameError(
            f"frame truncated: header promised {length} bytes, got {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise FrameError("frame checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise FrameError(f"frame payload failed to deserialise: {exc!r}") from exc


class ShardTransport:
    """One endpoint's request/reply channel, as the pool sees it.

    Implementations provide blocking-but-bounded primitives; the pool
    owns deadlines, retries, breakers and replay.  ``classify_*``
    translate carrier-specific exceptions into the pool's failure
    vocabulary (``"crash"`` / ``"timeout"`` / ``"corrupt"`` /
    ``"disconnect"``); :class:`~repro.exceptions.DeadlineExceededError`
    is raised by :meth:`recv_within` itself and classified as
    ``"timeout"`` by the caller.
    """

    #: human-readable endpoint description for error messages.
    endpoint = "?"

    def send(self, message: object) -> None:
        raise NotImplementedError

    def recv_within(self, seconds: float, what: str) -> object:
        """Receive one reply, or raise ``DeadlineExceededError``."""
        raise NotImplementedError

    def kill(self) -> None:
        """Tear the channel down hard (stale replies must never arrive)."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Graceful close after a ``stop`` was sent (best-effort)."""
        self.kill()

    def classify_send_error(self, exc: BaseException) -> str:
        raise NotImplementedError

    def classify_recv_error(self, exc: BaseException) -> str:
        raise NotImplementedError


class PipeTransport(ShardTransport):
    """A locally spawned worker process behind a duplex pipe."""

    def __init__(self, process, conn, endpoint: str = "pipe") -> None:
        self.process = process
        self.conn = conn
        self.endpoint = endpoint

    def send(self, message: object) -> None:
        self.conn.send(message)

    def recv_within(self, seconds: float, what: str) -> object:
        if not self.conn.poll(seconds):
            raise DeadlineExceededError(
                f"{what} exceeded its {seconds:.3f}s deadline"
            )
        return self.conn.recv()

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        with contextlib.suppress(OSError):
            self.conn.close()

    def shutdown(self) -> None:
        """Join after a clean ``stop``; escalate to terminate on a hang."""
        if self.process is not None:
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=5.0)
        with contextlib.suppress(OSError):
            self.conn.close()

    def classify_send_error(self, exc: BaseException) -> str:
        return "crash"

    def classify_recv_error(self, exc: BaseException) -> str:
        # EOF from a live process is the signature of a truncated
        # payload; EOF/OSError from a dead one is the crash itself.
        # A crashing worker closes its pipe end an instant before its
        # exit is observable, so grant a grace join before believing
        # "alive" — only a genuinely live (corrupt) worker pays it.
        if isinstance(exc, EOFError) and self.process is not None:
            self.process.join(timeout=0.2)
        alive = self.process is not None and self.process.is_alive()
        if isinstance(exc, EOFError) and alive:
            return "corrupt"
        if isinstance(exc, (EOFError, OSError)):
            return "crash"
        return "corrupt"


class TcpTransport(ShardTransport):
    """A remote shard server behind checksummed frames on a TCP socket."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        send_deadline: float = 30.0,
    ) -> None:
        self.endpoint = f"{host}:{port}"
        self._send_deadline = float(send_deadline)
        self._sock = socket.create_connection(
            (host, port), timeout=float(connect_timeout)
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def send(self, message: object) -> None:
        self._sock.settimeout(self._send_deadline)
        self._sock.sendall(encode_frame(message))

    def recv_within(self, seconds: float, what: str) -> object:
        deadline = time.monotonic() + float(seconds)
        header = self._read_exact(_HEADER.size, deadline, what)
        _, length = _HEADER.unpack(header)
        if length > _MAX_FRAME_BYTES:
            raise FrameError(f"frame length {length} exceeds the sanity bound")
        payload = self._read_exact(length, deadline, what)
        return decode_frame(header, payload)

    def _read_exact(self, n: int, deadline: float, what: str) -> bytes:
        """Read exactly ``n`` bytes, never blocking past ``deadline``."""
        chunks: list[bytes] = []
        remaining = n
        while remaining > 0:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise DeadlineExceededError(f"{what} exceeded its deadline")
            self._sock.settimeout(budget)
            try:
                chunk = self._sock.recv(min(remaining, _CHUNK))
            except TimeoutError as exc:
                raise DeadlineExceededError(
                    f"{what} exceeded its deadline"
                ) from exc
            if not chunk:
                raise EOFError(f"{what}: peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def kill(self) -> None:
        with contextlib.suppress(OSError):
            self._sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._sock.close()

    def classify_send_error(self, exc: BaseException) -> str:
        return "disconnect"

    def classify_recv_error(self, exc: BaseException) -> str:
        if isinstance(exc, FrameError):
            return "corrupt"
        if isinstance(exc, (EOFError, ConnectionError, OSError)):
            return "disconnect"
        return "corrupt"


class ServerConnection:
    """Server side of the frame protocol, pipe-``Connection``-shaped.

    Wraps one accepted socket so
    :func:`repro.service.shard_server.serve_connection` can drive pipes
    and sockets with identical code.  Every blocking wait is bounded:
    ``poll`` by its explicit timeout (a ``select`` under the hood) and
    the frame reads by :data:`_SERVER_IO_DEADLINE` ``settimeout`` calls,
    so a half-open client can never park a serving thread forever.
    """

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    def poll(self, timeout: float = 0.0) -> bool:
        """Bounded readability check (the socket analogue of pipe poll)."""
        try:
            ready, _, _ = select.select([self._sock], [], [], float(timeout))
        except (OSError, ValueError):
            # A closed/invalid descriptor (select raises ValueError on a
            # fd of -1) reads as "ready": the recv that follows raises
            # and ends the session cleanly, preserving its op count.
            return True
        return bool(ready)

    def recv(self) -> object:
        """Read one frame; raises ``FrameError``/``EOFError`` on damage."""
        header = self._read_exact(_HEADER.size)
        _, length = _HEADER.unpack(header)
        if length > _MAX_FRAME_BYTES:
            raise FrameError(f"frame length {length} exceeds the sanity bound")
        payload = self._read_exact(length)
        return decode_frame(header, payload)

    def _read_exact(self, n: int) -> bytes:
        deadline = time.monotonic() + _SERVER_IO_DEADLINE
        chunks: list[bytes] = []
        remaining = n
        while remaining > 0:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise EOFError("peer stalled mid-frame")
            self._sock.settimeout(budget)
            chunk = self._sock.recv(min(remaining, _CHUNK))
            if not chunk:
                raise EOFError("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def send(self, message: object) -> None:
        self._sock.settimeout(_SERVER_IO_DEADLINE)
        self._sock.sendall(encode_frame(message))

    def send_bytes(self, payload: bytes) -> None:
        """Frame raw payload bytes (the truncated-pickle corrupt path)."""
        self._sock.settimeout(_SERVER_IO_DEADLINE)
        self._sock.sendall(frame_bytes(payload))

    def send_corrupt(self, message: object) -> None:
        """Ship a frame that fails the receiver's checksum gate."""
        self._sock.settimeout(_SERVER_IO_DEADLINE)
        self._sock.sendall(corrupt_frame(message))

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self._sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._sock.close()
