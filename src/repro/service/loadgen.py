"""Open-loop load generator: Poisson arrivals, tail-latency accounting.

Closed-loop benchmarks (issue a query, wait, issue the next) hide the
very thing a tail-latency study cares about: when the server stalls —
a worker crash mid-failover, a GC pause, a slow link — a closed loop
simply stops offering load, so the stall never shows up in the
percentiles (*coordinated omission*).  This generator is open-loop:
request arrival times are drawn up front from a Poisson process at the
target ``rate`` and each request's latency is measured from its
**scheduled arrival**, not from when a worker thread got around to
sending it.  A stalled server therefore accrues queueing delay into
every request scheduled during the stall, which is exactly the p99
blip the failover drills bound.

:func:`run_loadgen` drives an :class:`repro.api.Index` (local pool or
TCP-connected shard servers alike — it only uses the public query
surface) and returns a JSON-safe document::

    {
      "schema": "repro-loadgen/1",
      "rate": 200.0, "duration": 5.0, "seed": 0, "mode": "radius",
      "allow_partial": false,
      "requests": 1000, "failures": 0, "degraded": 0,
      "achieved_rate": 199.3,
      "latency": {"p50_ms": ..., "p95_ms": ..., "p99_ms": ..., "max_ms": ...},
      "timeline": [{"second": 0, "count": 201, "failures": 0, "max_ms": ...}, ...],
      "samples": [[arrival_seconds, latency_ms], ...]
    }

``timeline`` buckets per wall-clock second make a mid-run fault
visible as a localised latency spike; ``samples`` carries every
(arrival, latency) pair so downstream analysis can recompute any
quantile (the CLI strips it unless asked, it dominates the file size).

Everything is seeded: the arrival schedule and the query vectors come
from one ``default_rng(seed)``, so two runs against the same index
offer byte-identical workloads.
"""

from __future__ import annotations

import threading
import time
from typing import Any

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["run_loadgen"]

#: Latency recorded for a request that raised instead of answering —
#: the failure still consumed its scheduled slot, so it stays in the
#: timeline (but not in the latency percentiles, which describe
#: *answered* requests).
_FAILURE_SENTINEL = -1.0


def _quantile_ms(latencies: np.ndarray, q: float) -> float:
    return float(np.quantile(latencies, q) * 1e3)


def run_loadgen(
    index: Any,
    *,
    rate: float,
    duration: float,
    seed: int = 0,
    mode: str = "radius",
    k: int = 10,
    radius: float | None = None,
    allow_partial: bool = False,
    concurrency: int = 8,
) -> dict[str, Any]:
    """Offer ``rate`` req/s of single-query load for ``duration`` seconds.

    ``mode="radius"`` issues rNNR queries (``radius=None`` uses the
    index's spec default), ``mode="topk"`` issues exact top-``k``
    queries.  ``allow_partial`` opts every request into degraded
    answers — with it, a request that lost a whole replica set still
    *answers* (and counts under ``"degraded"``); without it, such
    requests raise and count under ``"failures"``.

    ``concurrency`` worker threads share the arrival schedule; each
    claims the next arrival index, sleeps until its scheduled time and
    issues the query.  If all workers are busy when an arrival comes
    due, the request starts late and its measured latency includes the
    wait — by design (see the module docstring on coordinated
    omission).  Size ``concurrency`` so that
    ``rate * typical_latency < concurrency`` or the generator itself
    becomes the bottleneck.
    """
    from repro.api.spec import QuerySpec

    if rate <= 0:
        raise ValueError(f"rate must be > 0 requests/second, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0 seconds, got {duration}")
    if mode not in ("radius", "topk"):
        raise ValueError(f'mode must be "radius" or "topk", got {mode!r}')
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")

    rng = ensure_rng(seed)
    # Draw inter-arrival gaps until the schedule covers the duration;
    # the expected count is rate*duration, the margin covers the draw's
    # variance without a resample loop.
    margin = int(rate * duration * 1.5) + 64
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=margin))
    arrivals = arrivals[arrivals < duration]
    queries = rng.standard_normal(size=(arrivals.size, index.dim))

    latencies = np.zeros(arrivals.size, dtype=np.float64)
    degraded_flags = np.zeros(arrivals.size, dtype=bool)
    next_index = 0
    claim_lock = threading.Lock()
    start = time.perf_counter()

    def _drive() -> None:
        nonlocal next_index
        while True:
            with claim_lock:
                i = next_index
                if i >= arrivals.size:
                    return
                next_index = i + 1
            delay = start + arrivals[i] - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            spec = QuerySpec(
                queries[i],
                radius=radius if mode == "radius" else None,
                k=k if mode == "topk" else None,
                allow_partial=allow_partial,
            )
            try:
                result = index.query(spec)
            except Exception:
                latencies[i] = _FAILURE_SENTINEL
            else:
                # Open-loop latency: completion minus *scheduled* arrival.
                latencies[i] = time.perf_counter() - (start + arrivals[i])
                degraded_flags[i] = bool(getattr(result, "degraded", False))

    threads = [
        threading.Thread(target=_drive, name=f"repro-loadgen-{t}", daemon=True)
        for t in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    failed = latencies == _FAILURE_SENTINEL
    answered = latencies[~failed]
    latency_doc = (
        {
            "p50_ms": _quantile_ms(answered, 0.50),
            "p95_ms": _quantile_ms(answered, 0.95),
            "p99_ms": _quantile_ms(answered, 0.99),
            "max_ms": float(answered.max() * 1e3),
        }
        if answered.size
        else {"p50_ms": None, "p95_ms": None, "p99_ms": None, "max_ms": None}
    )

    timeline = []
    seconds = np.floor(arrivals).astype(np.int64)
    for second in range(int(np.ceil(duration))):
        in_bucket = seconds == second
        if not in_bucket.any():
            timeline.append(
                {"second": second, "count": 0, "failures": 0, "max_ms": None}
            )
            continue
        bucket_failed = int((in_bucket & failed).sum())
        bucket_answered = latencies[in_bucket & ~failed]
        timeline.append(
            {
                "second": second,
                "count": int(in_bucket.sum()),
                "failures": bucket_failed,
                "max_ms": float(bucket_answered.max() * 1e3)
                if bucket_answered.size
                else None,
            }
        )

    return {
        "schema": "repro-loadgen/1",
        "rate": float(rate),
        "duration": float(duration),
        "seed": int(seed),
        "mode": mode,
        "allow_partial": bool(allow_partial),
        "concurrency": int(concurrency),
        "requests": int(arrivals.size),
        "failures": int(failed.sum()),
        "degraded": int(degraded_flags.sum()),
        "achieved_rate": float(arrivals.size / elapsed) if elapsed else None,
        "latency": latency_doc,
        "timeline": timeline,
        "samples": [
            [float(a), None if f else float(lat * 1e3)]
            for a, lat, f in zip(arrivals, latencies, failed)
        ],
    }
