"""Replicated multi-process serving: frozen shards behind a transport tier.

The thread fan-out of :class:`~repro.service.sharded.ShardedHybridIndex`
tops out on one core: per-shard dedup/merge work is GIL-bound Python.
This module cashes in the frozen CSR persistence design instead — each
shard of a saved frozen index is a directory of plain ``.npy`` files
reopened with ``np.load(mmap_mode="r")`` — so ``K`` worker *endpoints*
can each open their assigned shards zero-copy from the shared page
cache, with no pickling of index state and no per-worker build cost.

:class:`WorkerPool` serves a saved artifact (the layout written by
:meth:`repro.api.Index.save`) over a set of endpoints, distributes
query batches through :class:`~repro.service.transport.ShardTransport`
channels, and merges per-shard answers with the exact semantics of the
thread path (shared :func:`~repro.service.sharded.merge_radius_results`
/ :func:`~repro.core.linear_scan.exact_topk_results` kernels), so
``execution="processes"`` answers are **bit-identical** to
``execution="threads"``.  The public surface mirrors
``ShardedHybridIndex`` — ``query`` / ``query_batch`` / ``query_topk`` /
``query_topk_batch`` / ``insert`` / ``shard_query_batch`` /
``merge_radius`` / ``map_shards`` — so :class:`repro.api.Index`,
:class:`~repro.service.service.QueryService` and the stream protocol
work unchanged on top.

Transports and replica sets
---------------------------
Each worker *slot* ``w`` owns shards ``w, w + W, w + 2W, ...`` and is
backed by one or more replica endpoints:

* the default carrier spawns ``replicas`` local worker processes per
  slot behind duplex pipes (:class:`~repro.service.transport.PipeTransport`),
  each mmap'ing the same frozen artifact;
* with ``endpoints=[...]`` the slots connect to standalone shard
  servers (:class:`~repro.service.shard_server.ShardServer`,
  ``repro.cli shard-serve``) over checksummed TCP frames
  (:class:`~repro.service.transport.TcpTransport`) — same wire tuples,
  same deadlines, shards on other hosts.

Reads rotate round-robin across a slot's healthy replicas and *fail
over* within the retry budget: a classified failure (``crash`` /
``timeout`` / ``corrupt`` / ``disconnect``) marks that endpoint down
with a jittered reconnect backoff and the next attempt goes straight to
a surviving replica — no sleep, so a single replica loss costs one
round trip, not a backoff window.  Inserts are broadcast to every
replica of the owning slot; the per-shard ``seq`` stamp makes delivery
idempotent (see :mod:`repro.service.shard_server`) and the replay log
re-converges a replica that was down when the insert happened.

Operational contract:

* **startup is O(mmap)** — workers reopen saved arrays, never rebuild
  or rehash; the pool is ready once every endpoint acks its shards;
* **inserts** route to the owning slot's overflow side-table (the
  frozen layout's insert path, background re-freeze included); the
  parent logs them per slot so a respawn or reconnect can replay;
* **every blocking transport read carries a deadline** (see
  :class:`~repro.faults.FaultTolerancePolicy`): an endpoint that
  crashes, hangs, disconnects, drops a reply or ships a corrupt payload
  is detected within ``recv_deadline``, torn down, revived from the
  artifact (respawn for pipes, reconnect for TCP — insert log replayed
  either way), and the request retried under a bounded
  exponential-backoff schedule with deterministic jitter;
* **per-endpoint circuit breakers** open after ``breaker_threshold``
  consecutive exhausted-retry failures, fail that endpoint fast during
  ``breaker_cooldown``, then admit one half-open probe;
* **partial results are opt-in**: ``query_batch(...,
  allow_partial=True)`` answers from the live shards and tags the
  result ``degraded=True`` with the missing shard ids — a slot degrades
  only when *every* replica is gone; without it, an unrecoverable slot
  raises :class:`~repro.exceptions.ShardUnavailableError` and
  successful answers stay bit-identical to the fault-free run;
* **fault drills are deterministic and opt-in**: an installed
  :class:`~repro.faults.FaultPlan` is consulted by each worker via two
  ``if fault is not None`` branches; with no plan the request path is
  byte-identical to the unhardened one;
* **shutdown** is explicit (:meth:`WorkerPool.close`) and idempotent;
  spawned workers are daemonic so an abandoned pool cannot outlive the
  parent (remote shard servers, by design, do outlive their clients).
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace as _dc_replace

import numpy as np

from repro.core.cost_model import CostModel
from repro.core.linear_scan import exact_topk_results
from repro.core.results import QueryResult
from repro.distances import get_metric
from repro.exceptions import (
    ConfigurationError,
    CorruptArtifactError,
    DeadlineExceededError,
    ShardUnavailableError,
)
from repro.faults import FaultTolerancePolicy
from repro.observability import StageTrace, stage_timer
from repro.service.shard_server import (
    _pack_result,  # noqa: F401  (re-exported for historical importers)
    _payload_nbytes,
    _shard_dir,
    _unpack_result,
)
from repro.service.sharded import default_fanout_width, merge_radius_results
from repro.service.transport import PipeTransport, ShardTransport, TcpTransport
from repro.utils.fsio import write_json_atomic
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["WorkerPool", "WorkerError"]


class WorkerError(RuntimeError):
    """An operation failed inside a worker process (the worker survives)."""


class _TransportFailure(Exception):
    """One transport attempt failed; ``cause`` labels why.

    Internal to the retry loop — callers of :meth:`WorkerPool._request`
    only ever see :class:`WorkerError` (application errors) or
    :class:`~repro.exceptions.ShardUnavailableError` (exhausted
    recovery).  ``cause`` is one of ``"crash"`` (EOF / broken pipe),
    ``"timeout"`` (deadline expired: hang or dropped reply),
    ``"corrupt"`` (reply failed checksum or deserialisation) or
    ``"disconnect"`` (a socket peer closed the connection — the
    endpoint is retried after reconnect, not declared dead).
    """

    def __init__(self, cause: str, detail: str) -> None:
        super().__init__(detail)
        self.cause = cause


class _CircuitBreaker:
    """Per-endpoint failure gate; accessed only under that endpoint's lock.

    Counts consecutive *final* failures (retry budget exhausted, not
    individual attempts).  At ``threshold`` the breaker opens: requests
    fail fast without burning deadlines.  After ``cooldown`` seconds one
    half-open probe is admitted — success closes the breaker, failure
    re-opens it for another cooldown.
    """

    def __init__(self, threshold: int, cooldown: float) -> None:
        self._threshold = threshold
        self._cooldown = cooldown
        self._failures = 0
        self._opened_at: float | None = None

    @property
    def is_open(self) -> bool:
        return self._opened_at is not None

    def allow(self) -> bool:
        """Whether a request may proceed (True while closed or probing)."""
        if self._opened_at is None:
            return True
        return time.monotonic() - self._opened_at >= self._cooldown

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> bool:
        """Count a final failure; True when this call *opened* the breaker."""
        self._failures += 1
        if self._opened_at is not None:
            # A failed half-open probe re-opens for another cooldown.
            self._opened_at = time.monotonic()
            return False
        if self._failures >= self._threshold:
            self._opened_at = time.monotonic()
            return True
        return False


class _Endpoint:
    """One replica's connection slot: transport plus health bookkeeping.

    ``lock`` serialises all use of the transport (the same discipline
    the per-worker pipe lock enforced pre-replicas); the other fields
    are written under it and read optimistically by
    :meth:`WorkerPool._select_replica`, which re-validates under the
    lock before acting.  ``ops`` counts requests *sent* over this
    slot's lifetime — the ``start`` a reconnect hands the fault plan so
    ``scope="lifetime"`` specs survive respawns.
    """

    __slots__ = (
        "lock",
        "breaker",
        "transport",
        "down_cause",
        "retry_at",
        "consecutive",
        "ops",
        "poisoned",
    )

    def __init__(self, threshold: int, cooldown: float) -> None:
        self.lock = threading.Lock()
        self.breaker = _CircuitBreaker(threshold, cooldown)
        self.transport: ShardTransport | None = None
        self.down_cause: str | None = None
        self.retry_at = 0.0
        self.consecutive = 0
        self.ops = 0
        self.poisoned = False


def _empty_result(radius: float) -> QueryResult:
    """The substitute answer for a shard whose worker is unavailable."""
    return QueryResult(
        ids=np.empty(0, dtype=np.int64),
        distances=np.empty(0, dtype=np.float64),
        radius=radius,
    )


def _worker_main(conn, worker: int, path: str, shard_ids: list[int],
                 spec_doc: dict, alpha: float, beta: float,
                 fault_plan, replica: int = 0, fault_start: int = 0) -> None:
    """Worker process entry point: open shards via mmap, answer ops.

    Must stay a module-level function so the ``spawn`` start method can
    import it; with ``fork`` it reuses the parent's loaded modules and
    the open is dominated by ``np.load(mmap_mode="r")`` calls.  The
    serving loop itself lives in :mod:`repro.service.shard_server` so
    the standalone TCP host runs byte-identical op handling.

    ``fault_plan`` is the opt-in chaos hook (:mod:`repro.faults`);
    ``replica`` and ``fault_start`` thread this endpoint's identity and
    lifetime op count into the plan so replica-pinned and
    ``scope="lifetime"`` specs resolve correctly across respawns.
    """
    from repro.service.shard_server import open_shard_state, serve_connection

    try:
        state = open_shard_state(path, shard_ids, spec_doc, alpha, beta)
        injector = (
            fault_plan.for_worker(worker, replica=replica, start=fault_start)
            if fault_plan
            else None
        )
        conn.send(("ready", state.sizes()))
    except BaseException as exc:
        with contextlib.suppress(OSError):
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        return
    serve_connection(conn, state, injector)


class WorkerPool:
    """``K`` frozen shards served by replicated worker endpoints.

    Parameters
    ----------
    path:
        A saved index directory (:meth:`repro.api.Index.save`) whose
        shards use the frozen layout — the artifact the workers mmap.
        With remote ``endpoints`` the parent still reads the metadata
        and id maps from it (shared filesystem or a copied artifact).
    num_workers:
        Pool width; defaults to ``min(num_shards, os.cpu_count())``.
        Worker slot ``w`` owns shards ``w, w + W, w + 2W, ...``.  With
        ``endpoints`` the width is the number of endpoint groups.
    owns_path:
        When True the artifact directory is deleted on :meth:`close`
        (used for the transient artifact ``Index.build`` writes when a
        spec asks for ``execution="processes"``).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (instant worker start, inherited imports) and falls back to
        ``spawn`` where fork is unavailable.
    policy:
        The :class:`~repro.faults.FaultTolerancePolicy` governing recv
        deadlines, the retry/backoff schedule, heartbeat cadence and
        circuit-breaker thresholds; defaults are production-lenient.
    fault_plan:
        An optional deterministic :class:`~repro.faults.FaultPlan`
        shipped to every spawned worker — chaos drills only; ``None``
        (the default) keeps workers on the production path.  Rejected
        with remote ``endpoints`` (install the plan on the servers).
    replicas:
        Endpoints per worker slot (default: the spec's ``replicas``).
        Each replica of slot ``w`` serves the same shards; reads rotate
        across them and fail over, inserts reach all of them.
    endpoints:
        Remote shard servers instead of spawned processes: one group
        per worker slot, each group a ``"host:port,host:port"`` string
        (or list) naming that slot's replicas.  Every server in group
        ``w`` must serve (at least) slot ``w``'s shards.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import Index, IndexSpec, QuerySpec
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(600, 12))
    >>> spec = IndexSpec(metric="l2", radius=1.0, num_tables=6,
    ...                  num_shards=3, layout="frozen",
    ...                  execution="processes", seed=1)
    >>> index = Index.build(points, spec)  # doctest: +SKIP
    >>> int(index.query(QuerySpec(points[17])).ids[0])  # doctest: +SKIP
    17
    """

    kind = "processes"

    def __init__(
        self,
        path: str,
        num_workers: int | None = None,
        owns_path: bool = False,
        start_method: str | None = None,
        policy: FaultTolerancePolicy | None = None,
        fault_plan=None,
        replicas: int | None = None,
        endpoints=None,
    ) -> None:
        from repro.api.persist import _GIDS_FILE, _META_FILE, _read_meta
        from repro.api.spec import IndexSpec

        meta_path = os.path.join(path, _META_FILE)
        if not os.path.exists(meta_path):
            raise ConfigurationError(
                f"no saved index at {path!r} (missing {_META_FILE})"
            )
        meta = _read_meta(meta_path)
        if meta.get("layout", "dict") != "frozen":
            raise ConfigurationError(
                "the process pool serves frozen-layout artifacts only "
                f"(saved layout: {meta.get('layout')!r}); rebuild with "
                'layout="frozen"'
            )
        self.path = path
        self._owns_path = owns_path
        self.policy = policy if policy is not None else FaultTolerancePolicy()
        self._fault_plan = fault_plan
        self.spec = IndexSpec.from_dict(meta["spec"])
        self.metric_name = self.spec.metric
        self.metric = get_metric(self.metric_name)
        self.radius = float(self.spec.radius)
        self.cost_model = CostModel(
            alpha=float(meta["cost_model"]["alpha"]),
            beta=float(meta["cost_model"]["beta"]),
        )
        self.num_shards = int(meta["num_shards"])
        self._dim = int(meta["dim"])
        gids_path = os.path.join(path, _GIDS_FILE)
        if self.num_shards > 1:
            try:
                with np.load(gids_path, allow_pickle=False) as archive:
                    self._shard_gids = [
                        np.asarray(archive[f"gids_{s:03d}"], dtype=np.int64)
                        for s in range(self.num_shards)
                    ]
            except Exception as exc:
                raise CorruptArtifactError(
                    f"shard id map {gids_path!r} is unreadable ({exc}); "
                    "the artifact is truncated or corrupt"
                ) from exc
        else:
            self._shard_gids = [np.arange(int(meta["n"]), dtype=np.int64)]
        self._next_shard = int(meta.get("next_shard", 0)) % self.num_shards
        if endpoints is not None:
            if fault_plan is not None:
                raise ConfigurationError(
                    "fault_plan cannot be shipped to remote endpoints; "
                    "install the plan on the shard servers instead"
                )
            groups = [self._parse_endpoint_group(g) for g in endpoints]
            if not groups:
                raise ConfigurationError(
                    "endpoints must name at least one HOST:PORT group"
                )
            if len(groups) > self.num_shards:
                raise ConfigurationError(
                    f"{len(groups)} endpoint groups exceed the artifact's "
                    f"{self.num_shards} shards"
                )
            if num_workers is not None and num_workers != len(groups):
                raise ConfigurationError(
                    f"num_workers={num_workers} conflicts with "
                    f"{len(groups)} endpoint groups"
                )
            self._endpoints_cfg: list[list[tuple[str, int]]] | None = groups
            self.num_workers = len(groups)
            self.replicas = max(len(group) for group in groups)
        else:
            self._endpoints_cfg = None
            if replicas is None:
                replicas = getattr(self.spec, "replicas", 1)
            self.replicas = check_positive_int(replicas, "replicas")
            if num_workers is None:
                num_workers = default_fanout_width(self.num_shards)
            self.num_workers = min(
                check_positive_int(num_workers, "num_workers"), self.num_shards
            )
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._closed = False
        #: replica endpoints per worker slot; each _Endpoint carries its
        #: own lock, breaker and transport (see _Endpoint).
        self._eps: list[list[_Endpoint]] = [
            [
                _Endpoint(
                    self.policy.breaker_threshold, self.policy.breaker_cooldown
                )
                for _ in range(
                    len(self._endpoints_cfg[w])
                    if self._endpoints_cfg is not None
                    else self.replicas
                )
            ]
            for w in range(self.num_workers)
        ]
        #: parent-side transport + failure counters (lifetime of the
        #: pool), all guarded by ``_counter_lock``: payload bytes,
        #: respawns (total and by cause), deadline hits, request
        #: retries, replica failovers, breaker-open transitions — plus
        #: the per-slot read rotation cursors.
        self._counter_lock = threading.Lock()
        self.bytes_shipped = 0
        self.respawns = 0
        self.worker_timeouts = 0
        self.worker_retries = 0
        self.breaker_opens = 0
        self.replica_failovers = 0
        self.respawns_by_cause: dict[str, int] = {}
        self._rr = [0] * self.num_workers
        #: deterministic jitter stream for retry backoff (seeded so two
        #: runs of the same fault drill sleep identically).
        self._jitter_rng = np.random.default_rng(self.policy.jitter_seed)
        #: per-slot replay log of (shard, points, seq) inserts, in
        #: order — the only state a revived endpoint cannot recover
        #: from disk.  Guarded by ``_route_lock`` together with the
        #: routing state (``_shard_gids``, ``_next_shard``,
        #: ``_insert_seq``): a query thread can trigger a respawn —
        #: which replays this log — while an insert commit is appending
        #: to it.  Lock order is endpoint lock -> route lock, never the
        #: reverse.
        self._route_lock = threading.Lock()
        self._insert_log: list[list] = [[] for _ in range(self.num_workers)]
        self._insert_seq = [0] * self.num_shards
        self._fanout = ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="repro-pool"
        )
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None
        try:
            for w in range(self.num_workers):
                for r in range(len(self._eps[w])):
                    self._open_endpoint(w, r)
        except BaseException:
            self.close()
            raise
        if self.policy.heartbeat_interval > 0:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-heartbeat",
                daemon=True,
            )
            self._hb_thread.start()

    # ------------------------------------------------------------------
    # Endpoint management
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_endpoint_group(group) -> list[tuple[str, int]]:
        """One slot's replica addresses from ``"host:port,..."`` or a list."""
        if isinstance(group, str):
            entries: list = [e.strip() for e in group.split(",") if e.strip()]
        else:
            entries = list(group)
        parsed: list[tuple[str, int]] = []
        for entry in entries:
            if isinstance(entry, str):
                host, _, port = entry.rpartition(":")
                if not host or not port.isdigit():
                    raise ConfigurationError(
                        f"endpoint {entry!r} is not HOST:PORT"
                    )
                parsed.append((host, int(port)))
            else:
                host, port = entry
                parsed.append((str(host), int(port)))
        if not parsed:
            raise ConfigurationError(
                "an endpoint group must name at least one HOST:PORT"
            )
        return parsed

    def worker_shards(self, worker: int) -> list[int]:
        """Shard ids owned by slot ``worker`` (round-robin assignment)."""
        return list(range(worker, self.num_shards, self.num_workers))

    def _owner(self, shard: int) -> int:
        return shard % self.num_workers

    def _open_endpoint(self, worker: int, replica: int) -> None:
        """First open of one endpoint (init path: no respawn accounting)."""
        ep = self._eps[worker][replica]
        if self._endpoints_cfg is not None:
            transport, _sizes = self._connect_tcp(worker, replica)
        else:
            transport, _sizes = self._spawn_pipe(worker, replica)
        ep.transport = transport

    def _spawn_pipe(self, worker: int, replica: int):
        """Start one local worker process; returns (transport, sizes)."""
        ep = self._eps[worker][replica]
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                worker,
                self.path,
                self.worker_shards(worker),
                self.spec.to_dict(),
                self.cost_model.alpha,
                self.cost_model.beta,
                self._fault_plan,
                replica,
                ep.ops,
            ),
            name=f"repro-worker-{worker}-{replica}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        transport = PipeTransport(
            process, parent_conn, endpoint=f"pid {process.pid}"
        )
        sizes = self._await_ready(transport, worker)
        return transport, sizes

    def _connect_tcp(self, worker: int, replica: int):
        """Connect to one remote shard server; returns (transport, sizes)."""
        host, port = self._endpoints_cfg[worker][replica]
        try:
            transport = TcpTransport(
                host,
                port,
                connect_timeout=self.policy.startup_deadline,
                send_deadline=max(
                    self.policy.recv_deadline, self.policy.startup_deadline
                ),
            )
        except OSError as exc:
            raise WorkerError(
                f"shard server {host}:{port} refused the connection: {exc}"
            ) from exc
        sizes = self._await_ready(transport, worker)
        owned = set(self.worker_shards(worker))
        if not owned <= set(sizes):
            transport.kill()
            raise WorkerError(
                f"shard server {host}:{port} serves shards {sorted(sizes)} "
                f"but slot {worker} needs {sorted(owned)}"
            )
        return transport, sizes

    def _await_ready(self, transport: ShardTransport, worker: int) -> dict:
        """Wait for the ``("ready", sizes)`` handshake both carriers send."""
        try:
            ack = transport.recv_within(
                self.policy.startup_deadline, f"worker {worker} startup ack"
            )
        except DeadlineExceededError as exc:
            transport.kill()
            raise WorkerError(
                f"worker {worker} failed to start within "
                f"{self.policy.startup_deadline}s"
            ) from exc
        except Exception as exc:
            transport.kill()
            raise WorkerError(f"worker {worker} died during startup") from exc
        if not (isinstance(ack, tuple) and ack and ack[0] == "ready"):
            transport.kill()
            detail = ack[1] if isinstance(ack, tuple) and len(ack) > 1 else ack
            if isinstance(detail, str) and "CorruptArtifactError" in detail:
                # The worker's open failed on a torn artifact: surface
                # the typed error the in-process open path raises.
                raise CorruptArtifactError(
                    f"worker {worker} failed to open shards: {detail}"
                )
            raise WorkerError(f"worker {worker} failed to open shards: {ack!r}")
        return dict(ack[1])

    def _respawn_locked(
        self, worker: int, replica: int, cause: str = "crash"
    ) -> None:
        """Revive one endpoint and replay its slot's insert log (lock held).

        ``cause`` labels the event in :attr:`respawns_by_cause`
        (``crash`` / ``timeout`` / ``corrupt`` / ``disconnect`` /
        ``heartbeat`` / ``rollback`` / ``reconnect``).  Killing the old
        transport first is what recovers a *hung* endpoint: the stale
        channel is closed, so a late reply can never desynchronise a
        future request.  Pipes respawn a fresh process; TCP endpoints
        reconnect to a server whose state survived — the seq-stamped
        replay makes both converge, and a TCP endpoint is additionally
        checked against the parent's committed shard sizes (a restarted
        server that lost inserts must not serve short answers).
        """
        ep = self._eps[worker][replica]
        if ep.poisoned:
            raise WorkerError(
                f"worker {worker}[{replica}] is quarantined after a failed "
                "insert rollback; restart the endpoint to clear it"
            )
        if ep.transport is not None:
            with contextlib.suppress(Exception):
                ep.transport.kill()
            ep.transport = None
        if self._endpoints_cfg is not None:
            transport, _sizes = self._connect_tcp(worker, replica)
        else:
            transport, _sizes = self._spawn_pipe(worker, replica)
        ep.transport = transport
        ep.down_cause = None
        ep.retry_at = 0.0
        ep.consecutive = 0
        with self._counter_lock:
            self.respawns += 1
            self.respawns_by_cause[cause] = (
                self.respawns_by_cause.get(cause, 0) + 1
            )
        # Snapshot under the route lock: this slot's log cannot grow
        # mid-replay (appends hold the endpoint lock, which this
        # method's caller already holds), but ``save_shards`` may swap
        # the whole log list out from another thread.
        with self._route_lock:
            pending = list(self._insert_log[worker])
        try:
            for shard, points, seq in pending:
                reply = self._roundtrip_locked(
                    worker,
                    replica,
                    ("insert", shard, points, seq),
                    self.policy.startup_deadline,
                )
                if isinstance(reply, tuple) and reply and reply[0] == "error":
                    raise WorkerError(
                        f"worker {worker} failed to replay inserts: {reply[1]}"
                    )
            if self._endpoints_cfg is not None:
                self._verify_tcp_state_locked(worker, replica)
        except BaseException:
            with contextlib.suppress(Exception):
                transport.kill()
            ep.transport = None
            ep.down_cause = cause
            raise

    def _verify_tcp_state_locked(self, worker: int, replica: int) -> None:
        """A reconnected server must cover everything the parent committed.

        ``>=`` rather than ``==``: an in-flight insert may have reached
        the server before the parent committed its id maps, and the
        seq-dedup makes that benign — but a *smaller* size means the
        server restarted from the stale artifact and would serve short
        answers for ids the parent already handed out.
        """
        reply = self._roundtrip_locked(
            worker, replica, ("shard_sizes",), self.policy.recv_deadline
        )
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise WorkerError(
                f"worker {worker} shard_sizes failed: {reply[1]}"
            )
        with self._route_lock:
            committed = {
                s: int(self._shard_gids[s].size)
                for s in self.worker_shards(worker)
            }
        for s, size in committed.items():
            if int(reply.get(s, -1)) < size:
                raise WorkerError(
                    f"shard server for worker {worker} is serving a stale "
                    f"artifact: shard {s} has {reply.get(s)} points but the "
                    f"parent committed {size}"
                )

    def _roundtrip_locked(
        self, worker: int, replica: int, message, deadline: float
    ):
        """One send/recv on an endpoint's transport; failures classified.

        Raises :class:`_TransportFailure` with the carrier's cause
        vocabulary (see :mod:`repro.service.transport`); a deadline
        expiry is always ``timeout``.  The endpoint's lifetime op count
        advances on every successful non-stop send — the best-effort
        mirror of the op indices the peer's fault injector counts, used
        as ``start`` when a revived endpoint re-installs the plan.
        """
        ep = self._eps[worker][replica]
        transport = ep.transport
        who = f"worker {worker}[{replica}] ({transport.endpoint})"
        try:
            transport.send(message)
        except Exception as exc:
            raise _TransportFailure(
                transport.classify_send_error(exc),
                f"send to {who} failed: {exc}",
            ) from exc
        if message[0] != "stop":
            ep.ops += 1
        try:
            return transport.recv_within(deadline, f"{who} reply")
        except DeadlineExceededError as exc:
            raise _TransportFailure("timeout", str(exc)) from exc
        except Exception as exc:
            raise _TransportFailure(
                transport.classify_recv_error(exc),
                f"{who} reply stream broke: {exc!r}",
            ) from exc

    def _mark_down_locked(self, worker: int, replica: int, cause: str) -> None:
        """Tear an endpoint down and schedule its reconnect (lock held).

        With replicas the reconnect backs off exponentially in
        ``consecutive`` (jittered from the shared deterministic stream)
        so a dead server is not hammered while its peers serve; a lone
        endpoint stays immediately retriable — the request loop's own
        backoff sleep paces it, preserving the single-replica schedule.
        """
        ep = self._eps[worker][replica]
        if ep.transport is not None:
            with contextlib.suppress(Exception):
                ep.transport.kill()
            ep.transport = None
        ep.down_cause = cause
        ep.consecutive += 1
        if len(self._eps[worker]) > 1:
            with self._counter_lock:
                jitter = float(self._jitter_rng.random())
            ep.retry_at = time.monotonic() + self.policy.backoff_seconds(
                min(ep.consecutive, 16), jitter
            )
        else:
            ep.retry_at = 0.0

    def _select_replica(self, worker: int, rotation: int) -> int | None:
        """The next admissible replica for a read, or None if all are out.

        Rotates from ``rotation`` so concurrent readers spread across
        healthy replicas; skips quarantined endpoints, open breakers,
        and endpoints still inside their reconnect backoff.  Reads are
        optimistic (no locks) — the request loop re-validates under the
        endpoint lock before acting.
        """
        replicas = self._eps[worker]
        now = time.monotonic()
        for k in range(len(replicas)):
            r = (rotation + k) % len(replicas)
            ep = replicas[r]
            if ep.poisoned:
                continue
            if not ep.breaker.allow():
                continue
            if (
                ep.transport is None
                and ep.down_cause is not None
                and now < ep.retry_at
            ):
                continue
            return r
        return None

    def _op_deadline(self, message) -> float:
        """The recv deadline for one op; slow ops borrow the startup budget."""
        if message[0] in ("insert", "save_shard"):
            return max(self.policy.recv_deadline, self.policy.startup_deadline)
        return self.policy.recv_deadline

    def _request(self, worker: int, message, log_entry=None):
        """One round trip under deadlines, retries, failover and breakers.

        Attempt flow: pick the next admissible replica (rotating), and
        under its lock revive it if it is down (respawn or reconnect,
        insert log replayed), run the round trip, and on a classified
        failure mark it down.  With one replica the next attempt sleeps
        the jittered exponential backoff first — the original
        single-endpoint schedule; with several, the next attempt *fails
        over* immediately to a surviving replica and the broken one
        heals in the background of its backoff window.  Exhausting the
        ``1 + max_retries`` budget records a breaker failure on the
        last-tried endpoint and raises
        :class:`~repro.exceptions.ShardUnavailableError` naming the
        slot's shards; when no replica is admissible at all the raise
        is immediate (breaker-open fail-fast).  A worker-side
        ``("error", ...)`` reply is an *application* error — the
        transport is healthy, so it counts as breaker success and
        raises :class:`WorkerError` with no retry.

        ``log_entry`` (an insert-log record) is appended to the slot's
        replay log atomically with a successful reply, *inside* the
        endpoint lock: a crash-triggered replay in another thread holds
        the same lock, so a batch can never fall between an endpoint's
        ack and its log commit (the replay would miss it) or be both
        replayed and re-sent (the seq stamp would dedup it anyway, but
        the log must stay an exact history).
        """
        if self._closed:
            raise ConfigurationError("the worker pool has been closed")
        policy = self.policy
        deadline = self._op_deadline(message)
        attempts = 1 + policy.max_retries
        replicas = self._eps[worker]
        num_replicas = len(replicas)
        with self._counter_lock:
            rotation = self._rr[worker]
            self._rr[worker] += 1
        reply = None
        last: _TransportFailure | None = None
        last_r = 0
        for attempt in range(1, attempts + 1):
            r = self._select_replica(worker, rotation + attempt - 1)
            if r is None:
                if last is None:
                    if any(not ep.breaker.allow() for ep in replicas):
                        raise ShardUnavailableError(
                            f"worker {worker} circuit breaker is open "
                            f"(cooldown {policy.breaker_cooldown}s)",
                            shards=tuple(self.worker_shards(worker)),
                        )
                    raise ShardUnavailableError(
                        f"worker {worker} has no admissible replica "
                        "(every endpoint is down or backing off)",
                        shards=tuple(self.worker_shards(worker)),
                    )
                break
            ep = replicas[r]
            last_r = r
            failure: _TransportFailure | None = None
            with ep.lock:
                if not ep.breaker.allow():
                    failure = _TransportFailure(
                        "crash",
                        f"worker {worker}[{r}] breaker opened concurrently",
                    )
                elif ep.transport is None:
                    try:
                        self._respawn_locked(
                            worker, r, cause=ep.down_cause or "reconnect"
                        )
                    except Exception as exc:
                        failure = _TransportFailure(
                            "crash", f"worker {worker} respawn failed: {exc}"
                        )
                if failure is None:
                    try:
                        reply = self._roundtrip_locked(
                            worker, r, message, deadline
                        )
                    except _TransportFailure as exc:
                        failure = exc
                        self._mark_down_locked(worker, r, exc.cause)
                if failure is None:
                    ep.breaker.record_success()
                    last = None
                    if log_entry is not None and not (
                        isinstance(reply, tuple)
                        and reply
                        and reply[0] == "error"
                    ):
                        with self._route_lock:
                            self._insert_log[worker].append(log_entry)
            if failure is None:
                break
            last = failure
            with self._counter_lock:
                if failure.cause == "timeout":
                    self.worker_timeouts += 1
                if attempt < attempts:
                    self.worker_retries += 1
                    if num_replicas > 1:
                        self.replica_failovers += 1
            if attempt < attempts and num_replicas == 1:
                with self._counter_lock:
                    jitter = float(self._jitter_rng.random())
                time.sleep(policy.backoff_seconds(attempt, jitter))
        if last is not None:
            ep = replicas[last_r]
            with ep.lock:
                if ep.breaker.record_failure():
                    with self._counter_lock:
                        self.breaker_opens += 1
                if self._endpoints_cfg is None and num_replicas == 1:
                    # Best-effort respawn so the *next* request (or the
                    # breaker's half-open probe) meets a fresh worker
                    # and a clean pipe rather than a stale, late reply.
                    with contextlib.suppress(Exception):
                        self._respawn_locked(worker, last_r, cause=last.cause)
            raise ShardUnavailableError(
                f"worker {worker} unavailable after {attempts} "
                f"attempt(s) ({last.cause}): {last}",
                shards=tuple(self.worker_shards(worker)),
            )
        nbytes = _payload_nbytes(message) + _payload_nbytes(reply)
        if nbytes:
            with self._counter_lock:
                self.bytes_shipped += nbytes
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise WorkerError(reply[1])
        return reply

    def _broadcast_insert(self, worker: int, entry) -> None:
        """Deliver one logged insert to every replica of its owning slot.

        Best-effort by design: the insert already succeeded on one
        replica (and is in the replay log), the seq stamp makes
        duplicate delivery a set-lookup no-op, and a replica that is
        down right now converges through the log replay when it
        reconnects.  A replica that fails mid-broadcast is simply
        marked down — never the caller's problem.
        """
        replicas = self._eps[worker]
        if len(replicas) == 1:
            return
        shard, points, seq = entry
        message = ("insert", shard, points, seq)
        deadline = self._op_deadline(message)
        for r, ep in enumerate(replicas):
            with ep.lock:
                if ep.transport is None or ep.poisoned:
                    continue
                try:
                    reply = self._roundtrip_locked(worker, r, message, deadline)
                except _TransportFailure as exc:
                    self._mark_down_locked(worker, r, exc.cause)
                    continue
                if isinstance(reply, tuple) and reply and reply[0] == "error":
                    self._mark_down_locked(worker, r, "corrupt")

    def _rollback_endpoints(self, worker: int) -> None:
        """Restore (pipes) or quarantine (TCP) a slot after a failed insert.

        A respawned pipe worker reloads the artifact and replays the
        (already popped) log, restoring the exact pre-batch state.  A
        remote server cannot be rolled back — it may have durably
        applied part of the batch — so its endpoints are *poisoned*:
        excluded from selection and revival until a fresh pool (or an
        operator restart of the server) re-anchors state.
        """
        for r, ep in enumerate(self._eps[worker]):
            with ep.lock:
                if self._endpoints_cfg is None:
                    with contextlib.suppress(Exception):
                        self._respawn_locked(worker, r, cause="rollback")
                else:
                    if ep.transport is not None:
                        with contextlib.suppress(Exception):
                            ep.transport.kill()
                        ep.transport = None
                    ep.poisoned = True
                    ep.down_cause = "rollback"

    def _heartbeat_loop(self) -> None:
        """Background liveness probe: ping idle endpoints, revive the dead.

        Runs only when ``policy.heartbeat_interval > 0``.  An endpoint
        whose lock is busy is serving a request — the request path's
        own deadline covers it — so the probe only pings endpoints it
        can lock without waiting, keeping the heartbeat invisible to
        foreground latency.  Downed replicas past their backoff are
        revived here too, so a replica set heals without waiting for a
        read to rotate onto the dead endpoint.
        """
        while not self._hb_stop.wait(self.policy.heartbeat_interval):
            for w in range(self.num_workers):
                for r, ep in enumerate(self._eps[w]):
                    if self._closed or self._hb_stop.is_set():
                        return
                    if not ep.lock.acquire(blocking=False):
                        continue
                    try:
                        if self._closed:
                            return
                        if ep.poisoned:
                            continue
                        if ep.transport is None:
                            if (
                                ep.down_cause is not None
                                and time.monotonic() >= ep.retry_at
                            ):
                                with contextlib.suppress(Exception):
                                    self._respawn_locked(
                                        w, r, cause=ep.down_cause
                                    )
                            continue
                        try:
                            pong = self._roundtrip_locked(
                                w, r, ("ping",), self.policy.recv_deadline
                            )
                            if pong != "pong":
                                raise WorkerError(
                                    f"worker {w} heartbeat answered {pong!r}"
                                )
                        except Exception as exc:
                            if (
                                isinstance(exc, _TransportFailure)
                                and exc.cause == "timeout"
                            ):
                                with self._counter_lock:
                                    self.worker_timeouts += 1
                            with contextlib.suppress(Exception):
                                self._respawn_locked(w, r, cause="heartbeat")
                    finally:
                        ep.lock.release()

    def _fan_out(self, messages: dict[int, tuple]) -> dict[int, object]:
        """Send one message per worker concurrently; collect the replies."""
        futures = {
            w: self._fanout.submit(self._request, w, message)
            for w, message in messages.items()
        }
        return {w: future.result() for w, future in futures.items()}

    def _fan_out_collect(self, messages: dict[int, tuple]):
        """Fan out, harvesting per-worker failures instead of raising.

        Returns ``(replies, failures)``: replies from the workers that
        answered, and the :class:`~repro.exceptions.ShardUnavailableError`
        / :class:`WorkerError` each failed worker raised.  Anything else
        (e.g. a closed pool) propagates — those are caller bugs, not
        degradable shard outages.
        """
        futures = {
            w: self._fanout.submit(self._request, w, message)
            for w, message in messages.items()
        }
        replies: dict[int, object] = {}
        failures: dict[int, Exception] = {}
        for w, future in futures.items():
            try:
                replies[w] = future.result()
            except (ShardUnavailableError, WorkerError) as exc:
                failures[w] = exc
        return replies, failures

    def worker_pids(self) -> list[int]:
        """Live spawned-worker process ids (diagnostics and crash tests).

        Flat across slots then replicas; remote TCP endpoints have no
        local process and contribute nothing.
        """
        pids = []
        for row in self._eps:
            for ep in row:
                transport = ep.transport
                if (
                    isinstance(transport, PipeTransport)
                    and transport.process is not None
                ):
                    pids.append(transport.process.pid)
        return pids

    def worker_stats(self) -> list[dict]:
        """Every *reachable* slot's stats snapshot, via the ``stats`` op.

        Each entry is an endpoint-local ``ServiceStats.as_dict()``
        document — latency histogram, counters, bytes shipped over
        *its* wire, and live gauges over its frozen shards (overflow
        size, re-freeze counters).  One replica answers per slot (the
        read rotation picks it); a respawned endpoint starts from
        zeroed counters, and the parent's :attr:`respawns` records the
        event.  Slots that are down are skipped — telemetry must not
        take the service with it.  Merge with ``ServiceStats.from_dict``
        + ``merge`` for the pool-wide aggregate (exact: shared histogram
        buckets).
        """
        replies, _failures = self._fan_out_collect(
            {w: ("stats",) for w in range(self.num_workers)}
        )
        return [replies[w] for w in sorted(replies)]

    def reset_worker_stats(self) -> None:
        """Zero every reachable endpoint's worker-local stats.

        Broadcast of the ``reset`` op; unreachable slots are skipped
        (they restart with zeroed counters anyway when respawned).  Used
        by the facade's ``reset_stats`` so a ``stats_snapshot`` right
        after a reset reads all-zero ``workers.*`` documents too.
        """
        self._fan_out_collect(
            {w: ("reset",) for w in range(self.num_workers)}
        )

    def failure_counters(self) -> dict:
        """Snapshot of the parent-side failure telemetry (thread-safe)."""
        with self._counter_lock:
            return {
                "worker_timeouts": self.worker_timeouts,
                "worker_retries": self.worker_retries,
                "breaker_opens": self.breaker_opens,
                "replica_failovers": self.replica_failovers,
                "respawns_by_cause": dict(self.respawns_by_cause),
            }

    def open_breaker_count(self) -> int:
        """How many endpoints' circuit breakers are currently open.

        Read without the endpoint locks: a racing transition flips a
        single reference, so the count is only ever one step stale —
        fine for a gauge, and it keeps metrics scrapes from queueing
        behind a hung request's deadline.
        """
        return sum(
            1 for row in self._eps for ep in row if ep.breaker.is_open
        )

    def close(self) -> None:
        """Stop every endpoint and release the artifact (idempotent).

        Spawned workers get a clean ``stop`` then a join-or-terminate;
        TCP endpoints get the same ``stop`` (ending the server's
        session, not the server) and a socket close.
        """
        if self._closed:
            return
        self._closed = True
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=5.0)
        for row in self._eps:
            for ep in row:
                if ep.transport is None:
                    continue
                with contextlib.suppress(Exception):
                    ep.transport.send(("stop",))
        for row in self._eps:
            for ep in row:
                if ep.transport is None:
                    continue
                with contextlib.suppress(Exception):
                    ep.transport.shutdown()
                ep.transport = None
        self._fanout.shutdown(wait=True)
        if self._owns_path:
            shutil.rmtree(self.path, ignore_errors=True)

    # ------------------------------------------------------------------
    # Introspection (ShardedHybridIndex-compatible)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total number of served points across all shards."""
        return sum(gids.size for gids in self._shard_gids)

    @property
    def dim(self) -> int:
        """Dimensionality of the served points."""
        return self._dim

    def shard_sizes(self) -> list[int]:
        """Current per-shard point counts (from the parent's id maps)."""
        return [int(gids.size) for gids in self._shard_gids]

    def _resolve_radius(self, radius: float | None) -> float:
        return self.radius if radius is None else float(radius)

    def peek_assignment(self, count: int) -> np.ndarray:
        """Shard ids the next ``count`` inserted points would be routed to."""
        return (self._next_shard + np.arange(count)) % self.num_shards

    # ------------------------------------------------------------------
    # Radius queries
    # ------------------------------------------------------------------
    def query(self, query: np.ndarray, radius: float | None = None) -> QueryResult:
        """Answer one rNNR query across all shards."""
        return self.query_batch(np.asarray(query)[None, :], radius)[0]

    def query_batch(
        self,
        queries: np.ndarray,
        radius: float | None = None,
        trace: StageTrace | None = None,
        allow_partial: bool = False,
        adaptive=None,
    ) -> list[QueryResult]:
        """Answer a ``(q, d)`` matrix: one round trip per worker slot.

        Each endpoint runs the identical per-shard
        :class:`~repro.service.batch.BatchQueryEngine` batch the thread
        path runs, so the merged answers are bit-identical to
        :meth:`ShardedHybridIndex.query_batch` — over pipes and TCP
        alike, replicated or not.

        With ``allow_partial=True`` an unrecoverable slot (every
        replica's retries exhausted or breaker open) degrades the
        answer instead of failing it: its shards contribute empty
        candidate sets and every returned result is tagged
        ``degraded=True`` with the sorted missing shard ids.  Without
        it — the default — such a slot raises
        :class:`~repro.exceptions.ShardUnavailableError`, so a
        *successful* return is always bit-identical to a fault-free
        run.  If no slot answers at all, the error is raised even
        under ``allow_partial``.

        With ``trace``, the fan-out round trip is attributed to the
        ``ipc`` stage — which *includes* the workers' compute, since the
        parent only observes the blocking request/reply — and the
        parent-side merge to ``merge``.  Per-stage attribution inside
        the workers lives in their own stats (:meth:`worker_stats`).
        """
        radius = self._resolve_radius(radius)
        queries = check_matrix(queries, dim=self.dim, name="queries")
        # The adaptive policy ships as its JSON document, appended as an
        # optional 5th element so the wire shape stays backward
        # compatible (older endpoints see the familiar 4-tuple).
        if adaptive is not None:
            message_tail = (radius, adaptive.to_dict())
        else:
            message_tail = (radius,)
        with stage_timer(trace, "ipc"):
            replies, failures = self._fan_out_collect(
                {
                    w: ("radius", self.worker_shards(w), queries, *message_tail)
                    for w in range(self.num_workers)
                }
            )
        if failures and (not allow_partial or not replies):
            raise failures[min(failures)]
        with stage_timer(trace, "merge"):
            per_shard = {}
            for reply in replies.values():
                per_shard.update(reply)
            missing = tuple(
                sorted(s for w in failures for s in self.worker_shards(w))
            )
            results = []
            for qi in range(queries.shape[0]):
                shard_results = [
                    _unpack_result(per_shard[s][qi], radius)
                    if s in per_shard
                    else _empty_result(radius)
                    for s in range(self.num_shards)
                ]
                merged = merge_radius_results(
                    self._shard_gids, shard_results, radius
                )
                if missing:
                    merged = _dc_replace(
                        merged, degraded=True, missing_shards=missing
                    )
                results.append(merged)
            return results

    def shard_query_batch(
        self, shard: int, queries: np.ndarray, radius: float, adaptive=None
    ) -> list[QueryResult]:
        """One shard's *local* radius answers (ids are shard-local)."""
        message = ("radius", [shard], queries, radius)
        if adaptive is not None:
            message = message + (adaptive.to_dict(),)
        reply = self._request(self._owner(shard), message)
        return [_unpack_result(packed, radius) for packed in reply[shard]]

    def merge_radius(
        self, shard_results: list[QueryResult], radius: float
    ) -> QueryResult:
        """Merge one query's per-shard local results into the global answer."""
        return merge_radius_results(self._shard_gids, shard_results, radius)

    def map_shards(self, work) -> list:
        """Run ``work(s)`` for every shard on the parent fan-out threads."""
        futures = [
            self._fanout.submit(work, s) for s in range(self.num_shards)
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Top-k queries (exact)
    # ------------------------------------------------------------------
    def query_topk(self, query: np.ndarray, k: int) -> QueryResult:
        """Exact k-nearest-neighbors of one query."""
        return self.query_topk_batch(np.asarray(query)[None, :], k)[0]

    def query_topk_batch(
        self,
        queries: np.ndarray,
        k: int,
        trace: StageTrace | None = None,
        allow_partial: bool = False,
    ) -> list[QueryResult]:
        """Exact k-NN: workers compute local distance blocks, parent selects.

        Same merge kernel as the thread path
        (:func:`~repro.core.linear_scan.exact_topk_results`), so the
        deterministic ``(distance, id)`` tie-breaking is shared.

        Under ``allow_partial=True`` a dead slot shrinks the candidate
        pool to the reachable shards: results carry up to
        ``min(k, reachable points)`` neighbors and are tagged
        ``degraded=True`` with the missing shard ids.  Without it, a
        dead slot raises
        :class:`~repro.exceptions.ShardUnavailableError`.
        """
        k = check_positive_int(k, "k")
        queries = check_matrix(queries, dim=self.dim, name="queries")
        if k > self.n:
            raise ConfigurationError(
                f"k ({k}) must not exceed the index size ({self.n})"
            )
        with stage_timer(trace, "ipc"):
            replies, failures = self._fan_out_collect(
                {
                    w: ("topk_block", self.worker_shards(w), queries)
                    for w in range(self.num_workers)
                }
            )
        if failures and (not allow_partial or not replies):
            raise failures[min(failures)]
        with stage_timer(trace, "merge"):
            blocks_by_shard = {}
            for reply in replies.values():
                blocks_by_shard.update(reply)
            if not failures:
                blocks = [blocks_by_shard[s] for s in range(self.num_shards)]
                return exact_topk_results(
                    np.concatenate(self._shard_gids), blocks, k, self.n
                )
            available = sorted(blocks_by_shard)
            missing = tuple(
                s for s in range(self.num_shards) if s not in blocks_by_shard
            )
            gids = np.concatenate([self._shard_gids[s] for s in available])
            n_avail = int(gids.size)
            if n_avail == 0:
                raise failures[min(failures)]
            blocks = [blocks_by_shard[s] for s in available]
            results = exact_topk_results(
                gids, blocks, min(k, n_avail), n_avail
            )
            return [
                _dc_replace(result, degraded=True, missing_shards=missing)
                for result in results
            ]

    # ------------------------------------------------------------------
    # Incremental inserts
    # ------------------------------------------------------------------
    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Insert points round-robin; each lands in its owner's overflow.

        The receiving endpoint's frozen shard absorbs the points through
        its overflow side-table (background re-freeze included); the
        parent stamps each routed batch with a per-shard ``seq``,
        extends the global id maps and logs the batches so a revived
        endpoint can be replayed into the same state.  With replicas
        the batch is then *broadcast* to the slot's other endpoints —
        best-effort, idempotent under the seq stamp, with the replay
        log converging any replica that was down.

        The replay log grows with every insert until a save makes the
        artifact canonical again — insert-heavy long-running deployments
        should call :meth:`checkpoint` (or ``save`` to the source path)
        periodically to re-anchor recovery on disk and drop the log.

        If any shard's primary delivery fails, the batch is rolled
        back: its log entries are popped and every touched slot is
        restored (pipes respawn to the exact pre-batch state; remote
        TCP endpoints, which may have durably applied part of the
        batch, are quarantined instead — see :meth:`_rollback_endpoints`).
        """
        new_points = check_matrix(new_points, dim=self.dim, name="new_points")
        m = new_points.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        start = self.n
        global_ids = np.arange(start, start + m, dtype=np.int64)
        assignment = (self._next_shard + np.arange(m)) % self.num_shards
        routed_by_shard = []
        for s in range(self.num_shards):
            rows = np.flatnonzero(assignment == s)
            if rows.size:
                routed_by_shard.append(
                    (s, rows, np.ascontiguousarray(new_points[rows]))
                )
        # Phase 1: apply on the owning endpoints.  Each shard's
        # replay-log entry commits atomically with the primary ack (see
        # ``_request``) — a concurrent crash-triggered replay can never
        # observe an acked-but-unlogged batch.
        touched: list[int] = []
        appended: list[int] = []
        try:
            for s, _, routed in routed_by_shard:
                worker = self._owner(s)
                touched.append(worker)
                with self._route_lock:
                    seq = self._insert_seq[s]
                    self._insert_seq[s] += 1
                entry = (s, routed, seq)
                self._request(worker, ("insert", s, routed, seq), log_entry=entry)
                appended.append(worker)
                self._broadcast_insert(worker, entry)
        except BaseException:
            with self._route_lock:
                for worker in reversed(appended):
                    self._insert_log[worker].pop()
            for worker in dict.fromkeys(touched):
                self._rollback_endpoints(worker)
            raise
        # Phase 2: all owners accepted — commit the routing state.
        with self._route_lock:
            for s, rows, routed in routed_by_shard:
                self._shard_gids[s] = np.concatenate(
                    [self._shard_gids[s], global_ids[rows]]
                )
            self._next_shard = (self._next_shard + m) % self.num_shards
        return global_ids

    # ------------------------------------------------------------------
    # Persistence support
    # ------------------------------------------------------------------
    def save_shards(self, path: str) -> None:
        """Have each owner write its shards under ``path`` (frozen dirs).

        Workers compact their overflow first (``save_frozen_index``
        does), so the artifact is pure CSR arrays; the caller writes the
        metadata and id maps around them.  One serving replica per
        shard performs the save — replicas hold converged state, so any
        of them may.  Note the multi-host caveat in
        :mod:`repro.service.shard_server`: through a TCP endpoint the
        write lands on the *server's* filesystem.
        """
        for w in range(self.num_workers):
            for s in self.worker_shards(w):
                self._request(
                    w, ("save_shard", s, _shard_dir(path, s))
                )
        if os.path.realpath(path) == os.path.realpath(self.path):
            # Saving in place makes the artifact canonical: a respawned
            # worker now loads the inserts from disk, so replaying the
            # log on top of it would double them.
            with self._route_lock:
                self._insert_log = [[] for _ in range(self.num_workers)]

    def checkpoint(self) -> None:
        """Fold all inserts into the source artifact and drop the replay log.

        Each worker compacts and re-saves its shards in place, making
        the on-disk artifact the recovery point again; without periodic
        checkpoints an insert-heavy parent accumulates a copy of every
        routed batch for crash replay.  Queries keep working throughout
        (shard saves stage a complete sibling directory and atomically
        swap it in under the live mmaps; the metadata rewrite is a
        fsync'd rename too).
        """
        from repro.api.persist import _META_FILE, _read_meta, write_shard_gids

        self.save_shards(self.path)
        if self.num_shards > 1:
            write_shard_gids(self.path, self._shard_gids)
        # Keep the metadata honest: n grows with inserts, and a
        # reopened single-shard pool derives its id map from it.
        meta_path = os.path.join(self.path, _META_FILE)
        meta = _read_meta(meta_path)
        meta["n"] = self.n
        meta["next_shard"] = int(self._next_shard)
        write_json_atomic(meta_path, meta)

    def __repr__(self) -> str:
        return (
            f"WorkerPool(W={self.num_workers}, R={self.replicas}, "
            f"K={self.num_shards}, n={self.n}, dim={self.dim}, "
            f"metric={self.metric_name}, r={self.radius})"
        )
