"""Zero-copy multi-process serving: mmap'd frozen shards behind a pool.

The thread fan-out of :class:`~repro.service.sharded.ShardedHybridIndex`
tops out on one core: per-shard dedup/merge work is GIL-bound Python.
This module cashes in the frozen CSR persistence design instead — each
shard of a saved frozen index is a directory of plain ``.npy`` files
reopened with ``np.load(mmap_mode="r")`` — so ``K`` worker *processes*
can each open their assigned shards zero-copy from the shared page
cache, with no pickling of index state and no per-worker build cost.

:class:`WorkerPool` spawns the persistent workers over a saved artifact
(the layout written by :meth:`repro.api.Index.save`), distributes query
batches over duplex pipes, and merges per-shard answers with the exact
semantics of the thread path (shared
:func:`~repro.service.sharded.merge_radius_results` /
:func:`~repro.core.linear_scan.exact_topk_results` kernels), so
``execution="processes"`` answers are **bit-identical** to
``execution="threads"``.  The public surface mirrors
``ShardedHybridIndex`` — ``query`` / ``query_batch`` / ``query_topk`` /
``query_topk_batch`` / ``insert`` / ``shard_query_batch`` /
``merge_radius`` / ``map_shards`` — so :class:`repro.api.Index`,
:class:`~repro.service.service.QueryService` and the stream protocol
work unchanged on top.

Operational contract:

* **startup is O(mmap)** — workers reopen saved arrays, never rebuild
  or rehash; the pool is ready once every worker acks its shards;
* **inserts** route to the owning worker's overflow side-table (the
  frozen layout's insert path, background re-freeze included); the
  parent logs them per worker so a respawn can replay;
* **every blocking pipe read carries a deadline** (see
  :class:`~repro.faults.FaultTolerancePolicy`): a worker that crashes,
  hangs, drops a reply or ships a corrupt payload is detected within
  ``recv_deadline``, killed, respawned from the artifact with its
  insert log replayed, and the request retried under a bounded
  exponential-backoff schedule with deterministic jitter;
* **per-worker circuit breakers** open after ``breaker_threshold``
  consecutive exhausted-retry failures, fail the worker's requests fast
  during ``breaker_cooldown``, then admit one half-open probe;
* **partial results are opt-in**: ``query_batch(...,
  allow_partial=True)`` answers from the live shards and tags the
  result ``degraded=True`` with the missing shard ids; without it, an
  unrecoverable worker raises :class:`~repro.exceptions.ShardUnavailableError`
  and successful answers stay bit-identical to the fault-free run;
* **fault drills are deterministic and opt-in**: an installed
  :class:`~repro.faults.FaultPlan` is consulted by each worker via two
  ``if fault is not None`` branches; with no plan the request path is
  byte-identical to the unhardened one;
* **shutdown** is explicit (:meth:`WorkerPool.close`) and idempotent;
  workers are daemonic so an abandoned pool cannot outlive the parent.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace as _dc_replace

import numpy as np

from repro.core.cost_model import CostModel
from repro.core.linear_scan import exact_topk_results
from repro.core.results import QueryResult, QueryStats, Strategy
from repro.distances import get_metric
from repro.exceptions import (
    ConfigurationError,
    CorruptArtifactError,
    DeadlineExceededError,
    ShardUnavailableError,
)
from repro.faults import FaultTolerancePolicy, send_reply, swallow_request
from repro.observability import StageTrace, stage_timer
from repro.service.sharded import default_fanout_width, merge_radius_results
from repro.service.stats import ServiceStats
from repro.utils.fsio import write_json_atomic
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["WorkerPool", "WorkerError"]


class WorkerError(RuntimeError):
    """An operation failed inside a worker process (the worker survives)."""


class _TransportFailure(Exception):
    """One transport attempt failed; ``cause`` labels why.

    Internal to the retry loop — callers of :meth:`WorkerPool._request`
    only ever see :class:`WorkerError` (application errors) or
    :class:`~repro.exceptions.ShardUnavailableError` (exhausted
    recovery).  ``cause`` is one of ``"crash"`` (EOF / broken pipe),
    ``"timeout"`` (deadline expired: hang or dropped reply) or
    ``"corrupt"`` (reply failed to deserialise).
    """

    def __init__(self, cause: str, detail: str) -> None:
        super().__init__(detail)
        self.cause = cause


class _CircuitBreaker:
    """Per-worker failure gate; accessed only under that worker's lock.

    Counts consecutive *final* failures (retry budget exhausted, not
    individual attempts).  At ``threshold`` the breaker opens: requests
    fail fast without burning deadlines.  After ``cooldown`` seconds one
    half-open probe is admitted — success closes the breaker, failure
    re-opens it for another cooldown.
    """

    def __init__(self, threshold: int, cooldown: float) -> None:
        self._threshold = threshold
        self._cooldown = cooldown
        self._failures = 0
        self._opened_at: float | None = None

    @property
    def is_open(self) -> bool:
        return self._opened_at is not None

    def allow(self) -> bool:
        """Whether a request may proceed (True while closed or probing)."""
        if self._opened_at is None:
            return True
        return time.monotonic() - self._opened_at >= self._cooldown

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> bool:
        """Count a final failure; True when this call *opened* the breaker."""
        self._failures += 1
        if self._opened_at is not None:
            # A failed half-open probe re-opens for another cooldown.
            self._opened_at = time.monotonic()
            return False
        if self._failures >= self._threshold:
            self._opened_at = time.monotonic()
            return True
        return False


def _recv_with_deadline(conn, seconds: float, what: str):
    """A pipe ``recv`` that refuses to block past ``seconds``."""
    if not conn.poll(seconds):
        raise DeadlineExceededError(
            f"{what} exceeded its {seconds:.3f}s deadline"
        )
    return conn.recv()


def _shard_dir(path: str, shard: int) -> str:
    """Absolute shard directory, named by the one true layout source.

    The artifact layout (meta file, gids archive, shard dir scheme) is
    owned by :mod:`repro.api.persist`; imported lazily to keep this
    module free of api-layer imports at load time.
    """
    from repro.api.persist import _frozen_shard_dir

    return os.path.join(path, _frozen_shard_dir(shard))


def _pack_result(result: QueryResult):
    """QueryResult -> plain tuple (cheap to pickle across the pipe)."""
    s = result.stats
    return (
        np.asarray(result.ids),
        np.asarray(result.distances),
        (
            s.num_collisions,
            s.estimated_candidates,
            s.exact_candidates,
            s.estimated_lsh_cost,
            s.linear_cost,
            s.strategy.value,
        ),
    )


def _payload_nbytes(obj) -> int:
    """Array bytes inside a pipe message/reply (the dominant pipe cost).

    Counts every ndarray reachable through the tuples/lists/dicts the
    worker protocol ships; scalar envelope overhead is ignored — the
    counter answers "how much data crossed the pipe", not "how many
    pickle bytes".
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, tuple | list):
        return sum(_payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(value) for value in obj.values())
    return 0


def _unpack_result(packed, radius: float) -> QueryResult:
    ids, distances, (nc, est, exact, lsh_cost, lin_cost, strategy) = packed
    stats = QueryStats(
        num_collisions=int(nc),
        estimated_candidates=float(est),
        exact_candidates=int(exact),
        estimated_lsh_cost=float(lsh_cost),
        linear_cost=float(lin_cost),
        strategy=Strategy(strategy),
    )
    return QueryResult(ids=ids, distances=distances, radius=radius, stats=stats)


def _empty_result(radius: float) -> QueryResult:
    """The substitute answer for a shard whose worker is unavailable."""
    return QueryResult(
        ids=np.empty(0, dtype=np.int64),
        distances=np.empty(0, dtype=np.float64),
        radius=radius,
    )


def _worker_main(conn, worker: int, path: str, shard_ids: list[int],
                 spec_doc: dict, alpha: float, beta: float,
                 fault_plan) -> None:
    """Worker process loop: open assigned shards via mmap, answer ops.

    Must stay a module-level function so the ``spawn`` start method can
    import it; with ``fork`` it reuses the parent's loaded modules and
    the open is dominated by ``np.load(mmap_mode="r")`` calls.

    ``fault_plan`` is the opt-in chaos hook (:mod:`repro.faults`): when
    installed, each received request is matched against the worker's
    deterministic schedule and may crash / hang / delay the process or
    drop / corrupt the reply.  When ``None`` — production — the two
    fault branches below are never entered and the request path is
    byte-identical to an unhardened loop.
    """
    from repro.api.facade import _resolve_estimator
    from repro.api.spec import IndexSpec
    from repro.core.hybrid import HybridSearcher
    from repro.distances.matrix import pairwise_distances
    from repro.index.frozen import load_frozen_index, save_frozen_index
    from repro.service.batch import BatchQueryEngine

    try:
        spec = IndexSpec.from_dict(spec_doc)
        cost_model = CostModel(alpha=alpha, beta=beta)
        estimator = _resolve_estimator(spec)
        metric = get_metric(spec.metric)
        indexes = {}
        engines = {}
        for s in shard_ids:
            index = load_frozen_index(_shard_dir(path, s))
            searcher = HybridSearcher(index, cost_model, estimator=estimator)
            indexes[s] = index
            engines[s] = BatchQueryEngine(
                searcher, radius=spec.radius, dedup=spec.dedup
            )
        # Worker-local telemetry: latency histogram + counters for the
        # batches *this* worker answers, a bytes counter for its pipe
        # payloads, and live gauges over its frozen shards.  The parent
        # fetches and exactly merges these via the ``stats`` op.
        stats = ServiceStats()
        frozen = [
            ix for ix in indexes.values()
            if hasattr(ix, "overflow_count") and hasattr(ix, "refreeze_count")
        ]
        if frozen:
            stats.gauge_hooks["overflow_points"] = lambda: float(
                sum(ix.overflow_count for ix in frozen)
            )
            stats.gauge_hooks["refreeze_generations"] = lambda: float(
                sum(ix.refreeze_count for ix in frozen)
            )
            stats.gauge_hooks["refreeze_seconds_total"] = lambda: float(
                sum(ix.refreeze_seconds_total for ix in frozen)
            )
        injector = fault_plan.for_worker(worker) if fault_plan else None
        conn.send(("ready", {s: indexes[s].n for s in shard_ids}))
    except BaseException as exc:
        with contextlib.suppress(OSError):
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        return

    while True:
        # The idle wait is bounded so this loop re-checks the pipe
        # instead of blocking forever on a parent that vanished without
        # a clean ``stop`` (the poll also satisfies the
        # ``deadline-required`` lint contract for service code).
        if not conn.poll(1.0):
            continue
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "stop":
            break
        fault = injector.next_fault() if injector is not None else None
        if fault is not None and swallow_request(fault):
            continue
        try:
            if op == "radius":
                _, shards, queries, radius = message
                started = time.perf_counter()
                reply = {
                    s: [
                        _pack_result(r)
                        for r in engines[s].query_batch(queries, radius)
                    ]
                    for s in shards
                }
                # Strategy counts tally the *shard-local* dispatch
                # decisions, so with multiple owned shards they sum to
                # queries x shards, not queries_served.
                strategies: dict[str, int] = {}
                for packed_results in reply.values():
                    for packed in packed_results:
                        name = Strategy(packed[2][5]).value
                        strategies[name] = strategies.get(name, 0) + 1
                stats.record_batch(
                    queries.shape[0], time.perf_counter() - started,
                    strategies=strategies,
                )
            elif op == "topk_block":
                _, shards, queries = message
                started = time.perf_counter()
                reply = {
                    s: pairwise_distances(queries, indexes[s].points, metric)
                    for s in shards
                }
                stats.record_batch(queries.shape[0], time.perf_counter() - started)
            elif op == "insert":
                _, s, points = message
                indexes[s].insert(points)
                reply = indexes[s].n
            elif op == "save_shard":
                _, s, target = message
                save_frozen_index(indexes[s], target)
                reply = True
            elif op == "shard_sizes":
                reply = {s: indexes[s].n for s in shard_ids}
            elif op == "stats":
                reply = stats.as_dict()
            elif op == "ping":
                reply = "pong"
            else:
                reply = ("error", f"unknown worker op: {op!r}")
        except Exception as exc:
            reply = ("error", f"{type(exc).__name__}: {exc}")
        stats.bytes_shipped += _payload_nbytes(message) + _payload_nbytes(reply)
        try:
            if fault is not None:
                send_reply(conn, reply, fault)
            else:
                conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class WorkerPool:
    """``K`` frozen shards served by persistent worker processes.

    Parameters
    ----------
    path:
        A saved index directory (:meth:`repro.api.Index.save`) whose
        shards use the frozen layout — the artifact the workers mmap.
    num_workers:
        Pool width; defaults to ``min(num_shards, os.cpu_count())``.
        Worker ``w`` owns shards ``w, w + W, w + 2W, ...``.
    owns_path:
        When True the artifact directory is deleted on :meth:`close`
        (used for the transient artifact ``Index.build`` writes when a
        spec asks for ``execution="processes"``).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (instant worker start, inherited imports) and falls back to
        ``spawn`` where fork is unavailable.
    policy:
        The :class:`~repro.faults.FaultTolerancePolicy` governing recv
        deadlines, the retry/backoff schedule, heartbeat cadence and
        circuit-breaker thresholds; defaults are production-lenient.
    fault_plan:
        An optional deterministic :class:`~repro.faults.FaultPlan`
        shipped to every worker at spawn time — chaos drills only;
        ``None`` (the default) keeps workers on the production path.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import Index, IndexSpec, QuerySpec
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(600, 12))
    >>> spec = IndexSpec(metric="l2", radius=1.0, num_tables=6,
    ...                  num_shards=3, layout="frozen",
    ...                  execution="processes", seed=1)
    >>> index = Index.build(points, spec)  # doctest: +SKIP
    >>> int(index.query(QuerySpec(points[17])).ids[0])  # doctest: +SKIP
    17
    """

    kind = "processes"

    def __init__(
        self,
        path: str,
        num_workers: int | None = None,
        owns_path: bool = False,
        start_method: str | None = None,
        policy: FaultTolerancePolicy | None = None,
        fault_plan=None,
    ) -> None:
        from repro.api.persist import _GIDS_FILE, _META_FILE, _read_meta
        from repro.api.spec import IndexSpec

        meta_path = os.path.join(path, _META_FILE)
        if not os.path.exists(meta_path):
            raise ConfigurationError(
                f"no saved index at {path!r} (missing {_META_FILE})"
            )
        meta = _read_meta(meta_path)
        if meta.get("layout", "dict") != "frozen":
            raise ConfigurationError(
                "the process pool serves frozen-layout artifacts only "
                f"(saved layout: {meta.get('layout')!r}); rebuild with "
                'layout="frozen"'
            )
        self.path = path
        self._owns_path = owns_path
        self.policy = policy if policy is not None else FaultTolerancePolicy()
        self._fault_plan = fault_plan
        self.spec = IndexSpec.from_dict(meta["spec"])
        self.metric_name = self.spec.metric
        self.metric = get_metric(self.metric_name)
        self.radius = float(self.spec.radius)
        self.cost_model = CostModel(
            alpha=float(meta["cost_model"]["alpha"]),
            beta=float(meta["cost_model"]["beta"]),
        )
        self.num_shards = int(meta["num_shards"])
        self._dim = int(meta["dim"])
        gids_path = os.path.join(path, _GIDS_FILE)
        if self.num_shards > 1:
            try:
                with np.load(gids_path, allow_pickle=False) as archive:
                    self._shard_gids = [
                        np.asarray(archive[f"gids_{s:03d}"], dtype=np.int64)
                        for s in range(self.num_shards)
                    ]
            except Exception as exc:
                raise CorruptArtifactError(
                    f"shard id map {gids_path!r} is unreadable ({exc}); "
                    "the artifact is truncated or corrupt"
                ) from exc
        else:
            self._shard_gids = [np.arange(int(meta["n"]), dtype=np.int64)]
        self._next_shard = int(meta.get("next_shard", 0)) % self.num_shards
        if num_workers is None:
            num_workers = default_fanout_width(self.num_shards)
        self.num_workers = min(
            check_positive_int(num_workers, "num_workers"), self.num_shards
        )
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._closed = False
        self._workers: list = [None] * self.num_workers
        self._conns: list = [None] * self.num_workers
        self._locks = [threading.Lock() for _ in range(self.num_workers)]
        #: per-worker circuit breakers, touched only under that worker's
        #: lock (same discipline as the pipe itself).
        self._breakers = [
            _CircuitBreaker(
                self.policy.breaker_threshold, self.policy.breaker_cooldown
            )
            for _ in range(self.num_workers)
        ]
        #: parent-side transport + failure counters (lifetime of the
        #: pool), all guarded by ``_counter_lock``: payload bytes,
        #: respawns (total and by cause), deadline hits, request
        #: retries, and breaker-open transitions.
        self._counter_lock = threading.Lock()
        self.bytes_shipped = 0
        self.respawns = 0
        self.worker_timeouts = 0
        self.worker_retries = 0
        self.breaker_opens = 0
        self.respawns_by_cause: dict[str, int] = {}
        #: deterministic jitter stream for retry backoff (seeded so two
        #: runs of the same fault drill sleep identically).
        self._jitter_rng = np.random.default_rng(self.policy.jitter_seed)
        #: per-worker replay log of (shard, points) inserts, in order —
        #: the only state a respawned worker cannot recover from disk.
        #: Guarded by ``_route_lock`` together with the routing state
        #: (``_shard_gids``, ``_next_shard``): a query thread can trigger
        #: a respawn — which replays this log — while an insert commit is
        #: appending to it.  Lock order is worker lock -> route lock,
        #: never the reverse.
        self._route_lock = threading.Lock()
        self._insert_log: list[list] = [[] for _ in range(self.num_workers)]
        self._fanout = ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="repro-pool"
        )
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None
        try:
            for w in range(self.num_workers):
                self._spawn(w)
        except BaseException:
            self.close()
            raise
        if self.policy.heartbeat_interval > 0:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-heartbeat",
                daemon=True,
            )
            self._hb_thread.start()

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def worker_shards(self, worker: int) -> list[int]:
        """Shard ids owned by ``worker`` (round-robin assignment)."""
        return list(range(worker, self.num_shards, self.num_workers))

    def _owner(self, shard: int) -> int:
        return shard % self.num_workers

    def _spawn(self, worker: int) -> None:
        """Start (or restart) one worker and wait for its mmap-open ack."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                worker,
                self.path,
                self.worker_shards(worker),
                self.spec.to_dict(),
                self.cost_model.alpha,
                self.cost_model.beta,
                self._fault_plan,
            ),
            name=f"repro-worker-{worker}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            ack = _recv_with_deadline(
                parent_conn, self.policy.startup_deadline,
                f"worker {worker} startup ack",
            )
        except DeadlineExceededError as exc:
            process.terminate()
            process.join(timeout=5.0)
            parent_conn.close()
            raise WorkerError(
                f"worker {worker} failed to start within "
                f"{self.policy.startup_deadline}s"
            ) from exc
        except (EOFError, OSError) as exc:
            parent_conn.close()
            raise WorkerError(f"worker {worker} died during startup") from exc
        if not (isinstance(ack, tuple) and ack and ack[0] == "ready"):
            process.terminate()
            process.join(timeout=5.0)
            parent_conn.close()
            detail = ack[1] if isinstance(ack, tuple) and len(ack) > 1 else ack
            if isinstance(detail, str) and "CorruptArtifactError" in detail:
                # The worker's open failed on a torn artifact: surface
                # the typed error the in-process open path raises.
                raise CorruptArtifactError(
                    f"worker {worker} failed to open shards: {detail}"
                )
            raise WorkerError(f"worker {worker} failed to open shards: {ack!r}")
        self._workers[worker] = process
        self._conns[worker] = parent_conn

    def _respawn_locked(self, worker: int, cause: str = "crash") -> None:
        """Replace a dead worker and replay its insert log (lock held).

        ``cause`` labels the respawn in :attr:`respawns_by_cause`
        (``crash`` / ``timeout`` / ``corrupt`` / ``heartbeat`` /
        ``rollback``).  Killing before respawning is what recovers a
        *hung* worker: the stale pipe is closed, so a late reply from
        the old process can never desynchronise a future request.
        """
        process = self._workers[worker]
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
        conn = self._conns[worker]
        if conn is not None:
            conn.close()
        self._spawn(worker)
        with self._counter_lock:
            self.respawns += 1
            self.respawns_by_cause[cause] = (
                self.respawns_by_cause.get(cause, 0) + 1
            )
        # Snapshot under the route lock: this worker's log cannot grow
        # mid-replay (appends hold the worker lock, which this method's
        # caller already holds), but ``save_shards`` may swap the whole
        # log list out from another thread.
        with self._route_lock:
            pending = list(self._insert_log[worker])
        for shard, points in pending:
            self._conns[worker].send(("insert", shard, points))
            reply = _recv_with_deadline(
                self._conns[worker], self.policy.startup_deadline,
                f"worker {worker} insert replay",
            )
            if isinstance(reply, tuple) and reply and reply[0] == "error":
                raise WorkerError(
                    f"worker {worker} failed to replay inserts: {reply[1]}"
                )

    def _roundtrip_locked(self, worker: int, message, deadline: float):
        """One send/recv on the worker's pipe; failures are classified.

        Raises :class:`_TransportFailure` with cause ``crash`` (the
        pipe broke / the process is gone), ``timeout`` (no reply within
        ``deadline`` — a hang or a dropped reply) or ``corrupt`` (bytes
        arrived but would not deserialise — also chosen for an EOF from
        a still-live process, the signature of a truncated payload).
        """
        conn = self._conns[worker]
        try:
            conn.send(message)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise _TransportFailure(
                "crash", f"send to worker {worker} failed: {exc}"
            ) from exc
        try:
            return _recv_with_deadline(
                conn, deadline, f"worker {worker} reply"
            )
        except DeadlineExceededError as exc:
            raise _TransportFailure("timeout", str(exc)) from exc
        except (EOFError, OSError) as exc:
            process = self._workers[worker]
            alive = process is not None and process.is_alive()
            cause = "corrupt" if alive and isinstance(exc, EOFError) else "crash"
            raise _TransportFailure(
                cause, f"worker {worker} reply stream broke: {exc!r}"
            ) from exc
        except Exception as exc:
            raise _TransportFailure(
                "corrupt",
                f"worker {worker} reply failed to deserialise: {exc!r}",
            ) from exc

    def _op_deadline(self, message) -> float:
        """The recv deadline for one op; slow ops borrow the startup budget."""
        if message[0] in ("insert", "save_shard"):
            return max(self.policy.recv_deadline, self.policy.startup_deadline)
        return self.policy.recv_deadline

    def _request(self, worker: int, message, log_entry=None):
        """One pipe round trip under deadlines, bounded retries, a breaker.

        Attempt flow (all inside the worker's lock): an open breaker
        fails fast with :class:`~repro.exceptions.ShardUnavailableError`;
        otherwise up to ``1 + max_retries`` transport attempts run, each
        failure sleeping the jittered exponential backoff and then
        killing-and-respawning the worker (insert log replayed) before
        the re-send.  Exhausting the budget records a breaker failure
        and raises ``ShardUnavailableError`` naming the worker's
        shards; a worker-side ``("error", ...)`` reply is an
        *application* error — the transport is healthy, so it counts as
        breaker success and raises :class:`WorkerError` with no retry.

        ``log_entry`` (an insert-log record) is appended to the worker's
        replay log atomically with a successful reply, *inside* the
        worker lock: a crash-triggered replay in another thread holds
        the same lock, so a batch can never fall between a worker's ack
        and its log commit (the replay would miss it) or be both
        replayed and re-sent (it would be doubled).
        """
        if self._closed:
            raise ConfigurationError("the worker pool has been closed")
        policy = self.policy
        deadline = self._op_deadline(message)
        attempts = 1 + policy.max_retries
        with self._locks[worker]:
            breaker = self._breakers[worker]
            if not breaker.allow():
                raise ShardUnavailableError(
                    f"worker {worker} circuit breaker is open "
                    f"(cooldown {policy.breaker_cooldown}s)",
                    shards=tuple(self.worker_shards(worker)),
                )
            reply = None
            last: _TransportFailure | None = None
            for attempt in range(1, attempts + 1):
                try:
                    reply = self._roundtrip_locked(worker, message, deadline)
                except _TransportFailure as failure:
                    last = failure
                    with self._counter_lock:
                        if failure.cause == "timeout":
                            self.worker_timeouts += 1
                        if attempt < attempts:
                            self.worker_retries += 1
                    if attempt >= attempts:
                        break
                    with self._counter_lock:
                        jitter = float(self._jitter_rng.random())
                    time.sleep(policy.backoff_seconds(attempt, jitter))
                    try:
                        self._respawn_locked(worker, cause=failure.cause)
                    except Exception as exc:
                        last = _TransportFailure(
                            "crash", f"worker {worker} respawn failed: {exc}"
                        )
                        break
                else:
                    last = None
                    break
            if last is not None:
                if breaker.record_failure():
                    with self._counter_lock:
                        self.breaker_opens += 1
                # Best-effort respawn so the *next* request (or the
                # breaker's half-open probe) meets a fresh worker and a
                # clean pipe rather than a stale, late reply.
                with contextlib.suppress(Exception):
                    self._respawn_locked(worker, cause=last.cause)
                raise ShardUnavailableError(
                    f"worker {worker} unavailable after {attempts} "
                    f"attempt(s) ({last.cause}): {last}",
                    shards=tuple(self.worker_shards(worker)),
                )
            breaker.record_success()
            if log_entry is not None and not (
                isinstance(reply, tuple) and reply and reply[0] == "error"
            ):
                with self._route_lock:
                    self._insert_log[worker].append(log_entry)
        nbytes = _payload_nbytes(message) + _payload_nbytes(reply)
        if nbytes:
            with self._counter_lock:
                self.bytes_shipped += nbytes
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise WorkerError(reply[1])
        return reply

    def _heartbeat_loop(self) -> None:
        """Background liveness probe: ping idle workers, respawn the dead.

        Runs only when ``policy.heartbeat_interval > 0``.  A worker
        whose lock is busy is serving a request — the request path's own
        deadline covers it — so the probe only pings workers it can
        lock without waiting, keeping the heartbeat invisible to
        foreground latency.
        """
        while not self._hb_stop.wait(self.policy.heartbeat_interval):
            for w in range(self.num_workers):
                if self._closed or self._hb_stop.is_set():
                    return
                if not self._locks[w].acquire(blocking=False):
                    continue
                try:
                    if self._closed:
                        return
                    try:
                        conn = self._conns[w]
                        conn.send(("ping",))
                        reply = _recv_with_deadline(
                            conn, self.policy.recv_deadline,
                            f"worker {w} heartbeat",
                        )
                        if reply != "pong":
                            raise WorkerError(
                                f"worker {w} heartbeat answered {reply!r}"
                            )
                    except Exception as exc:
                        if isinstance(exc, DeadlineExceededError):
                            with self._counter_lock:
                                self.worker_timeouts += 1
                        with contextlib.suppress(Exception):
                            self._respawn_locked(w, cause="heartbeat")
                finally:
                    self._locks[w].release()

    def _fan_out(self, messages: dict[int, tuple]) -> dict[int, object]:
        """Send one message per worker concurrently; collect the replies."""
        futures = {
            w: self._fanout.submit(self._request, w, message)
            for w, message in messages.items()
        }
        return {w: future.result() for w, future in futures.items()}

    def _fan_out_collect(self, messages: dict[int, tuple]):
        """Fan out, harvesting per-worker failures instead of raising.

        Returns ``(replies, failures)``: replies from the workers that
        answered, and the :class:`~repro.exceptions.ShardUnavailableError`
        / :class:`WorkerError` each failed worker raised.  Anything else
        (e.g. a closed pool) propagates — those are caller bugs, not
        degradable shard outages.
        """
        futures = {
            w: self._fanout.submit(self._request, w, message)
            for w, message in messages.items()
        }
        replies: dict[int, object] = {}
        failures: dict[int, Exception] = {}
        for w, future in futures.items():
            try:
                replies[w] = future.result()
            except (ShardUnavailableError, WorkerError) as exc:
                failures[w] = exc
        return replies, failures

    def worker_pids(self) -> list[int]:
        """The live worker process ids (diagnostics and crash tests)."""
        return [p.pid for p in self._workers if p is not None]

    def worker_stats(self) -> list[dict]:
        """Every *reachable* worker's stats snapshot, via the ``stats`` op.

        Each entry is a worker-local ``ServiceStats.as_dict()`` document
        — latency histogram, counters, bytes shipped over *its* pipe,
        and live gauges over its frozen shards (overflow size,
        re-freeze counters).  A worker respawned after a crash starts
        from zeroed counters; the parent's :attr:`respawns` records the
        event.  Workers that are down are skipped — telemetry must not
        take the service with it.  Merge with ``ServiceStats.from_dict``
        + ``merge`` for the pool-wide aggregate (exact: shared histogram
        buckets).
        """
        replies, _failures = self._fan_out_collect(
            {w: ("stats",) for w in range(self.num_workers)}
        )
        return [replies[w] for w in sorted(replies)]

    def failure_counters(self) -> dict:
        """Snapshot of the parent-side failure telemetry (thread-safe)."""
        with self._counter_lock:
            return {
                "worker_timeouts": self.worker_timeouts,
                "worker_retries": self.worker_retries,
                "breaker_opens": self.breaker_opens,
                "respawns_by_cause": dict(self.respawns_by_cause),
            }

    def open_breaker_count(self) -> int:
        """How many workers' circuit breakers are currently open.

        Read without the worker locks: a racing transition flips a
        single reference, so the count is only ever one step stale —
        fine for a gauge, and it keeps metrics scrapes from queueing
        behind a hung request's deadline.
        """
        return sum(1 for breaker in self._breakers if breaker.is_open)

    def close(self) -> None:
        """Stop every worker and release the artifact (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=5.0)
        for w, conn in enumerate(self._conns):
            if conn is None:
                continue
            with contextlib.suppress(BrokenPipeError, OSError):
                conn.send(("stop",))
        for process in self._workers:
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            if conn is not None:
                conn.close()
        self._fanout.shutdown(wait=True)
        if self._owns_path:
            shutil.rmtree(self.path, ignore_errors=True)

    # ------------------------------------------------------------------
    # Introspection (ShardedHybridIndex-compatible)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total number of served points across all shards."""
        return sum(gids.size for gids in self._shard_gids)

    @property
    def dim(self) -> int:
        """Dimensionality of the served points."""
        return self._dim

    def shard_sizes(self) -> list[int]:
        """Current per-shard point counts (from the parent's id maps)."""
        return [int(gids.size) for gids in self._shard_gids]

    def _resolve_radius(self, radius: float | None) -> float:
        return self.radius if radius is None else float(radius)

    def peek_assignment(self, count: int) -> np.ndarray:
        """Shard ids the next ``count`` inserted points would be routed to."""
        return (self._next_shard + np.arange(count)) % self.num_shards

    # ------------------------------------------------------------------
    # Radius queries
    # ------------------------------------------------------------------
    def query(self, query: np.ndarray, radius: float | None = None) -> QueryResult:
        """Answer one rNNR query across all shards."""
        return self.query_batch(np.asarray(query)[None, :], radius)[0]

    def query_batch(
        self,
        queries: np.ndarray,
        radius: float | None = None,
        trace: StageTrace | None = None,
        allow_partial: bool = False,
    ) -> list[QueryResult]:
        """Answer a ``(q, d)`` matrix: one pipe round trip per worker.

        Each worker runs the identical per-shard
        :class:`~repro.service.batch.BatchQueryEngine` batch the thread
        path runs, so the merged answers are bit-identical to
        :meth:`ShardedHybridIndex.query_batch`.

        With ``allow_partial=True`` an unrecoverable worker (retries
        exhausted or breaker open) degrades the answer instead of
        failing it: its shards contribute empty candidate sets and every
        returned result is tagged ``degraded=True`` with the sorted
        missing shard ids.  Without it — the default — such a worker
        raises :class:`~repro.exceptions.ShardUnavailableError`, so a
        *successful* return is always bit-identical to a fault-free
        run.  If no worker answers at all, the error is raised even
        under ``allow_partial``.

        With ``trace``, the fan-out round trip is attributed to the
        ``ipc`` stage — which *includes* the workers' compute, since the
        parent only observes the blocking request/reply — and the
        parent-side merge to ``merge``.  Per-stage attribution inside
        the workers lives in their own stats (:meth:`worker_stats`).
        """
        radius = self._resolve_radius(radius)
        queries = check_matrix(queries, dim=self.dim, name="queries")
        with stage_timer(trace, "ipc"):
            replies, failures = self._fan_out_collect(
                {
                    w: ("radius", self.worker_shards(w), queries, radius)
                    for w in range(self.num_workers)
                }
            )
        if failures and (not allow_partial or not replies):
            raise failures[min(failures)]
        with stage_timer(trace, "merge"):
            per_shard = {}
            for reply in replies.values():
                per_shard.update(reply)
            missing = tuple(
                sorted(s for w in failures for s in self.worker_shards(w))
            )
            results = []
            for qi in range(queries.shape[0]):
                shard_results = [
                    _unpack_result(per_shard[s][qi], radius)
                    if s in per_shard
                    else _empty_result(radius)
                    for s in range(self.num_shards)
                ]
                merged = merge_radius_results(
                    self._shard_gids, shard_results, radius
                )
                if missing:
                    merged = _dc_replace(
                        merged, degraded=True, missing_shards=missing
                    )
                results.append(merged)
            return results

    def shard_query_batch(
        self, shard: int, queries: np.ndarray, radius: float
    ) -> list[QueryResult]:
        """One shard's *local* radius answers (ids are shard-local)."""
        reply = self._request(
            self._owner(shard), ("radius", [shard], queries, radius)
        )
        return [_unpack_result(packed, radius) for packed in reply[shard]]

    def merge_radius(
        self, shard_results: list[QueryResult], radius: float
    ) -> QueryResult:
        """Merge one query's per-shard local results into the global answer."""
        return merge_radius_results(self._shard_gids, shard_results, radius)

    def map_shards(self, work) -> list:
        """Run ``work(s)`` for every shard on the parent fan-out threads."""
        futures = [
            self._fanout.submit(work, s) for s in range(self.num_shards)
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Top-k queries (exact)
    # ------------------------------------------------------------------
    def query_topk(self, query: np.ndarray, k: int) -> QueryResult:
        """Exact k-nearest-neighbors of one query."""
        return self.query_topk_batch(np.asarray(query)[None, :], k)[0]

    def query_topk_batch(
        self,
        queries: np.ndarray,
        k: int,
        trace: StageTrace | None = None,
        allow_partial: bool = False,
    ) -> list[QueryResult]:
        """Exact k-NN: workers compute local distance blocks, parent selects.

        Same merge kernel as the thread path
        (:func:`~repro.core.linear_scan.exact_topk_results`), so the
        deterministic ``(distance, id)`` tie-breaking is shared.

        Under ``allow_partial=True`` a dead worker shrinks the candidate
        pool to the reachable shards: results carry up to
        ``min(k, reachable points)`` neighbors and are tagged
        ``degraded=True`` with the missing shard ids.  Without it, a
        dead worker raises
        :class:`~repro.exceptions.ShardUnavailableError`.
        """
        k = check_positive_int(k, "k")
        queries = check_matrix(queries, dim=self.dim, name="queries")
        if k > self.n:
            raise ConfigurationError(
                f"k ({k}) must not exceed the index size ({self.n})"
            )
        with stage_timer(trace, "ipc"):
            replies, failures = self._fan_out_collect(
                {
                    w: ("topk_block", self.worker_shards(w), queries)
                    for w in range(self.num_workers)
                }
            )
        if failures and (not allow_partial or not replies):
            raise failures[min(failures)]
        with stage_timer(trace, "merge"):
            blocks_by_shard = {}
            for reply in replies.values():
                blocks_by_shard.update(reply)
            if not failures:
                blocks = [blocks_by_shard[s] for s in range(self.num_shards)]
                return exact_topk_results(
                    np.concatenate(self._shard_gids), blocks, k, self.n
                )
            available = sorted(blocks_by_shard)
            missing = tuple(
                s for s in range(self.num_shards) if s not in blocks_by_shard
            )
            gids = np.concatenate([self._shard_gids[s] for s in available])
            n_avail = int(gids.size)
            if n_avail == 0:
                raise failures[min(failures)]
            blocks = [blocks_by_shard[s] for s in available]
            results = exact_topk_results(
                gids, blocks, min(k, n_avail), n_avail
            )
            return [
                _dc_replace(result, degraded=True, missing_shards=missing)
                for result in results
            ]

    # ------------------------------------------------------------------
    # Incremental inserts
    # ------------------------------------------------------------------
    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Insert points round-robin; each lands in its owner's overflow.

        The receiving worker's frozen shard absorbs the points through
        its overflow side-table (background re-freeze included); the
        parent extends the global id maps and logs the routed batches so
        a crashed worker can be replayed into the same state.

        The replay log grows with every insert until a save makes the
        artifact canonical again — insert-heavy long-running deployments
        should call :meth:`checkpoint` (or ``save`` to the source path)
        periodically to re-anchor recovery on disk and drop the log.
        """
        new_points = check_matrix(new_points, dim=self.dim, name="new_points")
        m = new_points.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        start = self.n
        global_ids = np.arange(start, start + m, dtype=np.int64)
        assignment = (self._next_shard + np.arange(m)) % self.num_shards
        routed_by_shard = []
        for s in range(self.num_shards):
            rows = np.flatnonzero(assignment == s)
            if rows.size:
                routed_by_shard.append((s, rows, np.ascontiguousarray(new_points[rows])))
        # Phase 1: apply on the workers.  Each shard's replay-log entry
        # commits atomically with that worker's ack (see ``_request``) —
        # a concurrent crash-triggered replay can never observe an
        # acked-but-unlogged batch.  If any shard fails, pop this
        # batch's entries and respawn every worker touched: the respawn
        # restores the exact pre-batch state and a caller retry cannot
        # double-insert.
        touched: list[int] = []
        appended: list[int] = []
        try:
            for s, _, routed in routed_by_shard:
                worker = self._owner(s)
                touched.append(worker)
                self._request(worker, ("insert", s, routed), log_entry=(s, routed))
                appended.append(worker)
        except BaseException:
            with self._route_lock:
                for worker in reversed(appended):
                    self._insert_log[worker].pop()
            for worker in dict.fromkeys(touched):
                with self._locks[worker]:
                    with contextlib.suppress(Exception):
                        self._respawn_locked(worker, cause="rollback")
            raise
        # Phase 2: all workers accepted — commit the routing state.
        with self._route_lock:
            for s, rows, routed in routed_by_shard:
                self._shard_gids[s] = np.concatenate(
                    [self._shard_gids[s], global_ids[rows]]
                )
            self._next_shard = (self._next_shard + m) % self.num_shards
        return global_ids

    # ------------------------------------------------------------------
    # Persistence support
    # ------------------------------------------------------------------
    def save_shards(self, path: str) -> None:
        """Have each owner write its shards under ``path`` (frozen dirs).

        Workers compact their overflow first (``save_frozen_index``
        does), so the artifact is pure CSR arrays; the caller writes the
        metadata and id maps around them.
        """
        for w in range(self.num_workers):
            for s in self.worker_shards(w):
                self._request(
                    w, ("save_shard", s, _shard_dir(path, s))
                )
        if os.path.realpath(path) == os.path.realpath(self.path):
            # Saving in place makes the artifact canonical: a respawned
            # worker now loads the inserts from disk, so replaying the
            # log on top of it would double them.
            with self._route_lock:
                self._insert_log = [[] for _ in range(self.num_workers)]

    def checkpoint(self) -> None:
        """Fold all inserts into the source artifact and drop the replay log.

        Each worker compacts and re-saves its shards in place, making
        the on-disk artifact the recovery point again; without periodic
        checkpoints an insert-heavy parent accumulates a copy of every
        routed batch for crash replay.  Queries keep working throughout
        (shard saves stage a complete sibling directory and atomically
        swap it in under the live mmaps; the metadata rewrite is a
        fsync'd rename too).
        """
        from repro.api.persist import _META_FILE, _read_meta, write_shard_gids

        self.save_shards(self.path)
        if self.num_shards > 1:
            write_shard_gids(self.path, self._shard_gids)
        # Keep the metadata honest: n grows with inserts, and a
        # reopened single-shard pool derives its id map from it.
        meta_path = os.path.join(self.path, _META_FILE)
        meta = _read_meta(meta_path)
        meta["n"] = self.n
        meta["next_shard"] = int(self._next_shard)
        write_json_atomic(meta_path, meta)

    def __repr__(self) -> str:
        return (
            f"WorkerPool(W={self.num_workers}, K={self.num_shards}, "
            f"n={self.n}, dim={self.dim}, metric={self.metric_name}, "
            f"r={self.radius})"
        )
