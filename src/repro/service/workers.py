"""Zero-copy multi-process serving: mmap'd frozen shards behind a pool.

The thread fan-out of :class:`~repro.service.sharded.ShardedHybridIndex`
tops out on one core: per-shard dedup/merge work is GIL-bound Python.
This module cashes in the frozen CSR persistence design instead — each
shard of a saved frozen index is a directory of plain ``.npy`` files
reopened with ``np.load(mmap_mode="r")`` — so ``K`` worker *processes*
can each open their assigned shards zero-copy from the shared page
cache, with no pickling of index state and no per-worker build cost.

:class:`WorkerPool` spawns the persistent workers over a saved artifact
(the layout written by :meth:`repro.api.Index.save`), distributes query
batches over duplex pipes, and merges per-shard answers with the exact
semantics of the thread path (shared
:func:`~repro.service.sharded.merge_radius_results` /
:func:`~repro.core.linear_scan.exact_topk_results` kernels), so
``execution="processes"`` answers are **bit-identical** to
``execution="threads"``.  The public surface mirrors
``ShardedHybridIndex`` — ``query`` / ``query_batch`` / ``query_topk`` /
``query_topk_batch`` / ``insert`` / ``shard_query_batch`` /
``merge_radius`` / ``map_shards`` — so :class:`repro.api.Index`,
:class:`~repro.service.service.QueryService` and the stream protocol
work unchanged on top.

Operational contract:

* **startup is O(mmap)** — workers reopen saved arrays, never rebuild
  or rehash; the pool is ready once every worker acks its shards;
* **inserts** route to the owning worker's overflow side-table (the
  frozen layout's insert path, background re-freeze included); the
  parent logs them per worker so a respawn can replay;
* **crash recovery** — a worker that dies mid-request is respawned
  from the artifact, its insert log replayed in order, and the request
  retried once; answers are unchanged because replay reconstructs the
  exact overflow state;
* **shutdown** is explicit (:meth:`WorkerPool.close`) and idempotent;
  workers are daemonic so an abandoned pool cannot outlive the parent.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.cost_model import CostModel
from repro.core.linear_scan import exact_topk_results
from repro.core.results import QueryResult, QueryStats, Strategy
from repro.distances import get_metric
from repro.exceptions import ConfigurationError
from repro.observability import StageTrace, stage_timer
from repro.service.sharded import default_fanout_width, merge_radius_results
from repro.service.stats import ServiceStats
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["WorkerPool", "WorkerError"]


class WorkerError(RuntimeError):
    """An operation failed inside a worker process (the worker survives)."""


def _shard_dir(path: str, shard: int) -> str:
    """Absolute shard directory, named by the one true layout source.

    The artifact layout (meta file, gids archive, shard dir scheme) is
    owned by :mod:`repro.api.persist`; imported lazily to keep this
    module free of api-layer imports at load time.
    """
    from repro.api.persist import _frozen_shard_dir

    return os.path.join(path, _frozen_shard_dir(shard))


def _pack_result(result: QueryResult):
    """QueryResult -> plain tuple (cheap to pickle across the pipe)."""
    s = result.stats
    return (
        np.asarray(result.ids),
        np.asarray(result.distances),
        (
            s.num_collisions,
            s.estimated_candidates,
            s.exact_candidates,
            s.estimated_lsh_cost,
            s.linear_cost,
            s.strategy.value,
        ),
    )


def _payload_nbytes(obj) -> int:
    """Array bytes inside a pipe message/reply (the dominant pipe cost).

    Counts every ndarray reachable through the tuples/lists/dicts the
    worker protocol ships; scalar envelope overhead is ignored — the
    counter answers "how much data crossed the pipe", not "how many
    pickle bytes".
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, tuple | list):
        return sum(_payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(value) for value in obj.values())
    return 0


def _unpack_result(packed, radius: float) -> QueryResult:
    ids, distances, (nc, est, exact, lsh_cost, lin_cost, strategy) = packed
    stats = QueryStats(
        num_collisions=int(nc),
        estimated_candidates=float(est),
        exact_candidates=int(exact),
        estimated_lsh_cost=float(lsh_cost),
        linear_cost=float(lin_cost),
        strategy=Strategy(strategy),
    )
    return QueryResult(ids=ids, distances=distances, radius=radius, stats=stats)


def _worker_main(conn, path: str, shard_ids: list[int], spec_doc: dict,
                 alpha: float, beta: float) -> None:
    """Worker process loop: open assigned shards via mmap, answer ops.

    Must stay a module-level function so the ``spawn`` start method can
    import it; with ``fork`` it reuses the parent's loaded modules and
    the open is dominated by ``np.load(mmap_mode="r")`` calls.
    """
    from repro.api.facade import _resolve_estimator
    from repro.api.spec import IndexSpec
    from repro.core.hybrid import HybridSearcher
    from repro.distances.matrix import pairwise_distances
    from repro.index.frozen import load_frozen_index, save_frozen_index
    from repro.service.batch import BatchQueryEngine

    try:
        spec = IndexSpec.from_dict(spec_doc)
        cost_model = CostModel(alpha=alpha, beta=beta)
        estimator = _resolve_estimator(spec)
        metric = get_metric(spec.metric)
        indexes = {}
        engines = {}
        for s in shard_ids:
            index = load_frozen_index(_shard_dir(path, s))
            searcher = HybridSearcher(index, cost_model, estimator=estimator)
            indexes[s] = index
            engines[s] = BatchQueryEngine(
                searcher, radius=spec.radius, dedup=spec.dedup
            )
        # Worker-local telemetry: latency histogram + counters for the
        # batches *this* worker answers, a bytes counter for its pipe
        # payloads, and live gauges over its frozen shards.  The parent
        # fetches and exactly merges these via the ``stats`` op.
        stats = ServiceStats()
        frozen = [
            ix for ix in indexes.values()
            if hasattr(ix, "overflow_count") and hasattr(ix, "refreeze_count")
        ]
        if frozen:
            stats.gauge_hooks["overflow_points"] = lambda: float(
                sum(ix.overflow_count for ix in frozen)
            )
            stats.gauge_hooks["refreeze_generations"] = lambda: float(
                sum(ix.refreeze_count for ix in frozen)
            )
            stats.gauge_hooks["refreeze_seconds_total"] = lambda: float(
                sum(ix.refreeze_seconds_total for ix in frozen)
            )
        conn.send(("ready", {s: indexes[s].n for s in shard_ids}))
    except BaseException as exc:
        with contextlib.suppress(OSError):
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        return

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "stop":
            break
        try:
            if op == "radius":
                _, shards, queries, radius = message
                started = time.perf_counter()
                reply = {
                    s: [
                        _pack_result(r)
                        for r in engines[s].query_batch(queries, radius)
                    ]
                    for s in shards
                }
                # Strategy counts tally the *shard-local* dispatch
                # decisions, so with multiple owned shards they sum to
                # queries x shards, not queries_served.
                strategies: dict[str, int] = {}
                for packed_results in reply.values():
                    for packed in packed_results:
                        name = Strategy(packed[2][5]).value
                        strategies[name] = strategies.get(name, 0) + 1
                stats.record_batch(
                    queries.shape[0], time.perf_counter() - started,
                    strategies=strategies,
                )
            elif op == "topk_block":
                _, shards, queries = message
                started = time.perf_counter()
                reply = {
                    s: pairwise_distances(queries, indexes[s].points, metric)
                    for s in shards
                }
                stats.record_batch(queries.shape[0], time.perf_counter() - started)
            elif op == "insert":
                _, s, points = message
                indexes[s].insert(points)
                reply = indexes[s].n
            elif op == "save_shard":
                _, s, target = message
                save_frozen_index(indexes[s], target)
                reply = True
            elif op == "shard_sizes":
                reply = {s: indexes[s].n for s in shard_ids}
            elif op == "stats":
                reply = stats.as_dict()
            elif op == "ping":
                reply = "pong"
            else:
                reply = ("error", f"unknown worker op: {op!r}")
        except Exception as exc:
            reply = ("error", f"{type(exc).__name__}: {exc}")
        stats.bytes_shipped += _payload_nbytes(message) + _payload_nbytes(reply)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class WorkerPool:
    """``K`` frozen shards served by persistent worker processes.

    Parameters
    ----------
    path:
        A saved index directory (:meth:`repro.api.Index.save`) whose
        shards use the frozen layout — the artifact the workers mmap.
    num_workers:
        Pool width; defaults to ``min(num_shards, os.cpu_count())``.
        Worker ``w`` owns shards ``w, w + W, w + 2W, ...``.
    owns_path:
        When True the artifact directory is deleted on :meth:`close`
        (used for the transient artifact ``Index.build`` writes when a
        spec asks for ``execution="processes"``).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (instant worker start, inherited imports) and falls back to
        ``spawn`` where fork is unavailable.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import Index, IndexSpec, QuerySpec
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(600, 12))
    >>> spec = IndexSpec(metric="l2", radius=1.0, num_tables=6,
    ...                  num_shards=3, layout="frozen",
    ...                  execution="processes", seed=1)
    >>> index = Index.build(points, spec)  # doctest: +SKIP
    >>> int(index.query(QuerySpec(points[17])).ids[0])  # doctest: +SKIP
    17
    """

    kind = "processes"

    def __init__(
        self,
        path: str,
        num_workers: int | None = None,
        owns_path: bool = False,
        start_method: str | None = None,
    ) -> None:
        from repro.api.persist import _GIDS_FILE, _META_FILE
        from repro.api.spec import IndexSpec

        meta_path = os.path.join(path, _META_FILE)
        if not os.path.exists(meta_path):
            raise ConfigurationError(
                f"no saved index at {path!r} (missing {_META_FILE})"
            )
        with open(meta_path) as fh:
            meta = json.load(fh)
        if meta.get("layout", "dict") != "frozen":
            raise ConfigurationError(
                "the process pool serves frozen-layout artifacts only "
                f"(saved layout: {meta.get('layout')!r}); rebuild with "
                'layout="frozen"'
            )
        self.path = path
        self._owns_path = owns_path
        self.spec = IndexSpec.from_dict(meta["spec"])
        self.metric_name = self.spec.metric
        self.metric = get_metric(self.metric_name)
        self.radius = float(self.spec.radius)
        self.cost_model = CostModel(
            alpha=float(meta["cost_model"]["alpha"]),
            beta=float(meta["cost_model"]["beta"]),
        )
        self.num_shards = int(meta["num_shards"])
        self._dim = int(meta["dim"])
        gids_path = os.path.join(path, _GIDS_FILE)
        if self.num_shards > 1:
            with np.load(gids_path, allow_pickle=False) as archive:
                self._shard_gids = [
                    np.asarray(archive[f"gids_{s:03d}"], dtype=np.int64)
                    for s in range(self.num_shards)
                ]
        else:
            self._shard_gids = [np.arange(int(meta["n"]), dtype=np.int64)]
        self._next_shard = int(meta.get("next_shard", 0)) % self.num_shards
        if num_workers is None:
            num_workers = default_fanout_width(self.num_shards)
        self.num_workers = min(
            check_positive_int(num_workers, "num_workers"), self.num_shards
        )
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._closed = False
        self._workers: list = [None] * self.num_workers
        self._conns: list = [None] * self.num_workers
        self._locks = [threading.Lock() for _ in range(self.num_workers)]
        #: parent-side transport counters (lifetime of the pool): bytes
        #: of array payload shipped over the pipes in either direction,
        #: and workers respawned after a crash.
        self._counter_lock = threading.Lock()
        self.bytes_shipped = 0
        self.respawns = 0
        #: per-worker replay log of (shard, points) inserts, in order —
        #: the only state a respawned worker cannot recover from disk.
        #: Guarded by ``_route_lock`` together with the routing state
        #: (``_shard_gids``, ``_next_shard``): a query thread can trigger
        #: a respawn — which replays this log — while an insert commit is
        #: appending to it.  Lock order is worker lock -> route lock,
        #: never the reverse.
        self._route_lock = threading.Lock()
        self._insert_log: list[list] = [[] for _ in range(self.num_workers)]
        self._fanout = ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="repro-pool"
        )
        try:
            for w in range(self.num_workers):
                self._spawn(w)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def worker_shards(self, worker: int) -> list[int]:
        """Shard ids owned by ``worker`` (round-robin assignment)."""
        return list(range(worker, self.num_shards, self.num_workers))

    def _owner(self, shard: int) -> int:
        return shard % self.num_workers

    def _spawn(self, worker: int) -> None:
        """Start (or restart) one worker and wait for its mmap-open ack."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.path,
                self.worker_shards(worker),
                self.spec.to_dict(),
                self.cost_model.alpha,
                self.cost_model.beta,
            ),
            name=f"repro-worker-{worker}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            ack = parent_conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerError(f"worker {worker} died during startup") from exc
        if not (isinstance(ack, tuple) and ack and ack[0] == "ready"):
            raise WorkerError(f"worker {worker} failed to open shards: {ack!r}")
        self._workers[worker] = process
        self._conns[worker] = parent_conn

    def _respawn_locked(self, worker: int) -> None:
        """Replace a dead worker and replay its insert log (lock held)."""
        process = self._workers[worker]
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
        conn = self._conns[worker]
        if conn is not None:
            conn.close()
        self._spawn(worker)
        with self._counter_lock:
            self.respawns += 1
        # Snapshot under the route lock: this worker's log cannot grow
        # mid-replay (appends hold the worker lock, which this method's
        # caller already holds), but ``save_shards`` may swap the whole
        # log list out from another thread.
        with self._route_lock:
            pending = list(self._insert_log[worker])
        for shard, points in pending:
            self._conns[worker].send(("insert", shard, points))
            reply = self._conns[worker].recv()
            if isinstance(reply, tuple) and reply and reply[0] == "error":
                raise WorkerError(
                    f"worker {worker} failed to replay inserts: {reply[1]}"
                )

    def _request(self, worker: int, message, log_entry=None):
        """One send/recv round trip, with a single respawn-and-retry.

        ``log_entry`` (an insert-log record) is appended to the worker's
        replay log atomically with a successful reply, *inside* the
        worker lock: a crash-triggered replay in another thread holds
        the same lock, so a batch can never fall between a worker's ack
        and its log commit (the replay would miss it) or be both
        replayed and re-sent (it would be doubled).
        """
        if self._closed:
            raise ConfigurationError("the worker pool has been closed")
        with self._locks[worker]:
            try:
                self._conns[worker].send(message)
                reply = self._conns[worker].recv()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                self._respawn_locked(worker)
                self._conns[worker].send(message)
                reply = self._conns[worker].recv()
            if log_entry is not None and not (
                isinstance(reply, tuple) and reply and reply[0] == "error"
            ):
                with self._route_lock:
                    self._insert_log[worker].append(log_entry)
        nbytes = _payload_nbytes(message) + _payload_nbytes(reply)
        if nbytes:
            with self._counter_lock:
                self.bytes_shipped += nbytes
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise WorkerError(reply[1])
        return reply

    def _fan_out(self, messages: dict[int, tuple]) -> dict[int, object]:
        """Send one message per worker concurrently; collect the replies."""
        futures = {
            w: self._fanout.submit(self._request, w, message)
            for w, message in messages.items()
        }
        return {w: future.result() for w, future in futures.items()}

    def worker_pids(self) -> list[int]:
        """The live worker process ids (diagnostics and crash tests)."""
        return [p.pid for p in self._workers if p is not None]

    def worker_stats(self) -> list[dict]:
        """Every worker's own stats snapshot, fetched via the ``stats`` op.

        Each entry is a worker-local ``ServiceStats.as_dict()`` document
        — latency histogram, counters, bytes shipped over *its* pipe,
        and live gauges over its frozen shards (overflow size,
        re-freeze counters).  A worker respawned after a crash starts
        from zeroed counters; the parent's :attr:`respawns` records the
        event.  Merge with ``ServiceStats.from_dict`` + ``merge`` for
        the pool-wide aggregate (exact: shared histogram buckets).
        """
        replies = self._fan_out(
            {w: ("stats",) for w in range(self.num_workers)}
        )
        return [replies[w] for w in range(self.num_workers)]

    def close(self) -> None:
        """Stop every worker and release the artifact (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for w, conn in enumerate(self._conns):
            if conn is None:
                continue
            with contextlib.suppress(BrokenPipeError, OSError):
                conn.send(("stop",))
        for process in self._workers:
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            if conn is not None:
                conn.close()
        self._fanout.shutdown(wait=True)
        if self._owns_path:
            shutil.rmtree(self.path, ignore_errors=True)

    # ------------------------------------------------------------------
    # Introspection (ShardedHybridIndex-compatible)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total number of served points across all shards."""
        return sum(gids.size for gids in self._shard_gids)

    @property
    def dim(self) -> int:
        """Dimensionality of the served points."""
        return self._dim

    def shard_sizes(self) -> list[int]:
        """Current per-shard point counts (from the parent's id maps)."""
        return [int(gids.size) for gids in self._shard_gids]

    def _resolve_radius(self, radius: float | None) -> float:
        return self.radius if radius is None else float(radius)

    def peek_assignment(self, count: int) -> np.ndarray:
        """Shard ids the next ``count`` inserted points would be routed to."""
        return (self._next_shard + np.arange(count)) % self.num_shards

    # ------------------------------------------------------------------
    # Radius queries
    # ------------------------------------------------------------------
    def query(self, query: np.ndarray, radius: float | None = None) -> QueryResult:
        """Answer one rNNR query across all shards."""
        return self.query_batch(np.asarray(query)[None, :], radius)[0]

    def query_batch(
        self,
        queries: np.ndarray,
        radius: float | None = None,
        trace: StageTrace | None = None,
    ) -> list[QueryResult]:
        """Answer a ``(q, d)`` matrix: one pipe round trip per worker.

        Each worker runs the identical per-shard
        :class:`~repro.service.batch.BatchQueryEngine` batch the thread
        path runs, so the merged answers are bit-identical to
        :meth:`ShardedHybridIndex.query_batch`.

        With ``trace``, the fan-out round trip is attributed to the
        ``ipc`` stage — which *includes* the workers' compute, since the
        parent only observes the blocking request/reply — and the
        parent-side merge to ``merge``.  Per-stage attribution inside
        the workers lives in their own stats (:meth:`worker_stats`).
        """
        radius = self._resolve_radius(radius)
        queries = check_matrix(queries, dim=self.dim, name="queries")
        with stage_timer(trace, "ipc"):
            replies = self._fan_out(
                {
                    w: ("radius", self.worker_shards(w), queries, radius)
                    for w in range(self.num_workers)
                }
            )
        with stage_timer(trace, "merge"):
            per_shard = {}
            for reply in replies.values():
                per_shard.update(reply)
            return [
                merge_radius_results(
                    self._shard_gids,
                    [
                        _unpack_result(per_shard[s][qi], radius)
                        for s in range(self.num_shards)
                    ],
                    radius,
                )
                for qi in range(queries.shape[0])
            ]

    def shard_query_batch(
        self, shard: int, queries: np.ndarray, radius: float
    ) -> list[QueryResult]:
        """One shard's *local* radius answers (ids are shard-local)."""
        reply = self._request(
            self._owner(shard), ("radius", [shard], queries, radius)
        )
        return [_unpack_result(packed, radius) for packed in reply[shard]]

    def merge_radius(
        self, shard_results: list[QueryResult], radius: float
    ) -> QueryResult:
        """Merge one query's per-shard local results into the global answer."""
        return merge_radius_results(self._shard_gids, shard_results, radius)

    def map_shards(self, work) -> list:
        """Run ``work(s)`` for every shard on the parent fan-out threads."""
        futures = [
            self._fanout.submit(work, s) for s in range(self.num_shards)
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Top-k queries (exact)
    # ------------------------------------------------------------------
    def query_topk(self, query: np.ndarray, k: int) -> QueryResult:
        """Exact k-nearest-neighbors of one query."""
        return self.query_topk_batch(np.asarray(query)[None, :], k)[0]

    def query_topk_batch(
        self, queries: np.ndarray, k: int, trace: StageTrace | None = None
    ) -> list[QueryResult]:
        """Exact k-NN: workers compute local distance blocks, parent selects.

        Same merge kernel as the thread path
        (:func:`~repro.core.linear_scan.exact_topk_results`), so the
        deterministic ``(distance, id)`` tie-breaking is shared.
        """
        k = check_positive_int(k, "k")
        queries = check_matrix(queries, dim=self.dim, name="queries")
        if k > self.n:
            raise ConfigurationError(
                f"k ({k}) must not exceed the index size ({self.n})"
            )
        with stage_timer(trace, "ipc"):
            replies = self._fan_out(
                {
                    w: ("topk_block", self.worker_shards(w), queries)
                    for w in range(self.num_workers)
                }
            )
        with stage_timer(trace, "merge"):
            blocks_by_shard = {}
            for reply in replies.values():
                blocks_by_shard.update(reply)
            blocks = [blocks_by_shard[s] for s in range(self.num_shards)]
            return exact_topk_results(
                np.concatenate(self._shard_gids), blocks, k, self.n
            )

    # ------------------------------------------------------------------
    # Incremental inserts
    # ------------------------------------------------------------------
    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Insert points round-robin; each lands in its owner's overflow.

        The receiving worker's frozen shard absorbs the points through
        its overflow side-table (background re-freeze included); the
        parent extends the global id maps and logs the routed batches so
        a crashed worker can be replayed into the same state.

        The replay log grows with every insert until a save makes the
        artifact canonical again — insert-heavy long-running deployments
        should call :meth:`checkpoint` (or ``save`` to the source path)
        periodically to re-anchor recovery on disk and drop the log.
        """
        new_points = check_matrix(new_points, dim=self.dim, name="new_points")
        m = new_points.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        start = self.n
        global_ids = np.arange(start, start + m, dtype=np.int64)
        assignment = (self._next_shard + np.arange(m)) % self.num_shards
        routed_by_shard = []
        for s in range(self.num_shards):
            rows = np.flatnonzero(assignment == s)
            if rows.size:
                routed_by_shard.append((s, rows, np.ascontiguousarray(new_points[rows])))
        # Phase 1: apply on the workers.  Each shard's replay-log entry
        # commits atomically with that worker's ack (see ``_request``) —
        # a concurrent crash-triggered replay can never observe an
        # acked-but-unlogged batch.  If any shard fails, pop this
        # batch's entries and respawn every worker touched: the respawn
        # restores the exact pre-batch state and a caller retry cannot
        # double-insert.
        touched: list[int] = []
        appended: list[int] = []
        try:
            for s, _, routed in routed_by_shard:
                worker = self._owner(s)
                touched.append(worker)
                self._request(worker, ("insert", s, routed), log_entry=(s, routed))
                appended.append(worker)
        except BaseException:
            with self._route_lock:
                for worker in reversed(appended):
                    self._insert_log[worker].pop()
            for worker in dict.fromkeys(touched):
                with self._locks[worker]:
                    self._respawn_locked(worker)
            raise
        # Phase 2: all workers accepted — commit the routing state.
        with self._route_lock:
            for s, rows, routed in routed_by_shard:
                self._shard_gids[s] = np.concatenate(
                    [self._shard_gids[s], global_ids[rows]]
                )
            self._next_shard = (self._next_shard + m) % self.num_shards
        return global_ids

    # ------------------------------------------------------------------
    # Persistence support
    # ------------------------------------------------------------------
    def save_shards(self, path: str) -> None:
        """Have each owner write its shards under ``path`` (frozen dirs).

        Workers compact their overflow first (``save_frozen_index``
        does), so the artifact is pure CSR arrays; the caller writes the
        metadata and id maps around them.
        """
        for w in range(self.num_workers):
            for s in self.worker_shards(w):
                self._request(
                    w, ("save_shard", s, _shard_dir(path, s))
                )
        if os.path.realpath(path) == os.path.realpath(self.path):
            # Saving in place makes the artifact canonical: a respawned
            # worker now loads the inserts from disk, so replaying the
            # log on top of it would double them.
            with self._route_lock:
                self._insert_log = [[] for _ in range(self.num_workers)]

    def checkpoint(self) -> None:
        """Fold all inserts into the source artifact and drop the replay log.

        Each worker compacts and re-saves its shards in place, making
        the on-disk artifact the recovery point again; without periodic
        checkpoints an insert-heavy parent accumulates a copy of every
        routed batch for crash replay.  Queries keep working throughout
        (the save writes via temp files + rename under the live mmaps).
        """
        from repro.api.persist import _META_FILE, write_shard_gids

        self.save_shards(self.path)
        if self.num_shards > 1:
            write_shard_gids(self.path, self._shard_gids)
        # Keep the metadata honest: n grows with inserts, and a
        # reopened single-shard pool derives its id map from it.
        meta_path = os.path.join(self.path, _META_FILE)
        with open(meta_path) as fh:
            meta = json.load(fh)
        meta["n"] = self.n
        meta["next_shard"] = int(self._next_shard)
        with open(meta_path + ".tmp", "w") as fh:
            json.dump(meta, fh, indent=2)
            fh.write("\n")
        os.replace(meta_path + ".tmp", meta_path)

    def __repr__(self) -> str:
        return (
            f"WorkerPool(W={self.num_workers}, K={self.num_shards}, "
            f"n={self.n}, dim={self.dim}, metric={self.metric_name}, "
            f"r={self.radius})"
        )
