"""Serving counters, shared by :class:`repro.api.Index` and the legacy
:class:`~repro.service.service.QueryService` (which delegates to it).

Kept free of intra-package imports so both layers can depend on it
without ordering constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceStats"]


@dataclass
class ServiceStats:
    """Running counters of a served index."""

    queries_served: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: queries answered by an identical batch-mate's fresh result —
    #: engine work avoided, but not by the cache store.
    deduplicated: int = 0
    elapsed_seconds: float = 0.0
    #: chosen shard fan-out width — thread-pool threads or worker
    #: processes serving the shards; 0 for an unpartitioned engine.
    pool_workers: int = 0
    strategy_counts: dict[str, int] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        """Average queries per second over the measured time."""
        return self.queries_served / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly snapshot."""
        return {
            "queries_served": self.queries_served,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "deduplicated": self.deduplicated,
            "elapsed_seconds": self.elapsed_seconds,
            "qps": self.qps,
            "pool_workers": self.pool_workers,
            **{f"strategy_{name}": count for name, count in sorted(self.strategy_counts.items())},
        }
