"""Serving counters, shared by :class:`repro.api.Index` and the legacy
:class:`~repro.service.service.QueryService` (which delegates to it).

Depends only on :mod:`repro.observability` (numpy + stdlib), so both
layers — and worker subprocesses — can import it without ordering
constraints.

Beyond the original flat counter bag, a stats object now carries a
mergeable per-query :class:`~repro.observability.LatencyHistogram`,
per-stage wall-time attributions fed by the opt-in tracing layer,
worker-pool transport counters (``bytes_shipped``, ``worker_respawns``),
and two gauge channels: ``gauges`` holds point-in-time values shipped
from another process (e.g. a worker's overflow size), while
``gauge_hooks`` holds zero-arg callables the owning backend registers so
:meth:`ServiceStats.read_gauges` always reads live values (frozen-index
overflow size, background re-freeze counters).  Hooks are process-local
by nature and are deliberately excluded from serialisation, merging,
and equality.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.observability import LatencyHistogram, StageTrace

__all__ = ["ServiceStats"]


@dataclass(eq=False)
class ServiceStats:
    """Running counters, histograms, and gauges of a served index.

    One stats object is shared by every thread of a concurrent serving
    front-end (``serve_stream_concurrent`` fans batches out to a thread
    pool and every worker accounts into the same object), so all
    mutating accessors take an internal lock.  Reads of a single
    counter are atomic anyway; :meth:`as_dict` locks so a snapshot is
    internally consistent.  The object never crosses a process boundary
    directly — workers ship :meth:`as_dict` documents — so holding a
    lock is safe.
    """

    queries_served: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: queries answered by an identical batch-mate's fresh result —
    #: engine work avoided, but not by the cache store.
    deduplicated: int = 0
    elapsed_seconds: float = 0.0
    #: chosen shard fan-out width — thread-pool threads or worker
    #: processes serving the shards; 0 for an unpartitioned engine.
    pool_workers: int = 0
    strategy_counts: dict[str, int] = field(default_factory=dict)
    #: bytes of query/result payload that crossed worker-pool pipes.
    bytes_shipped: int = 0
    #: pool workers respawned after a crash (parent-side counter).
    worker_respawns: int = 0
    #: worker replies that missed their recv deadline (hangs, dropped
    #: replies) before the worker was killed and respawned.
    worker_timeouts: int = 0
    #: request re-sends after a transport failure (each preceded by a
    #: backoff sleep and a kill-and-respawn of the worker).
    worker_retries: int = 0
    #: responses served with ``degraded=True`` — one or more shards
    #: were unavailable and the caller opted into partial results.
    degraded_responses: int = 0
    #: closed-to-open circuit-breaker transitions across all workers.
    breaker_opens: int = 0
    #: reads re-routed to a surviving replica of the same shard slot
    #: after a transport failure (replicated pools only).
    replica_failovers: int = 0
    #: worker respawns keyed by what triggered them (``crash``,
    #: ``timeout``, ``corrupt``, ``heartbeat``, ``rollback``); sums to
    #: ``worker_respawns`` when the pool is the only writer.
    respawns_by_cause: dict[str, int] = field(default_factory=dict)
    #: queries answered under a bounded per-query probe budget (the
    #: adaptive policy's ``target_candidates`` was in force).
    adaptive_probes: int = 0
    #: top-k queries attempted through radius-from-k estimation instead
    #: of the exact scan (whether or not they certified).
    radius_estimates: int = 0
    #: completed online cost-model coefficient updates (synced from the
    #: engines at snapshot time, like the transport counters).
    recalibrations: int = 0
    #: per-query latency distribution; each query in a batch is charged
    #: the batch's wall time, so ``latency.count == queries_served``.
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: accumulated per-stage attribution from traced calls.
    stage_seconds: dict[str, float] = field(default_factory=dict)
    stage_calls: dict[str, int] = field(default_factory=dict)
    #: point-in-time gauge values (used when shipping snapshots across
    #: process boundaries; merged by summation).
    gauges: dict[str, float] = field(default_factory=dict)
    #: live gauge callables registered by the owning backend; read at
    #: snapshot time, never serialised or merged.
    gauge_hooks: dict[str, Callable[[], float]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # Created here rather than as a field: the lock is process-local
        # plumbing, not data — it must stay out of repr/eq and can never
        # be serialised.  RLock so a gauge hook that reads back into the
        # stats object cannot self-deadlock during a snapshot.
        self._lock = threading.RLock()

    @property
    def qps(self) -> float:
        """Average queries per second over the measured time."""
        return self.queries_served / self.elapsed_seconds if self.elapsed_seconds else 0.0

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def record_batch(
        self,
        count: int,
        seconds: float,
        strategies: dict[str, int] | None = None,
        trace: StageTrace | None = None,
    ) -> None:
        """Account one answered batch of ``count`` queries.

        Every query in the batch is charged the batch's wall time in
        the latency histogram — the latency a caller of that batch
        actually observed.
        """
        with self._lock:
            self.queries_served += count
            self.batches += 1
            self.elapsed_seconds += seconds
            if count:
                self.latency.record(seconds, count=count)
            if strategies:
                for name, n in strategies.items():
                    self.strategy_counts[name] = self.strategy_counts.get(name, 0) + n
            if trace is not None:
                self._add_stages_locked(trace)

    def add_stages(self, trace: StageTrace) -> None:
        """Fold a completed trace's per-stage attribution into the totals."""
        with self._lock:
            self._add_stages_locked(trace)

    def _add_stages_locked(self, trace: StageTrace) -> None:
        for stage, seconds in trace.seconds.items():
            self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
            self.stage_calls[stage] = self.stage_calls.get(stage, 0) + trace.calls.get(stage, 0)

    def record_cache(self, hits: int = 0, misses: int = 0, deduplicated: int = 0) -> None:
        """Account one batch's cache outcome (front-end cache layer)."""
        with self._lock:
            self.cache_hits += hits
            self.cache_misses += misses
            self.deduplicated += deduplicated

    def set_transport(
        self,
        bytes_shipped: int,
        worker_respawns: int,
        worker_timeouts: int = 0,
        worker_retries: int = 0,
        breaker_opens: int = 0,
        replica_failovers: int = 0,
        respawns_by_cause: dict[str, int] | None = None,
    ) -> None:
        """Sync the worker-pool transport/failure counters into a snapshot.

        The pool owns the live counters; the facade copies them over
        just before reading a snapshot, so they all land atomically.
        """
        with self._lock:
            self.bytes_shipped = bytes_shipped
            self.worker_respawns = worker_respawns
            self.worker_timeouts = worker_timeouts
            self.worker_retries = worker_retries
            self.breaker_opens = breaker_opens
            self.replica_failovers = replica_failovers
            if respawns_by_cause is not None:
                self.respawns_by_cause = dict(respawns_by_cause)

    def record_degraded(self, count: int = 1) -> None:
        """Account ``count`` responses served with missing shards."""
        with self._lock:
            self.degraded_responses += count

    def record_adaptive(
        self, probe_queries: int = 0, radius_estimates: int = 0
    ) -> None:
        """Account adaptive-execution activity for one batch."""
        with self._lock:
            self.adaptive_probes += probe_queries
            self.radius_estimates += radius_estimates

    def set_recalibrations(self, count: int) -> None:
        """Sync the engines' recalibration total into a snapshot.

        The engines own the live counter (one per completed EWMA
        coefficient update); the facade copies it over just before
        reading a snapshot, exactly like :meth:`set_transport`.
        """
        with self._lock:
            self.recalibrations = count

    def merge(self, other: ServiceStats) -> ServiceStats:
        """Fold another stats object (e.g. a worker's) into this one.

        Counters and histograms add; ``pool_workers`` keeps this
        object's value (it describes the aggregating front-end, not the
        contributor); gauges add (each worker reports its own share);
        gauge hooks stay local.  Returns self.
        """
        with self._lock:
            self.queries_served += other.queries_served
            self.batches += other.batches
            self.cache_hits += other.cache_hits
            self.cache_misses += other.cache_misses
            self.deduplicated += other.deduplicated
            self.elapsed_seconds += other.elapsed_seconds
            self.bytes_shipped += other.bytes_shipped
            self.worker_respawns += other.worker_respawns
            self.worker_timeouts += other.worker_timeouts
            self.worker_retries += other.worker_retries
            self.degraded_responses += other.degraded_responses
            self.breaker_opens += other.breaker_opens
            self.replica_failovers += other.replica_failovers
            for cause, n in other.respawns_by_cause.items():
                self.respawns_by_cause[cause] = (
                    self.respawns_by_cause.get(cause, 0) + n
                )
            self.adaptive_probes += other.adaptive_probes
            self.radius_estimates += other.radius_estimates
            self.recalibrations += other.recalibrations
            self.latency.merge(other.latency)
            for name, n in other.strategy_counts.items():
                self.strategy_counts[name] = self.strategy_counts.get(name, 0) + n
            for stage, seconds in other.stage_seconds.items():
                self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
                self.stage_calls[stage] = (
                    self.stage_calls.get(stage, 0) + other.stage_calls.get(stage, 0)
                )
            for name, value in other.gauges.items():
                self.gauges[name] = self.gauges.get(name, 0.0) + value
            return self

    def reset(self) -> None:
        """Zero all measurements in place.

        Structural attributes survive: ``pool_workers`` (a property of
        the backend, not of traffic) and the registered ``gauge_hooks``.
        Keeping reset here — instead of re-creating the object at each
        call site — means new fields can't be silently dropped.
        """
        with self._lock:
            self.queries_served = 0
            self.batches = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.deduplicated = 0
            self.elapsed_seconds = 0.0
            self.bytes_shipped = 0
            self.worker_respawns = 0
            self.worker_timeouts = 0
            self.worker_retries = 0
            self.degraded_responses = 0
            self.breaker_opens = 0
            self.replica_failovers = 0
            self.respawns_by_cause = {}
            self.adaptive_probes = 0
            self.radius_estimates = 0
            self.recalibrations = 0
            self.strategy_counts = {}
            self.latency = LatencyHistogram()
            self.stage_seconds = {}
            self.stage_calls = {}
            self.gauges = {}

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def read_gauges(self) -> dict[str, float]:
        """Static gauge values plus one reading of every registered hook."""
        values = dict(self.gauges)
        for name, hook in self.gauge_hooks.items():
            values[name] = float(hook())
        return values

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot.

        The flat counter keys (including ``strategy_*``) keep their
        original names and types for existing consumers; the histogram,
        stage attribution, and gauges ride along as nested documents.
        """
        with self._lock:
            doc: dict[str, object] = {
                "queries_served": self.queries_served,
                "batches": self.batches,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "deduplicated": self.deduplicated,
                "elapsed_seconds": self.elapsed_seconds,
                "qps": self.qps,
                "pool_workers": self.pool_workers,
                "bytes_shipped": self.bytes_shipped,
                "worker_respawns": self.worker_respawns,
                "worker_timeouts": self.worker_timeouts,
                "worker_retries": self.worker_retries,
                "degraded_responses": self.degraded_responses,
                "breaker_opens": self.breaker_opens,
                "replica_failovers": self.replica_failovers,
                "respawns_by_cause": dict(self.respawns_by_cause),
                "adaptive_probes": self.adaptive_probes,
                "radius_estimates": self.radius_estimates,
                "recalibrations": self.recalibrations,
                **{
                    f"strategy_{name}": count
                    for name, count in sorted(self.strategy_counts.items())
                },
            }
            doc["latency"] = self.latency.to_dict()
            doc["stages"] = {
                stage: {
                    "seconds": self.stage_seconds[stage],
                    "calls": self.stage_calls.get(stage, 0),
                }
                for stage in sorted(self.stage_seconds)
            }
            doc["gauges"] = self.read_gauges()
            return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> ServiceStats:
        """Rebuild from :meth:`as_dict` output (derived keys ignored).

        The symmetric half of the worker-aggregation round-trip: a
        worker ships ``as_dict()`` over its pipe, the parent rebuilds
        with ``from_dict`` and folds it in with :meth:`merge`.
        """
        stats = cls(
            queries_served=int(doc.get("queries_served", 0)),
            batches=int(doc.get("batches", 0)),
            cache_hits=int(doc.get("cache_hits", 0)),
            cache_misses=int(doc.get("cache_misses", 0)),
            deduplicated=int(doc.get("deduplicated", 0)),
            elapsed_seconds=float(doc.get("elapsed_seconds", 0.0)),
            pool_workers=int(doc.get("pool_workers", 0)),
            bytes_shipped=int(doc.get("bytes_shipped", 0)),
            worker_respawns=int(doc.get("worker_respawns", 0)),
            worker_timeouts=int(doc.get("worker_timeouts", 0)),
            worker_retries=int(doc.get("worker_retries", 0)),
            degraded_responses=int(doc.get("degraded_responses", 0)),
            breaker_opens=int(doc.get("breaker_opens", 0)),
            replica_failovers=int(doc.get("replica_failovers", 0)),
            respawns_by_cause={
                str(cause): int(n)
                for cause, n in (doc.get("respawns_by_cause") or {}).items()
            },
            adaptive_probes=int(doc.get("adaptive_probes", 0)),
            radius_estimates=int(doc.get("radius_estimates", 0)),
            recalibrations=int(doc.get("recalibrations", 0)),
            strategy_counts={
                key[len("strategy_"):]: int(value)
                for key, value in doc.items()
                if key.startswith("strategy_")
            },
        )
        if doc.get("latency"):
            stats.latency = LatencyHistogram.from_dict(doc["latency"])
        for stage, entry in (doc.get("stages") or {}).items():
            stats.stage_seconds[stage] = float(entry["seconds"])
            stats.stage_calls[stage] = int(entry.get("calls", 0))
        stats.gauges = {name: float(value) for name, value in (doc.get("gauges") or {}).items()}
        return stats
