"""The shard-serving loop and its standalone TCP host.

Historically the op loop lived inside the worker process entry point
(:func:`repro.service.workers._worker_main`).  Networked serving needs
the *same* loop — same ops, same fault hooks, same telemetry — behind a
socket, so this module owns it:

* :class:`ShardState` — the opened shards: mmap'd frozen indexes,
  per-shard batch engines, worker-local :class:`~repro.service.stats.ServiceStats`,
  and the applied-seq sets that make replicated inserts idempotent.
* :func:`open_shard_state` — reopen saved frozen shards exactly like a
  pool worker does (``np.load(mmap_mode="r")``; O(mmap) startup).
* :func:`serve_connection` — the request/reply loop over any
  pipe-shaped connection (a ``multiprocessing`` pipe end or a
  :class:`~repro.service.transport.ServerConnection`), fault injection
  included.
* :class:`ShardServer` — a TCP listener serving :func:`serve_connection`
  sessions (``repro.cli shard-serve``); clients connect with
  :class:`~repro.service.transport.TcpTransport`.

Insert idempotence
------------------
With replica sets, one logical insert reaches a shard's state through
up to three paths: the serving request, the parent's broadcast to the
other replicas, and the replay log on reconnect.  The parent stamps
every insert with a per-shard monotonically increasing ``seq``;
:class:`ShardState` keeps the set of applied seqs per shard and applies
each at most once, so overlapping delivery paths *converge* instead of
double-inserting.  Seq-less inserts (the pre-replica wire shape) are
applied unconditionally.

The TCP server outlives client connections: its fault-plan op indices
are counted across sessions (the plan's ``lifetime`` scope), and its
applied-seq sets persist across reconnects — which is exactly what lets
the replay log re-converge a replica without double-applying the
inserts it already saw.

Multi-host caveat: ``save_shard`` writes to a path on the *server's*
filesystem.  Saves and checkpoints through a :class:`TcpTransport` are
therefore only meaningful when client and server share that filesystem
(single host, NFS); a failed multi-shard insert batch likewise can only
be rolled back on locally spawned replicas — remote endpoints that may
have applied part of it are quarantined instead (see
``WorkerPool.insert``).
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
import time

import numpy as np

from repro.core.cost_model import CostModel
from repro.core.results import QueryResult, QueryStats, Strategy
from repro.distances import get_metric
from repro.faults import send_reply, swallow_request
from repro.service.stats import ServiceStats
from repro.service.transport import FrameError, ServerConnection

__all__ = [
    "ShardState",
    "ShardServer",
    "open_shard_state",
    "serve_connection",
]


def _shard_dir(path: str, shard: int) -> str:
    """Absolute shard directory, named by the one true layout source.

    The artifact layout (meta file, gids archive, shard dir scheme) is
    owned by :mod:`repro.api.persist`; imported lazily to keep this
    module free of api-layer imports at load time.
    """
    from repro.api.persist import _frozen_shard_dir

    return os.path.join(path, _frozen_shard_dir(shard))


def _pack_result(result: QueryResult):
    """QueryResult -> plain tuple (cheap to pickle across the wire)."""
    s = result.stats
    return (
        np.asarray(result.ids),
        np.asarray(result.distances),
        (
            s.num_collisions,
            s.estimated_candidates,
            s.exact_candidates,
            s.estimated_lsh_cost,
            s.linear_cost,
            s.strategy.value,
            s.probes_used,
            s.exact,
        ),
    )


def _unpack_result(packed, radius: float) -> QueryResult:
    ids, distances, stats_tuple = packed
    # Length-tolerant: the pre-adaptive wire shape carried 6 stats
    # entries; current endpoints append (probes_used, exact).
    nc, est, exact_cands, lsh_cost, lin_cost, strategy = stats_tuple[:6]
    probes_used = int(stats_tuple[6]) if len(stats_tuple) > 6 else -1
    is_exact = bool(stats_tuple[7]) if len(stats_tuple) > 7 else False
    stats = QueryStats(
        num_collisions=int(nc),
        estimated_candidates=float(est),
        exact_candidates=int(exact_cands),
        estimated_lsh_cost=float(lsh_cost),
        linear_cost=float(lin_cost),
        strategy=Strategy(strategy),
        probes_used=probes_used,
        exact=is_exact,
    )
    return QueryResult(ids=ids, distances=distances, radius=radius, stats=stats)


def _payload_nbytes(obj) -> int:
    """Array bytes inside a wire message/reply (the dominant wire cost).

    Counts every ndarray reachable through the tuples/lists/dicts the
    worker protocol ships; scalar envelope overhead is ignored — the
    counter answers "how much data crossed the wire", not "how many
    pickle bytes".
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, tuple | list):
        return sum(_payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(value) for value in obj.values())
    return 0


class ShardState:
    """Opened shards plus the session-spanning serving state.

    ``lock`` serialises op execution: a pipe worker is single-threaded,
    but the TCP server may briefly overlap an old and a new connection
    around a reconnect, and the engines are not thread-safe.
    """

    def __init__(self, shard_ids: list[int], indexes: dict, engines: dict,
                 metric, stats: ServiceStats) -> None:
        self.shard_ids = list(shard_ids)
        self.indexes = indexes
        self.engines = engines
        self.metric = metric
        self.stats = stats
        self.lock = threading.Lock()
        #: per-shard set of applied insert seqs (idempotence under
        #: broadcast + replay delivery; see module docstring).
        self.applied_seqs: dict[int, set[int]] = {s: set() for s in shard_ids}
        #: engine recalibration total at the last ``reset`` op, so the
        #: ``stats`` op reports a delta (the engines' own counters are
        #: lifetime values that cannot be zeroed in place).
        self._recal_baseline = 0

    def sizes(self) -> dict[int, int]:
        return {s: self.indexes[s].n for s in self.shard_ids}

    def handle(self, message) -> object:
        """Execute one protocol op; application errors become replies."""
        from repro.distances.matrix import pairwise_distances
        from repro.index.frozen import save_frozen_index

        op = message[0]
        try:
            with self.lock:
                if op == "radius":
                    # Length-tolerant: the pre-adaptive wire shape has 4
                    # elements; current parents append the adaptive
                    # policy document (or None) as a 5th.
                    _, shards, queries, radius = message[:4]
                    adaptive = None
                    if len(message) > 4 and message[4] is not None:
                        from repro.core.adaptive import AdaptivePolicy

                        adaptive = AdaptivePolicy.from_dict(message[4])
                    started = time.perf_counter()
                    reply = {
                        s: [
                            _pack_result(r)
                            for r in self.engines[s].query_batch(
                                queries, radius, adaptive=adaptive
                            )
                        ]
                        for s in shards
                    }
                    # Strategy counts tally the *shard-local* dispatch
                    # decisions, so with multiple owned shards they sum
                    # to queries x shards, not queries_served.
                    strategies: dict[str, int] = {}
                    for packed_results in reply.values():
                        for packed in packed_results:
                            name = Strategy(packed[2][5]).value
                            strategies[name] = strategies.get(name, 0) + 1
                    self.stats.record_batch(
                        queries.shape[0], time.perf_counter() - started,
                        strategies=strategies,
                    )
                    return reply
                if op == "topk_block":
                    _, shards, queries = message
                    started = time.perf_counter()
                    reply = {
                        s: pairwise_distances(
                            queries, self.indexes[s].points, self.metric
                        )
                        for s in shards
                    }
                    self.stats.record_batch(
                        queries.shape[0], time.perf_counter() - started
                    )
                    return reply
                if op == "insert":
                    if len(message) == 4:
                        _, s, points, seq = message
                    else:
                        _, s, points = message
                        seq = None
                    applied = self.applied_seqs[s]
                    if seq is None or seq not in applied:
                        self.indexes[s].insert(points)
                        if seq is not None:
                            applied.add(seq)
                    return self.indexes[s].n
                if op == "save_shard":
                    _, s, target = message
                    save_frozen_index(self.indexes[s], target)
                    return True
                if op == "shard_sizes":
                    return self.sizes()
                if op == "stats":
                    total = sum(e.recalibrations for e in self.engines.values())
                    self.stats.set_recalibrations(
                        max(0, total - self._recal_baseline)
                    )
                    return self.stats.as_dict()
                if op == "reset":
                    # Zero this endpoint's worker-local stats; the
                    # facade's reset_stats broadcasts this so a snapshot
                    # right after a reset reads all-zero workers too.
                    self._recal_baseline = sum(
                        e.recalibrations for e in self.engines.values()
                    )
                    self.stats.reset()
                    return True
                if op == "ping":
                    return "pong"
                return ("error", f"unknown worker op: {op!r}")
        except Exception as exc:
            return ("error", f"{type(exc).__name__}: {exc}")


def open_shard_state(path: str, shard_ids: list[int], spec_doc: dict,
                     alpha: float, beta: float) -> ShardState:
    """Reopen saved frozen shards via mmap — the worker startup path.

    Lazy api-layer imports keep module load light (and keep ``spawn``
    start-method workers importable without the full facade).
    """
    from repro.api.facade import _resolve_estimator
    from repro.api.spec import IndexSpec
    from repro.core.hybrid import HybridSearcher
    from repro.index.frozen import load_frozen_index
    from repro.service.batch import BatchQueryEngine

    spec = IndexSpec.from_dict(spec_doc)
    cost_model = CostModel(alpha=alpha, beta=beta)
    estimator = _resolve_estimator(spec)
    metric = get_metric(spec.metric)
    indexes = {}
    engines = {}
    for s in shard_ids:
        index = load_frozen_index(_shard_dir(path, s))
        searcher = HybridSearcher(index, cost_model, estimator=estimator)
        indexes[s] = index
        engines[s] = BatchQueryEngine(
            searcher, radius=spec.radius, dedup=spec.dedup
        )
    # Worker-local telemetry: latency histogram + counters for the
    # batches *this* endpoint answers, a bytes counter for its wire
    # payloads, and live gauges over its frozen shards.  The parent
    # fetches and exactly merges these via the ``stats`` op.
    stats = ServiceStats()
    frozen = [
        ix for ix in indexes.values()
        if hasattr(ix, "overflow_count") and hasattr(ix, "refreeze_count")
    ]
    if frozen:
        stats.gauge_hooks["overflow_points"] = lambda: float(
            sum(ix.overflow_count for ix in frozen)
        )
        stats.gauge_hooks["refreeze_generations"] = lambda: float(
            sum(ix.refreeze_count for ix in frozen)
        )
        stats.gauge_hooks["refreeze_seconds_total"] = lambda: float(
            sum(ix.refreeze_seconds_total for ix in frozen)
        )
    return ShardState(shard_ids, indexes, engines, metric, stats)


def serve_connection(conn, state: ShardState, injector) -> int:
    """Answer ops on ``conn`` until stop/EOF; returns ops consumed.

    ``conn`` is any pipe-shaped connection (bounded ``poll`` + ``recv``
    / ``send``).  ``injector`` is the per-session
    :class:`~repro.faults.FaultInjector` (or None): consulted once per
    received request — except ``stop``, which is honoured before the
    schedule so drills cannot block shutdown.  The return value lets a
    session-spanning host (:class:`ShardServer`) carry the op count
    into the next session's injector for ``lifetime``-scoped plans.
    """
    consumed = 0
    while True:
        # The idle wait is bounded so this loop re-checks the wire
        # instead of blocking forever on a parent that vanished without
        # a clean ``stop`` (the poll also satisfies the
        # ``deadline-required`` lint contract for service code).
        try:
            if not conn.poll(1.0):
                continue
            message = conn.recv()
        except (EOFError, OSError, FrameError):
            break
        op = message[0]
        if op == "stop":
            break
        fault = injector.next_fault() if injector is not None else None
        consumed += 1
        if fault is not None and swallow_request(fault):
            continue
        reply = state.handle(message)
        state.stats.bytes_shipped += (
            _payload_nbytes(message) + _payload_nbytes(reply)
        )
        try:
            if fault is not None:
                send_reply(conn, reply, fault)
            else:
                conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    with contextlib.suppress(OSError):
        conn.close()
    return consumed


class ShardServer:
    """A standalone TCP host for one artifact's shards.

    Opens ``shard_ids`` (default: all shards) from the saved artifact at
    ``path`` exactly like a pool worker, listens on ``host:port``
    (``port=0`` picks a free one, published as :attr:`port`), and runs
    one :func:`serve_connection` session per accepted client.  Each
    session starts with a ``("ready", {shard: n})`` ack — the same
    handshake a spawned worker sends — so
    :class:`~repro.service.workers.WorkerPool` treats connect and spawn
    uniformly.

    ``fault_plan`` / ``worker`` / ``replica`` wire the server into
    deterministic drills: the plan is filtered to this (worker, replica)
    endpoint and its op indices are counted across client sessions, so
    ``scope="lifetime"`` faults behave identically whether the endpoint
    is a process the pool respawns or a server clients reconnect to.
    """

    def __init__(
        self,
        path: str,
        shard_ids: list[int] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        fault_plan=None,
        worker: int = 0,
        replica: int = 0,
    ) -> None:
        from repro.api.persist import _META_FILE, _read_meta

        meta = _read_meta(os.path.join(path, _META_FILE))
        num_shards = int(meta["num_shards"])
        if shard_ids is None:
            shard_ids = list(range(num_shards))
        for s in shard_ids:
            if not 0 <= s < num_shards:
                from repro.exceptions import ConfigurationError

                raise ConfigurationError(
                    f"shard {s} out of range for a {num_shards}-shard artifact"
                )
        self.path = path
        self.shard_ids = list(shard_ids)
        self._fault_plan = fault_plan
        self._worker = worker
        self._replica = replica
        self._state = open_shard_state(
            path,
            self.shard_ids,
            meta["spec"],
            float(meta["cost_model"]["alpha"]),
            float(meta["cost_model"]["beta"]),
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._ops_lock = threading.Lock()
        self._ops_total = 0
        self._accept_thread: threading.Thread | None = None

    @property
    def state(self) -> ShardState:
        return self._state

    def start(self) -> ShardServer:
        """Serve in a background thread (in-process tests); returns self."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, name="repro-shard-server", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept clients until :meth:`close`; one thread per session."""
        # The accept wait is bounded so shutdown is prompt and the
        # listener never parks forever (deadline-required contract).
        self._listener.settimeout(0.5)
        while not self._stop.is_set():
            try:
                sock, _addr = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            session = threading.Thread(
                target=self._serve_one, args=(sock,), daemon=True
            )
            session.start()

    def _serve_one(self, sock: socket.socket) -> None:
        conn = ServerConnection(sock)
        try:
            conn.send(("ready", self._state.sizes()))
        except OSError:
            conn.close()
            return
        injector = None
        if self._fault_plan:
            with self._ops_lock:
                start = self._ops_total
            injector = self._fault_plan.for_worker(
                self._worker, replica=self._replica, start=start
            )
        consumed = serve_connection(conn, self._state, injector)
        with self._ops_lock:
            self._ops_total += consumed

    def close(self) -> None:
        """Stop accepting and release the listener (idempotent)."""
        self._stop.set()
        with contextlib.suppress(OSError):
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> ShardServer:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardServer(shards={self.shard_ids}, "
            f"addr={self.host}:{self.port})"
        )
