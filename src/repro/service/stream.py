"""JSON-lines request/response protocol over a served index.

One request per line, one response per line, in order.  The serving
target is an :class:`repro.api.Index` (or a legacy
:class:`~repro.service.service.QueryService`, which exposes the same
query surface):

* ``{"query": [..], "radius": 0.5}`` — an rNNR query (``radius``
  optional when the index has a default) → a protocol **v2** envelope
  ``{"v": 2, "ids": [...], "distances": [...], "found": n,
  "strategy": "lsh", "radius": r, "probes_used": p,
  "candidates_examined": c, "estimated_candidates": e, "exact": bool,
  "degraded": bool, "missing_shards": [..]}`` — the JSON rendering of
  :class:`repro.api.QueryOutcome`;
* ``{"query": [..], "k": 10}`` — a top-k query (same response shape,
  ordered by ascending distance);
* either query kind may add the adaptive-execution fields ``"adaptive"``
  (bool), ``"target_candidates"`` (int) and ``"quality_floor"`` (float
  in (0, 1]) — per-request overrides folded into the served index's
  :class:`~repro.core.adaptive.AdaptivePolicy`;
* either query kind may add ``"allow_partial": true`` to accept
  degraded answers when worker-pool shards are unavailable; a degraded
  response carries ``"degraded": true`` and ``"missing_shards": [..]``;
* passing ``proto=1`` (the CLI's ``--proto v1``) restores the legacy
  response body byte-for-byte: only ``ids`` / ``distances`` / ``found``
  / ``strategy``, with ``degraded`` / ``missing_shards`` appearing on
  degraded answers only and no ``"v"`` marker;
* ``{"op": "insert", "points": [[..], ..]}`` — add points →
  ``{"inserted": m, "ids": [...], "n": total}``;
* ``{"op": "stats"}`` — telemetry snapshot → the enriched
  :meth:`repro.api.Index.stats_snapshot` payload (counters, latency
  histogram, per-stage seconds, gauges, worker aggregation);
* ``{"op": "metrics"}`` — the same snapshot rendered in the Prometheus
  text exposition format → ``{"metrics": "..."}``;
* ``{"op": "spec"}`` — the served index's
  :class:`~repro.api.spec.IndexSpec` document → ``{"spec": {...}}``;
* ``{"op": "save", "path": "..."}`` — persist the served index →
  ``{"saved": path}``;
* ``{"op": "open", "path": "..."}`` — swap in an index saved earlier
  (:meth:`repro.api.Index.open`) → ``{"opened": path, "n": ..., "dim": ...}``;
* ``{"op": "create", "spec": {...}, "points": [[..], ..]}`` — build a
  fresh index from an inline spec document and data
  (:meth:`repro.api.Index.build`) → ``{"created": true, "n": ..., "dim": ...}``.

Consecutive radius-query lines are micro-batched: while more input is
already waiting (see ``more_ready``), up to ``batch_size`` of them are
answered with one engine batch (grouped by radius), which is where the
batched engine's throughput comes from; an idle interactive client
always gets its response immediately.  Malformed lines produce
``{"error": "..."}`` without disturbing neighbouring requests.

``python -m repro.cli serve`` wires this to stdin/stdout.
"""

from __future__ import annotations

import contextlib
import json
import queue as queue_mod
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Iterable, Iterator

import numpy as np

__all__ = ["serve_stream", "serve_stream_concurrent"]


#: The adaptive-execution override fields a query line may carry, as a
#: hashable group key: ``(adaptive, target_candidates, quality_floor)``.
_NO_ADAPTIVE = (None, None, None)


def _parse_query(
    request: dict, dim: int
) -> tuple[
    np.ndarray,
    float | None,
    int | None,
    bool,
    tuple[bool | None, int | None, float | None],
]:
    query = np.asarray(request["query"], dtype=np.float64)
    if query.ndim != 1 or query.shape[0] != dim:
        raise ValueError(f"query must be a flat list of {dim} numbers")
    radius = request.get("radius")
    k = request.get("k")
    if radius is not None and k is not None:
        raise ValueError("pass either radius or k, not both")
    if radius is not None:
        radius = float(radius)
        if not radius > 0:
            raise ValueError(f"radius must be > 0, got {radius}")
    if k is not None:
        k = int(k)
        if not k > 0:
            raise ValueError(f"k must be > 0, got {k}")
    allow_partial = bool(request.get("allow_partial", False))
    adaptive = request.get("adaptive")
    if adaptive is not None:
        adaptive = bool(adaptive)
    target_candidates = request.get("target_candidates")
    if target_candidates is not None:
        target_candidates = int(target_candidates)
        if not target_candidates > 0:
            raise ValueError(
                f"target_candidates must be > 0, got {target_candidates}"
            )
    quality_floor = request.get("quality_floor")
    if quality_floor is not None:
        quality_floor = float(quality_floor)
        if not 0.0 < quality_floor <= 1.0:
            raise ValueError(
                f"quality_floor must be in (0, 1], got {quality_floor}"
            )
    adaptive_key = (adaptive, target_candidates, quality_floor)
    return query, radius, k, allow_partial, adaptive_key


def _answer(result, proto: int = 2) -> str:
    if proto < 2:
        doc = {
            "ids": result.ids.tolist(),
            "distances": result.distances.tolist(),
            "found": result.output_size,
            "strategy": _strategy_of(result),
        }
        # Only degraded answers grow the two extra keys, so full-fidelity
        # v1 response lines stay byte-identical to the pre-fault protocol.
        if getattr(result, "degraded", False):
            doc["degraded"] = True
            doc["missing_shards"] = [int(s) for s in result.missing_shards]
        return json.dumps(doc)
    from repro.api.outcome import QueryOutcome

    if not isinstance(result, QueryOutcome):
        result = QueryOutcome.from_result(result)
    return json.dumps({"v": 2, "found": result.output_size, **result.as_dict()})


def _strategy_of(result) -> str:
    strategy = getattr(result, "strategy", None)
    if isinstance(strategy, str):  # QueryOutcome carries the plain string
        return strategy
    return result.stats.strategy.value


def _query_spec_kwargs(
    radius: float | None,
    allow_partial: bool,
    adaptive_key: tuple[bool | None, int | None, float | None],
) -> dict:
    adaptive, target_candidates, quality_floor = adaptive_key
    kwargs: dict = {}
    if radius is not None:
        kwargs["radius"] = radius
    if allow_partial:
        kwargs["allow_partial"] = True
    if adaptive is not None:
        kwargs["adaptive"] = adaptive
    if target_candidates is not None:
        kwargs["target_candidates"] = target_candidates
    if quality_floor is not None:
        kwargs["quality_floor"] = quality_floor
    return kwargs


def _flush(
    service,
    pending: list,
    proto: int = 2,
) -> list[str]:
    """Answer the buffered radius queries, one engine batch per group.

    Queries batch together only when they share the radius, the
    ``allow_partial`` choice and the adaptive-override fields.  An
    :class:`~repro.api.Index` target is queried through the spec front
    door (``index.query(QuerySpec(...))``, the envelope path); legacy
    duck-typed targets keep the plain ``query_batch(batch, radius)``
    call so pre-envelope services stay servable.
    """
    from repro.api.facade import Index
    from repro.api.spec import QuerySpec

    responses: list[str | None] = [None] * len(pending)
    groups: dict[tuple, list[int]] = {}
    for j, (_, radius, allow_partial, adaptive_key) in enumerate(pending):
        groups.setdefault((radius, allow_partial, adaptive_key), []).append(j)
    for (radius, allow_partial, adaptive_key), rows in groups.items():
        batch = np.stack([pending[j][0] for j in rows])
        try:
            if isinstance(service, Index):
                spec = QuerySpec(
                    batch, **_query_spec_kwargs(radius, allow_partial, adaptive_key)
                )
                results = list(service.query(spec))
            elif allow_partial:
                results = service.query_batch(batch, radius, allow_partial=True)
            else:
                results = service.query_batch(batch, radius)
        except Exception as exc:
            # e.g. no radius given and the engine has no default, or an
            # unavailable shard without allow_partial; the per-line
            # contract means the rest of the stream lives on.
            error = json.dumps({"error": f"query failed: {exc}"})
            for j in rows:
                responses[j] = error
            continue
        for j, result in zip(rows, results):
            responses[j] = _answer(result, proto)
    pending.clear()
    return responses


def _handle_op(state: dict, request: dict) -> str:
    """Dispatch a non-query op against the current serving target."""
    from repro.api.facade import Index
    from repro.api.spec import IndexSpec

    service = state["target"]
    op = request.get("op")
    if op == "stats":
        # An Index answers with the enriched snapshot (latency
        # histogram, stages, gauges, live worker aggregation); a legacy
        # QueryService falls back to the flat counter document.
        snapshot = getattr(service, "stats_snapshot", None)
        if snapshot is not None:
            return json.dumps(snapshot())
        return json.dumps(service.stats.as_dict())
    if op == "metrics":
        from repro.observability import prometheus_text

        snapshot = getattr(service, "stats_snapshot", None)
        doc = snapshot() if snapshot is not None else service.stats.as_dict()
        return json.dumps({"metrics": prometheus_text(doc)})
    if op == "insert":
        try:
            points = np.asarray(request["points"], dtype=np.float64)
            ids = service.insert(points)
        except Exception as exc:  # surface shape/validation problems per line
            return json.dumps({"error": f"insert failed: {exc}"})
        return json.dumps(
            {"inserted": int(ids.size), "ids": ids.tolist(), "n": service.n}
        )
    if op == "spec":
        spec = getattr(service, "spec", None)
        if spec is None:
            return json.dumps({"error": "the served index carries no spec"})
        return json.dumps({"spec": spec.to_dict()})
    if op == "save":
        try:
            path = str(request["path"])
            service.save(path)
        except Exception as exc:
            return json.dumps({"error": f"save failed: {exc}"})
        return json.dumps({"saved": path})
    if op == "open":
        try:
            path = str(request["path"])
            _swap_target(state, Index.open(path))
        except Exception as exc:
            return json.dumps({"error": f"open failed: {exc}"})
        return json.dumps(
            {"opened": path, "n": state["target"].n, "dim": state["target"].dim}
        )
    if op == "create":
        try:
            spec = IndexSpec.from_dict(request["spec"])
            points = np.asarray(request["points"], dtype=np.float64)
            _swap_target(state, Index.build(points, spec))
        except Exception as exc:
            return json.dumps({"error": f"create failed: {exc}"})
        return json.dumps(
            {"created": True, "n": state["target"].n, "dim": state["target"].dim}
        )
    return json.dumps({"error": f"unknown request: {sorted(request)}"})


def _swap_target(state: dict, new_target) -> None:
    """Replace the serving target, releasing any stream-owned old one.

    The caller's original index is never closed (they still own it);
    indexes the stream itself opened or created are closed on swap so a
    long-lived server cycling through ``open``/``create`` requests does
    not accumulate shard thread pools.
    """
    old, was_owned = state["target"], state["owned"]
    state["target"] = new_target
    state["owned"] = True
    if was_owned:
        old.close()


def serve_stream(
    service,
    lines: Iterable[str],
    batch_size: int = 64,
    more_ready: Callable[[], bool] | None = None,
    default_allow_partial: bool = False,
    proto: int = 2,
) -> Iterator[str]:
    """Yield one JSON response line per JSON request line, in order.

    ``service`` is an :class:`repro.api.Index` or a legacy
    :class:`~repro.service.service.QueryService`.  ``more_ready``
    reports whether further input is already waiting (e.g. a ``select``
    probe on stdin).  Queries are only buffered toward ``batch_size``
    while it returns ``True``; without it every query is answered
    immediately, so an interactive client that sends one request and
    waits never deadlocks — bulk pipes keep the micro-batching because
    their backlog keeps ``more_ready`` true.

    ``default_allow_partial=True`` (the CLI's ``--allow-partial``) opts
    every query line into degraded answers; individual requests can
    still ask for ``"allow_partial": true`` themselves, but cannot opt
    back out of a server-level default — partiality only ever widens.

    ``proto`` selects the response body: ``2`` (default) emits the
    :class:`~repro.api.QueryOutcome` envelope with a ``"v": 2`` marker;
    ``1`` emits the legacy body byte-for-byte.
    """
    state = {"target": service, "owned": False}
    pending: list = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            yield from _flush(state["target"], pending)
            yield json.dumps({"error": f"bad request: {exc}"})
            continue

        if "query" in request:
            try:
                query, radius, k, allow_partial, adaptive_key = _parse_query(
                    request, state["target"].dim
                )
            except (ValueError, TypeError) as exc:
                yield from _flush(state["target"], pending, proto)
                yield json.dumps({"error": str(exc)})
                continue
            allow_partial = allow_partial or default_allow_partial
            if k is not None:
                # Top-k requests are answered immediately (no batching
                # across k values); queued radius queries drain first to
                # keep responses aligned with request order.
                yield from _flush(state["target"], pending, proto)
                try:
                    yield _answer(
                        _topk(state["target"], query, k, allow_partial, adaptive_key),
                        proto,
                    )
                except Exception as exc:
                    yield json.dumps({"error": f"query failed: {exc}"})
                continue
            pending.append((query, radius, allow_partial, adaptive_key))
            if len(pending) >= batch_size or not (more_ready and more_ready()):
                yield from _flush(state["target"], pending, proto)
            continue

        # Non-query ops act on the index state, so drain queued queries
        # first to keep responses aligned with request order.
        yield from _flush(state["target"], pending, proto)
        yield _handle_op(state, request)
    yield from _flush(state["target"], pending, proto)


def _topk(
    target,
    query: np.ndarray,
    k: int,
    allow_partial: bool = False,
    adaptive_key: tuple[bool | None, int | None, float | None] = _NO_ADAPTIVE,
):
    """Answer one top-k request on an Index (or an Index-backed service)."""
    from repro.api.spec import QuerySpec

    if hasattr(target, "_index"):  # legacy QueryService delegate
        target = target._index
    kwargs = _query_spec_kwargs(None, allow_partial, adaptive_key)
    return target.query(QuerySpec(query, k=k, **kwargs))


def serve_stream_concurrent(
    service,
    lines: Iterable[str],
    batch_size: int = 64,
    window: int = 4,
    default_allow_partial: bool = False,
    proto: int = 2,
) -> Iterator[str]:
    """The concurrent front-end: overlapped batches, ordered responses.

    A reader thread drains ``lines`` into a queue so the serving loop
    always sees its real backlog; consecutive radius queries are grouped
    into batches of up to ``batch_size`` and submitted to a small thread
    pool with at most ``window`` batches in flight.  While one batch
    blocks — most productively on the worker-pool backend, where the
    parent thread just waits on pipe replies from the shard processes —
    the next batch is already being hashed.  Responses are emitted
    strictly in request order: in-flight futures are consumed in
    submission order, and every non-query line (ops, top-k, malformed
    input) acts as a barrier that drains the window first, exactly like
    the synchronous loop's flush discipline.

    Yields the same responses, in the same order, as
    :func:`serve_stream` over the same input; only the wall-clock
    overlap differs.  Result caching on the served index should be left
    off (or treated as best-effort) — the cache store itself is locked,
    but hit-rate accounting across overlapped batches is approximate.

    Failure containment: a batch whose worker died mid-flight must not
    stall the stream.  ``_flush`` already converts per-group engine
    failures into per-line errors, and anything that still escapes the
    future (pool shutdown, allocation failures) is converted here into
    one ``{"error": ...}`` line per buffered query, so responses stay
    aligned with requests and the loop keeps serving.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    state = {"target": service, "owned": False}
    inbox: queue_mod.Queue[object] = queue_mod.Queue(maxsize=max(4 * batch_size, 256))
    _EOF = object()
    stop = threading.Event()

    def _read_all() -> None:
        # Bounded puts checked against ``stop`` so the reader can always
        # exit: if the consumer loop dies (or the generator is closed)
        # with the inbox full, an unconditional put would pin this
        # thread — and whatever file handle ``lines`` wraps — forever.
        try:
            for line in lines:
                while not stop.is_set():
                    try:
                        inbox.put(line, timeout=0.1)
                        break
                    except queue_mod.Full:
                        continue
                if stop.is_set():
                    return
        finally:
            while not stop.is_set():
                try:
                    inbox.put(_EOF, timeout=0.1)
                    break
                except queue_mod.Full:
                    continue

    reader = threading.Thread(
        target=_read_all, name="repro-serve-reader", daemon=True
    )
    reader.start()
    executor = ThreadPoolExecutor(max_workers=window, thread_name_prefix="repro-serve")
    inflight: deque = deque()  # (future -> list[str], batch size), in order
    pending: list = []

    def _submit() -> None:
        if pending:
            batch = list(pending)
            pending.clear()
            target = state["target"]
            inflight.append(
                (executor.submit(_flush, target, batch, proto), len(batch))
            )

    def _results_of(future, count: int) -> list[str]:
        # A failed batch still owes exactly ``count`` response lines,
        # otherwise every later response in the stream is misaligned.
        try:
            return future.result()
        except Exception as exc:
            return [json.dumps({"error": f"query failed: {exc}"})] * count

    def _drain_completed():
        while inflight and inflight[0][0].done():
            yield from _results_of(*inflight.popleft())

    def _drain_all():
        _submit()
        while inflight:
            yield from _results_of(*inflight.popleft())

    try:
        while True:
            # While responses are in flight, poll the inbox instead of
            # blocking: an interactive client that sent one query and is
            # now waiting would otherwise deadlock against us — its
            # response sitting completed in the window, us blocked on
            # its next line (the concurrent analogue of the synchronous
            # loop's ``more_ready`` discipline).
            if inflight:
                try:
                    item = inbox.get(timeout=0.02)
                except queue_mod.Empty:
                    yield from _drain_completed()
                    continue
            else:
                item = inbox.get()
            if item is _EOF:
                break
            line = str(item).strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                yield from _drain_all()
                yield json.dumps({"error": f"bad request: {exc}"})
                continue

            if "query" in request:
                try:
                    query, radius, k, allow_partial, adaptive_key = _parse_query(
                        request, state["target"].dim
                    )
                except (ValueError, TypeError) as exc:
                    yield from _drain_all()
                    yield json.dumps({"error": str(exc)})
                    continue
                allow_partial = allow_partial or default_allow_partial
                if k is not None:
                    yield from _drain_all()
                    try:
                        yield _answer(
                            _topk(
                                state["target"], query, k,
                                allow_partial, adaptive_key,
                            ),
                            proto,
                        )
                    except Exception as exc:
                        yield json.dumps({"error": f"query failed: {exc}"})
                    continue
                pending.append((query, radius, allow_partial, adaptive_key))
                if len(pending) >= batch_size or inbox.empty():
                    # Full batch, or no backlog waiting: keep latency low
                    # by dispatching now (the synchronous loop's
                    # ``more_ready`` discipline, via the reader queue).
                    _submit()
                yield from _drain_completed()
                while len(inflight) >= window:
                    yield from _results_of(*inflight.popleft())
                continue

            # Ops mutate serving state: barrier on everything in flight.
            yield from _drain_all()
            yield _handle_op(state, request)
        yield from _drain_all()
    finally:
        stop.set()
        with contextlib.suppress(queue_mod.Empty):
            while True:
                inbox.get_nowait()
        reader.join(timeout=5.0)
        executor.shutdown(wait=True)
