"""JSON-lines request/response protocol over a :class:`QueryService`.

One request per line, one response per line, in order:

* ``{"query": [..], "radius": 0.5}`` — an rNNR query (``radius``
  optional when the engine has a default) →
  ``{"ids": [...], "distances": [...], "found": n, "strategy": "lsh"}``;
* ``{"op": "insert", "points": [[..], ..]}`` — add points →
  ``{"inserted": m, "ids": [...], "n": total}``;
* ``{"op": "stats"}`` — counters snapshot → the
  :meth:`~repro.service.service.ServiceStats.as_dict` payload.

Consecutive query lines are micro-batched: while more input is already
waiting (see ``more_ready``), up to ``batch_size`` of them are answered
with one engine batch (grouped by radius), which is where the batched
engine's throughput comes from; an idle interactive client always gets
its response immediately.  Malformed lines produce
``{"error": "..."}`` without disturbing neighbouring requests.

``python -m repro.cli serve`` wires this to stdin/stdout.
"""

from __future__ import annotations

import json
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.service.service import QueryService

__all__ = ["serve_stream"]


def _parse_query(request: dict, dim: int) -> tuple[np.ndarray, float | None]:
    query = np.asarray(request["query"], dtype=np.float64)
    if query.ndim != 1 or query.shape[0] != dim:
        raise ValueError(f"query must be a flat list of {dim} numbers")
    radius = request.get("radius")
    if radius is not None:
        radius = float(radius)
        if not radius > 0:
            raise ValueError(f"radius must be > 0, got {radius}")
    return query, radius


def _answer(result) -> str:
    return json.dumps(
        {
            "ids": result.ids.tolist(),
            "distances": result.distances.tolist(),
            "found": result.output_size,
            "strategy": result.stats.strategy.value,
        }
    )


def _flush(service: QueryService, pending: list[tuple[np.ndarray, float | None]]) -> list[str]:
    """Answer the buffered queries, one engine batch per distinct radius."""
    responses: list[str | None] = [None] * len(pending)
    by_radius: dict[float | None, list[int]] = {}
    for j, (_, radius) in enumerate(pending):
        by_radius.setdefault(radius, []).append(j)
    for radius, rows in by_radius.items():
        batch = np.stack([pending[j][0] for j in rows])
        try:
            results = service.query_batch(batch, radius)
        except Exception as exc:
            # e.g. no radius given and the engine has no default; the
            # per-line contract means the rest of the stream lives on.
            error = json.dumps({"error": f"query failed: {exc}"})
            for j in rows:
                responses[j] = error
            continue
        for j, result in zip(rows, results):
            responses[j] = _answer(result)
    pending.clear()
    return responses


def serve_stream(
    service: QueryService,
    lines: Iterable[str],
    batch_size: int = 64,
    more_ready: "Callable[[], bool] | None" = None,
) -> Iterator[str]:
    """Yield one JSON response line per JSON request line, in order.

    ``more_ready`` reports whether further input is already waiting
    (e.g. a ``select`` probe on stdin).  Queries are only buffered
    toward ``batch_size`` while it returns ``True``; without it every
    query is answered immediately, so an interactive client that sends
    one request and waits never deadlocks — bulk pipes keep the
    micro-batching because their backlog keeps ``more_ready`` true.
    """
    pending: list[tuple[np.ndarray, float | None]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            yield from _flush(service, pending)
            yield json.dumps({"error": f"bad request: {exc}"})
            continue

        if "query" in request:
            try:
                pending.append(_parse_query(request, service.dim))
            except (ValueError, TypeError) as exc:
                yield from _flush(service, pending)
                yield json.dumps({"error": str(exc)})
                continue
            if len(pending) >= batch_size or not (more_ready and more_ready()):
                yield from _flush(service, pending)
            continue

        # Non-query ops act on the index state, so drain queued queries
        # first to keep responses aligned with request order.
        yield from _flush(service, pending)
        op = request.get("op")
        if op == "stats":
            yield json.dumps(service.stats.as_dict())
        elif op == "insert":
            try:
                points = np.asarray(request["points"], dtype=np.float64)
                ids = service.insert(points)
            except Exception as exc:  # surface shape/validation problems per line
                yield json.dumps({"error": f"insert failed: {exc}"})
            else:
                yield json.dumps(
                    {"inserted": int(ids.size), "ids": ids.tolist(), "n": service.n}
                )
        else:
            yield json.dumps({"error": f"unknown request: {sorted(request)}"})
    yield from _flush(service, pending)
