"""LRU result cache keyed on quantised query vectors.

Real query streams repeat: the same user re-issues a search, popular
items are probed by many users, near-duplicate feature vectors abound.
:class:`QueryResultCache` exploits that with a bounded LRU map from
``(quantised query, radius)`` to the stored :class:`~repro.core.results.QueryResult`.

Quantisation rounds each coordinate to a multiple of ``quantum`` before
hashing, so queries within ``quantum / 2`` per coordinate share an
entry.  With the default tiny quantum this only canonicalises float
noise (and ``-0.0`` vs ``0.0``); pass a coarser quantum to trade exact
answers for hit rate, or ``quantum=0`` to key on raw bytes.

Every key carries a *shard tag* (default shard 0).  A sharded serving
layer stores each shard's partial answer under its own tag, so an
insert that touches only some shards can evict exactly those shards'
entries (:meth:`QueryResultCache.invalidate_shard`) and keep the rest
hot — instead of dropping the whole cache on every insert.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.core.results import QueryResult
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive_int

__all__ = ["QueryResultCache"]


class QueryResultCache:
    """Bounded LRU cache of query results.

    Parameters
    ----------
    maxsize:
        Maximum number of cached results; the least-recently-used entry
        is evicted past it.
    quantum:
        Coordinate quantisation step for key construction (``0`` keys
        on the exact float bytes).

    Notes
    -----
    Cached :class:`~repro.core.results.QueryResult` objects are returned
    by reference; callers must treat them as immutable.

    Examples
    --------
    >>> cache = QueryResultCache(maxsize=2)
    >>> import numpy as np
    >>> key = cache.make_key(np.array([1.0, 2.0]), radius=0.5)
    >>> cache.get(key) is None
    True
    """

    def __init__(self, maxsize: int = 1024, quantum: float = 1e-9) -> None:
        self.maxsize = check_positive_int(maxsize, "maxsize")
        if quantum < 0:
            raise ConfigurationError(f"quantum must be >= 0, got {quantum}")
        self.quantum = float(quantum)
        self._store: OrderedDict[bytes, QueryResult] = OrderedDict()
        # Store mutations are locked so the concurrent serving loop
        # (overlapped in-flight batches) can share one cache; the
        # OrderedDict relink in get()/put() is not atomic under threads.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    #: byte width of the shard tag prefixed to every key
    _TAG_BYTES = 4

    def make_key(self, query: np.ndarray, radius: float, shard: int = 0) -> bytes:
        """Build the cache key for one query vector, radius and shard tag."""
        query = np.ascontiguousarray(query, dtype=np.float64)
        if self.quantum:
            # + 0.0 canonicalises -0.0 so symmetric queries share a key.
            scaled = np.round(query / self.quantum) + 0.0
            # Quantised coordinates beyond int64 range (huge values, or
            # non-finite ones) would wrap/saturate in the cast and make
            # distinct queries collide; key those on the raw bytes.
            if np.all(np.abs(scaled) < 2**62):
                payload = b"q" + scaled.astype(np.int64).tobytes()
            else:
                payload = b"r" + query.tobytes()
        else:
            payload = b"r" + query.tobytes()
        return self._tag(shard) + np.float64(radius).tobytes() + payload

    def _tag(self, shard: int) -> bytes:
        return int(shard).to_bytes(self._TAG_BYTES, "little")

    def retag_key(self, key: bytes, shard: int) -> bytes:
        """The same (query, radius) key under a different shard tag.

        Cheaper than re-quantising the vector when one query needs a
        key per shard.
        """
        return self._tag(shard) + key[self._TAG_BYTES:]

    def invalidate_shard(self, shard: int) -> int:
        """Drop every entry tagged with ``shard``; returns the count dropped.

        Hit/miss counters are kept — unlike :meth:`clear`, this is a
        partial, consistency-driven eviction, not a reset.
        """
        tag = self._tag(shard)
        with self._lock:
            stale = [key for key in self._store if key[: self._TAG_BYTES] == tag]
            for key in stale:
                del self._store[key]
        return len(stale)

    def get(self, key: bytes) -> QueryResult | None:
        """Look up a key, refreshing its recency; counts the hit/miss."""
        with self._lock:
            result = self._store.get(key)
            if result is None:
                self.misses += 1
                return None
            self._store.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: bytes, result: QueryResult) -> None:
        """Store a result, evicting the LRU entry when full."""
        with self._lock:
            self._store[key] = result
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:
        return (
            f"QueryResultCache(size={len(self)}/{self.maxsize}, "
            f"quantum={self.quantum:g}, hit_rate={self.hit_rate:.2f})"
        )
