"""The legacy serving facade, rebased on :class:`repro.api.Index`.

:class:`QueryService` predates the spec-driven API; it now delegates
every request to an :class:`~repro.api.facade.Index` wrapped around the
given engine, keeping its public surface (``query`` / ``query_batch`` /
``insert`` / ``stats``) and counter semantics intact while inheriting
the facade's improvements — in particular per-shard cache invalidation
on insert instead of dropping the whole cache.

:class:`~repro.service.stats.ServiceStats` is re-exported here so
existing ``from repro.service import ServiceStats`` callers keep
working.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import QueryResult
from repro.service.batch import BatchQueryEngine
from repro.service.cache import QueryResultCache
from repro.service.sharded import ShardedHybridIndex
from repro.service.stats import ServiceStats

__all__ = ["QueryService", "ServiceStats"]


class QueryService:
    """Cache-fronted, stats-keeping query service over an engine.

    .. deprecated::
        New code should build a :class:`repro.api.Index` from an
        :class:`repro.api.IndexSpec`; this class is a thin delegate
        kept for existing callers.

    Parameters
    ----------
    engine:
        A :class:`~repro.service.batch.BatchQueryEngine` or
        :class:`~repro.service.sharded.ShardedHybridIndex`.
    cache:
        Optional :class:`~repro.service.cache.QueryResultCache`;
        ``None`` disables caching.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CostModel
    >>> from repro.service import BatchQueryEngine, QueryResultCache
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(400, 8))
    >>> engine = BatchQueryEngine.from_points(
    ...     points, metric="l2", radius=1.0, num_tables=6,
    ...     cost_model=CostModel.from_ratio(6.0), seed=1)
    >>> service = QueryService(engine, cache=QueryResultCache(maxsize=64))
    >>> _ = service.query(points[0]); _ = service.query(points[0])
    >>> service.stats.cache_hits
    1
    """

    def __init__(
        self,
        engine: BatchQueryEngine | ShardedHybridIndex,
        cache: QueryResultCache | None = None,
    ) -> None:
        # Imported here, not at module top: the facade sits above this
        # package (it builds on these engines), so a top-level import
        # would be circular during package initialisation.
        from repro.api.facade import Index

        self.engine = engine
        self.cache = cache
        self._index = Index.from_engine(engine, cache=cache)

    @property
    def stats(self) -> ServiceStats:
        """Running counters (kept by the wrapped :class:`~repro.api.Index`)."""
        return self._index.stats

    @stats.setter
    def stats(self, value: ServiceStats) -> None:
        # ``service.stats = ServiceStats()`` predates reset_stats();
        # keep the attribute writable for such callers.
        self._index.stats = value

    @property
    def n(self) -> int:
        """Number of served points."""
        return self._index.n

    @property
    def dim(self) -> int:
        """Expected query dimensionality."""
        return self._index.dim

    def query(self, query: np.ndarray, radius: float | None = None) -> QueryResult:
        """Answer one query (through the cache when one is attached)."""
        return self.query_batch(np.asarray(query)[None, :], radius)[0]

    def query_batch(
        self, queries: np.ndarray, radius: float | None = None
    ) -> list[QueryResult]:
        """Answer a query matrix; cache misses are batched to the engine."""
        return self._index.query_batch(queries, radius)

    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Insert points; only the affected shards' cache entries drop."""
        return self._index.insert(new_points)

    def reset_stats(self) -> None:
        """Zero the counters (cache contents are kept)."""
        self._index.reset_stats()

    def stats_snapshot(self) -> dict[str, object]:
        """The wrapped index's enriched telemetry document."""
        return self._index.stats_snapshot()

    def __repr__(self) -> str:
        cache = "off" if self.cache is None else f"{len(self.cache)}/{self.cache.maxsize}"
        return f"QueryService(engine={self.engine!r}, cache={cache})"
