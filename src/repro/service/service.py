"""The serving facade: engine + cache + counters behind one interface.

:class:`QueryService` accepts either a
:class:`~repro.service.batch.BatchQueryEngine` (single index) or a
:class:`~repro.service.sharded.ShardedHybridIndex` (both expose the
same ``query`` / ``query_batch`` / ``insert`` surface), threads every
request through the optional :class:`~repro.service.cache.QueryResultCache`,
and keeps the throughput counters a deployment wants to watch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.results import QueryResult
from repro.service.batch import BatchQueryEngine
from repro.service.cache import QueryResultCache
from repro.service.sharded import ShardedHybridIndex
from repro.utils.validation import check_matrix

__all__ = ["QueryService", "ServiceStats"]


@dataclass
class ServiceStats:
    """Running counters of a :class:`QueryService`."""

    queries_served: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: queries answered by an identical batch-mate's fresh result —
    #: engine work avoided, but not by the cache store.
    deduplicated: int = 0
    elapsed_seconds: float = 0.0
    strategy_counts: dict[str, int] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        """Average queries per second over the measured time."""
        return self.queries_served / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly snapshot."""
        return {
            "queries_served": self.queries_served,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "deduplicated": self.deduplicated,
            "elapsed_seconds": self.elapsed_seconds,
            "qps": self.qps,
            **{f"strategy_{name}": count for name, count in sorted(self.strategy_counts.items())},
        }


class QueryService:
    """Cache-fronted, stats-keeping query service over an engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.service.batch.BatchQueryEngine` or
        :class:`~repro.service.sharded.ShardedHybridIndex`.
    cache:
        Optional :class:`~repro.service.cache.QueryResultCache`;
        ``None`` disables caching.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CostModel
    >>> from repro.service import BatchQueryEngine, QueryResultCache
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(400, 8))
    >>> engine = BatchQueryEngine.from_points(
    ...     points, metric="l2", radius=1.0, num_tables=6,
    ...     cost_model=CostModel.from_ratio(6.0), seed=1)
    >>> service = QueryService(engine, cache=QueryResultCache(maxsize=64))
    >>> _ = service.query(points[0]); _ = service.query(points[0])
    >>> service.stats.cache_hits
    1
    """

    def __init__(
        self,
        engine: BatchQueryEngine | ShardedHybridIndex,
        cache: QueryResultCache | None = None,
    ) -> None:
        self.engine = engine
        self.cache = cache
        self.stats = ServiceStats()

    @property
    def n(self) -> int:
        """Number of served points."""
        return self.engine.n

    @property
    def dim(self) -> int:
        """Expected query dimensionality."""
        return self.engine.dim

    def query(self, query: np.ndarray, radius: float | None = None) -> QueryResult:
        """Answer one query (through the cache when one is attached)."""
        return self.query_batch(np.asarray(query)[None, :], radius)[0]

    def query_batch(
        self, queries: np.ndarray, radius: float | None = None
    ) -> list[QueryResult]:
        """Answer a query matrix; cache misses are batched to the engine."""
        started = time.perf_counter()
        queries = check_matrix(queries, dim=self.dim, name="queries")
        effective_radius = self.engine._resolve_radius(radius)
        results: list[QueryResult | None] = [None] * queries.shape[0]
        if self.cache is not None:
            keys = [self.cache.make_key(q, effective_radius) for q in queries]
            miss_rows: list[int] = []
            key_to_slot: dict[bytes, int] = {}
            duplicates: list[tuple[int, int]] = []
            for i, key in enumerate(keys):
                if key in key_to_slot:
                    # A batch-mate already carries this key: answer it
                    # once and share the result (popular-item storms)
                    # without touching the store's hit/miss counters.
                    duplicates.append((i, key_to_slot[key]))
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    results[i] = cached
                else:
                    key_to_slot[key] = len(miss_rows)
                    miss_rows.append(i)
            if miss_rows:
                fresh = self.engine.query_batch(queries[miss_rows], effective_radius)
                for i, result in zip(miss_rows, fresh):
                    results[i] = result
                    self.cache.put(keys[i], result)
                for i, slot in duplicates:
                    results[i] = fresh[slot]
            self.stats.cache_hits += (
                queries.shape[0] - len(miss_rows) - len(duplicates)
            )
            self.stats.cache_misses += len(miss_rows)
            self.stats.deduplicated += len(duplicates)
        else:
            results = self.engine.query_batch(queries, effective_radius)
        self.stats.queries_served += queries.shape[0]
        self.stats.batches += 1
        self.stats.elapsed_seconds += time.perf_counter() - started
        for result in results:
            name = result.stats.strategy.value
            self.stats.strategy_counts[name] = self.stats.strategy_counts.get(name, 0) + 1
        return results

    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Insert points and invalidate the cache (answers changed)."""
        ids = self.engine.insert(new_points)
        if self.cache is not None and ids.size:
            self.cache.clear()
        return ids

    def reset_stats(self) -> None:
        """Zero the counters (cache contents are kept)."""
        self.stats = ServiceStats()

    def __repr__(self) -> str:
        cache = "off" if self.cache is None else f"{len(self.cache)}/{self.cache.maxsize}"
        return f"QueryService(engine={self.engine!r}, cache={cache})"
