"""Query serving: batched dispatch, sharding, caching, and a wire protocol.

The core package answers one query at a time on one thread — faithful
to the paper's experimental protocol, but far from a serving system.
This subsystem turns the reproduction into a query-serving engine while
preserving the paper's semantics exactly:

* :class:`BatchQueryEngine` — answers a ``(q, d)`` query matrix with
  one fused hashing pass, a per-query Algorithm 2 cost decision, one
  grouped distance-matrix pass for all linear-bound queries, and
  vectorised Step-S2 deduplication for the LSH-bound ones.  Results are
  bit-identical to looping :meth:`~repro.core.hybrid.HybridSearcher.query`.
* :class:`ShardedHybridIndex` — partitions the dataset across ``K``
  shards, builds per-shard hybrid indexes in parallel via
  :mod:`concurrent.futures`, fans queries out, and merges per-shard
  answers with exact radius (disjoint union) and top-k semantics.
* :class:`QueryResultCache` — an LRU cache keyed on quantised query
  vectors, for workloads with repeated or near-duplicate queries.
* :class:`QueryService` — the facade gluing engine + cache + counters;
  :func:`serve_stream` speaks a JSON-lines request/response protocol on
  top of it (see ``python -m repro.cli serve``).
"""

from repro.service.batch import BatchQueryEngine
from repro.service.cache import QueryResultCache
from repro.service.service import QueryService, ServiceStats
from repro.service.sharded import ShardedHybridIndex
from repro.service.stream import serve_stream

__all__ = [
    "BatchQueryEngine",
    "ShardedHybridIndex",
    "QueryResultCache",
    "QueryService",
    "ServiceStats",
    "serve_stream",
]
