"""Query serving: batched dispatch, sharding, caching, and a wire protocol.

The core package answers one query at a time on one thread — faithful
to the paper's experimental protocol, but far from a serving system.
This subsystem turns the reproduction into a query-serving engine while
preserving the paper's semantics exactly:

* :class:`BatchQueryEngine` — answers a ``(q, d)`` query matrix with
  one fused hashing pass, a per-query Algorithm 2 cost decision, one
  grouped distance-matrix pass for all linear-bound queries, and
  vectorised Step-S2 deduplication for the LSH-bound ones.  Results are
  bit-identical to looping :meth:`~repro.core.hybrid.HybridSearcher.query`.
* :class:`ShardedHybridIndex` — partitions the dataset across ``K``
  shards, builds per-shard hybrid indexes in parallel via
  :mod:`concurrent.futures`, fans queries out, and merges per-shard
  answers with exact radius (disjoint union) and top-k semantics.
* :class:`QueryResultCache` — an LRU cache keyed on quantised query
  vectors (shard-tagged, so inserts evict only the touched shards'
  entries), for workloads with repeated or near-duplicate queries.
* :class:`WorkerPool` — true multi-core serving: ``K`` persistent
  worker *processes*, each opening the saved frozen shards zero-copy
  via ``np.load(mmap_mode="r")``, with exact parent-side merges —
  bit-identical to the thread fan-out (``IndexSpec(execution="processes")``).
  The pool talks to its shards through a :class:`ShardTransport` —
  :class:`PipeTransport` for locally spawned workers,
  :class:`TcpTransport` for standalone :class:`ShardServer` processes
  (``python -m repro.cli shard-serve``) — and can fan reads across
  replica endpoints with automatic failover.
* :class:`QueryService` — the legacy serving facade, now a thin
  delegate over :class:`repro.api.Index`; :func:`serve_stream` speaks
  a JSON-lines request/response protocol over an ``Index`` or a
  ``QueryService`` (see ``python -m repro.cli serve``), and
  :func:`serve_stream_concurrent` overlaps in-flight batches behind a
  reader thread while keeping responses in request order.

These are the engines the spec-driven :mod:`repro.api` front door
builds on; new code should start from :class:`repro.api.Index`.
"""

from repro.service.batch import BatchQueryEngine
from repro.service.cache import QueryResultCache
from repro.service.service import QueryService, ServiceStats
from repro.service.shard_server import ShardServer
from repro.service.sharded import ShardedHybridIndex
from repro.service.stream import serve_stream, serve_stream_concurrent
from repro.service.transport import PipeTransport, ShardTransport, TcpTransport
from repro.service.workers import WorkerPool

__all__ = [
    "BatchQueryEngine",
    "PipeTransport",
    "QueryResultCache",
    "QueryService",
    "ServiceStats",
    "ShardServer",
    "ShardTransport",
    "ShardedHybridIndex",
    "TcpTransport",
    "WorkerPool",
    "serve_stream",
    "serve_stream_concurrent",
]
