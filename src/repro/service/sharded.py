"""A sharded hybrid index: partition the data, fan out, merge exactly.

:class:`ShardedHybridIndex` splits the dataset round-robin across ``K``
disjoint shards and builds one paper-configured hybrid index per shard
(in parallel, via :class:`concurrent.futures.ThreadPoolExecutor` —
index construction is dominated by numpy kernels that release the GIL).
Each shard runs Algorithm 2 independently, so the cost decision adapts
to the *shard-local* density landscape, and each shard serves batches
through its own :class:`~repro.service.batch.BatchQueryEngine`.

Merge semantics are exact because the shards partition the dataset:

* **radius** queries are the disjoint union of the per-shard answers
  (every point is examined by exactly one shard);
* **top-k** queries are answered exactly — each shard computes its
  local distances with the metric's batch kernel and the global ``k``
  smallest are selected with deterministic ``(distance, id)``
  tie-breaking, so sharded top-k equals unsharded top-k (up to the
  kernel's summation-order ulps when two candidates are near-tied).

Point ids are global: shard-local ids are translated back through the
shard's id map, and :meth:`insert` routes new points round-robin while
extending those maps — batches issued after an insert see the new
points immediately (the per-shard engines re-read their index's point
matrix on every call, the same refresh-on-insert discipline as
:meth:`repro.core.hybrid.HybridSearcher._linear_scan`).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.calibration import calibrate_cost_model
from repro.core.cost_model import CostModel
from repro.core.hybrid import HybridLSH
from repro.core.linear_scan import exact_topk_results
from repro.core.results import QueryResult, QueryStats, Strategy
from repro.distances import get_metric
from repro.distances.matrix import pairwise_distances
from repro.exceptions import ConfigurationError
from repro.observability import StageTrace, stage_timer
from repro.service.batch import BatchQueryEngine
from repro.utils.rng import RandomState, spawn_rngs
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["ShardedHybridIndex", "default_fanout_width", "merge_radius_results"]


def default_fanout_width(num_shards: int) -> int:
    """Fan-out width that respects the machine: ``min(K, cpu count)``.

    More workers than cores only adds scheduling overhead — each shard
    task is CPU-bound — and more workers than shards would sit idle.
    Shared by the thread fan-out here and the process pool in
    :mod:`repro.service.workers`.
    """
    return max(1, min(int(num_shards), os.cpu_count() or 1))


def merge_radius_results(
    shard_gids: list[np.ndarray], shard_results: list[QueryResult], radius: float
) -> QueryResult:
    """Merge one query's per-shard local radius answers into the global one.

    The shards partition the dataset, so the global answer is the
    disjoint union of the local answers with shard-local ids translated
    through the id maps; stats are summed and the strategy labelled
    :attr:`~repro.core.results.Strategy.HYBRID`.  Shared by the
    thread-pool and process-pool serving paths so both merge — and
    tie-break — identically.
    """
    ids = np.concatenate(
        [gids[res.ids] for gids, res in zip(shard_gids, shard_results)]
    )
    distances = np.concatenate([res.distances for res in shard_results])
    order = np.argsort(ids, kind="stable")
    exact = [res.stats.exact_candidates for res in shard_results]
    probes = [res.stats.probes_used for res in shard_results]
    stats = QueryStats(
        num_collisions=sum(res.stats.num_collisions for res in shard_results),
        estimated_candidates=float(
            sum(res.stats.estimated_candidates for res in shard_results)
        ),
        exact_candidates=sum(exact) if all(e >= 0 for e in exact) else -1,
        estimated_lsh_cost=float(
            sum(res.stats.estimated_lsh_cost for res in shard_results)
        ),
        linear_cost=float(sum(res.stats.linear_cost for res in shard_results)),
        strategy=Strategy.HYBRID,
        # Summed probe rings across shards (each shard probes its own
        # tables); untracked (-1) anywhere poisons the sum, like
        # exact_candidates.  The merged answer is exact only if every
        # shard's part was.
        probes_used=sum(probes) if all(p >= 0 for p in probes) else -1,
        exact=all(res.stats.exact for res in shard_results),
    )
    return QueryResult(
        ids=ids[order], distances=distances[order], radius=radius, stats=stats
    )


class ShardedHybridIndex:
    """``K`` disjoint hybrid indexes behind one query interface.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix; row ``i`` keeps the global id ``i``.
    metric:
        Metric name (``"l2"``, ``"l1"``, ``"cosine"``, ``"hamming"``,
        ``"jaccard"``).
    radius:
        Radius the per-shard indexes are tuned for (also the default
        query radius).
    num_shards:
        ``K``; must not exceed ``n``.
    num_tables / delta / hll_precision:
        Per-shard index parameters (paper defaults).
    cost_model:
        Shared :class:`~repro.core.cost_model.CostModel`; ``None``
        calibrates once on the full dataset (not per shard — alpha and
        beta are hardware constants, not data constants).
    max_workers:
        Thread-pool width for shard builds and query fan-out; the
        default is ``min(K, os.cpu_count())`` — more threads than cores
        only adds scheduling overhead for CPU-bound shard work.
    index_factory:
        Optional ``factory(shard_points, rng) -> HybridLSH`` used to
        build each shard instead of the paper-preset construction
        (spec-driven custom families/parameters route through this).
    layout:
        ``"dict"`` (default) keeps the mutable bucket layout;
        ``"frozen"`` compacts every shard's index into the CSR layout
        (:meth:`~repro.index.lsh_index.LSHIndex.freeze`) after build.
    seed:
        Master randomness; per-shard family draws use spawned streams.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CostModel
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(600, 12))
    >>> sharded = ShardedHybridIndex(
    ...     points, metric="l2", radius=1.0, num_shards=3,
    ...     num_tables=6, cost_model=CostModel.from_ratio(6.0), seed=1)
    >>> int(sharded.query(points[17]).ids[0])
    17
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: str,
        radius: float,
        num_shards: int = 4,
        num_tables: int = 50,
        delta: float = 0.1,
        hll_precision: int = 7,
        cost_model: CostModel | None = None,
        max_workers: int | None = None,
        seed: RandomState = None,
        estimator=None,
        dedup: str = "vectorized",
        layout: str = "dict",
        index_factory=None,
    ) -> None:
        points = check_matrix(points, name="points")
        num_shards = check_positive_int(num_shards, "num_shards")
        if layout not in ("dict", "frozen"):
            raise ConfigurationError(
                f'layout must be "dict" or "frozen", got {layout!r}'
            )
        n = points.shape[0]
        if num_shards > n:
            raise ConfigurationError(
                f"num_shards ({num_shards}) must not exceed the dataset size ({n})"
            )
        self.metric_name = metric
        self.metric = get_metric(metric)
        self.radius = float(radius)
        self.num_shards = num_shards
        self._max_workers = (
            max_workers if max_workers is not None else default_fanout_width(num_shards)
        )
        # Round-robin partition: shard s owns global rows s, s+K, s+2K, …
        # (balanced to within one point, and insert routing stays trivial).
        self._shard_gids = [
            np.arange(s, n, num_shards, dtype=np.int64) for s in range(num_shards)
        ]
        self._next_shard = n % num_shards
        if cost_model is None:
            cost_model = calibrate_cost_model(points, self.metric, seed=seed).model
        self.cost_model = cost_model
        shard_rngs = spawn_rngs(seed, num_shards)

        def build_shard(s: int) -> HybridLSH:
            if index_factory is not None:
                # Spec-driven custom builds (named family, explicit k,
                # bucket width, lazy threshold, ...) route each shard
                # through the caller's factory with its spawned stream.
                hybrid = index_factory(points[self._shard_gids[s]], shard_rngs[s])
            else:
                hybrid = HybridLSH(
                    points[self._shard_gids[s]],
                    metric=metric,
                    radius=radius,
                    num_tables=num_tables,
                    delta=delta,
                    hll_precision=hll_precision,
                    cost_model=cost_model,
                    seed=shard_rngs[s],
                    estimator=estimator,
                )
            if layout == "frozen":
                hybrid.freeze()
            return hybrid

        # One persistent pool for builds and every later fan-out; a
        # per-call pool would put K thread spawns on the serving hot
        # path.  Threads are started lazily and reaped at interpreter
        # exit; close() releases them earlier.
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="repro-shard"
        )
        self.shards = list(self._pool.map(build_shard, range(num_shards)))
        self._engines = [
            BatchQueryEngine(shard.searcher, radius=radius, dedup=dedup)
            for shard in self.shards
        ]

    @classmethod
    def from_state(
        cls,
        shards: list[HybridLSH],
        shard_gids: list[np.ndarray],
        metric: str,
        radius: float,
        cost_model: CostModel,
        next_shard: int = 0,
        max_workers: int | None = None,
        dedup: str = "vectorized",
    ) -> ShardedHybridIndex:
        """Reassemble a sharded index from prebuilt per-shard searchers.

        Persistence (:meth:`repro.api.Index.open`) loads each shard's
        :class:`~repro.index.lsh_index.LSHIndex` from disk, wraps it via
        :meth:`~repro.core.hybrid.HybridLSH.from_index`, and hands the
        pieces here — no rehashing, so answers are bit-identical to the
        instance that was saved.
        """
        if len(shards) != len(shard_gids) or not shards:
            raise ConfigurationError(
                f"need matching non-empty shards/gid lists, got "
                f"{len(shards)}/{len(shard_gids)}"
            )
        self = cls.__new__(cls)
        self.metric_name = metric
        self.metric = get_metric(metric)
        self.radius = float(radius)
        self.num_shards = len(shards)
        self._max_workers = (
            max_workers
            if max_workers is not None
            else default_fanout_width(self.num_shards)
        )
        self._shard_gids = [np.asarray(g, dtype=np.int64) for g in shard_gids]
        self._next_shard = int(next_shard) % self.num_shards
        self.cost_model = cost_model
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="repro-shard"
        )
        self.shards = list(shards)
        self._engines = [
            BatchQueryEngine(shard.searcher, radius=self.radius, dedup=dedup)
            for shard in self.shards
        ]
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total number of indexed points across all shards."""
        return sum(shard.index.n for shard in self.shards)

    @property
    def max_workers(self) -> int:
        """The chosen fan-out width (threads serving the shard batches)."""
        return self._max_workers

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self.shards[0].index.dim

    def gather_points(self) -> np.ndarray:
        """Reassemble the global ``(n, d)`` matrix (row ``i`` = id ``i``)."""
        out = np.empty((self.n, self.dim), dtype=self.shards[0].index.points.dtype)
        for gids, shard in zip(self._shard_gids, self.shards):
            out[gids] = shard.index.points
        return out

    def shard_sizes(self) -> list[int]:
        """Current per-shard point counts."""
        return [shard.index.n for shard in self.shards]

    @property
    def recalibrations(self) -> int:
        """Completed cost-model updates summed over the shard engines."""
        return sum(engine.recalibrations for engine in self._engines)

    def _resolve_radius(self, radius: float | None) -> float:
        return self.radius if radius is None else float(radius)

    def _fan_out(self, work, count: int) -> list:
        """Run ``work(s)`` for every shard on the persistent pool."""
        return list(self._pool.map(work, range(count)))

    def map_shards(self, work) -> list:
        """Run ``work(s)`` for every shard index ``s`` on the thread pool.

        The facade's per-shard cache layer uses this to compute only the
        missing shards' partial answers in parallel.
        """
        return self._fan_out(work, self.num_shards)

    def shard_query_batch(
        self, shard: int, queries: np.ndarray, radius: float, adaptive=None
    ) -> list[QueryResult]:
        """One shard's *local* radius answers (ids are shard-local).

        Feed the per-shard results of all shards to :meth:`merge_radius`
        to obtain the global answer; cached partials from unaffected
        shards stay valid across inserts because the shard id maps only
        ever grow.
        """
        return self._engines[shard].query_batch(queries, radius, adaptive=adaptive)

    def merge_radius(
        self, shard_results: list[QueryResult], radius: float
    ) -> QueryResult:
        """Merge one query's per-shard local results into the global answer."""
        return self._merge_radius(shard_results, radius)

    def peek_assignment(self, count: int) -> np.ndarray:
        """Shard ids the next ``count`` inserted points would be routed to."""
        return (self._next_shard + np.arange(count)) % self.num_shards

    def close(self) -> None:
        """Shut down the fan-out thread pool (idempotent)."""
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Radius queries
    # ------------------------------------------------------------------
    def query(self, query: np.ndarray, radius: float | None = None) -> QueryResult:
        """Answer one rNNR query across all shards."""
        return self.query_batch(np.asarray(query)[None, :], radius)[0]

    def query_batch(
        self,
        queries: np.ndarray,
        radius: float | None = None,
        trace: StageTrace | None = None,
        allow_partial: bool = False,
        adaptive=None,
    ) -> list[QueryResult]:
        """Answer a ``(q, d)`` matrix; per-shard batches run on the pool.

        ``allow_partial`` is accepted for surface parity with the
        process pool and ignored: thread-fan-out shards live in this
        process and cannot fail independently of it.

        Each merged result carries global ids sorted ascending — the
        disjoint union of the shard answers — and aggregate stats
        (collision counts and costs summed over shards, strategy
        labelled :attr:`~repro.core.results.Strategy.HYBRID`).

        With ``trace``, every shard accumulates into its *own*
        :class:`~repro.observability.StageTrace` (the hot path stays
        lock-free) and the per-shard traces are folded in afterwards —
        so stage seconds are summed CPU attribution across shards and
        may exceed the batch's wall time under parallel fan-out.
        """
        radius = self._resolve_radius(radius)
        queries = check_matrix(queries, dim=self.dim, name="queries")
        shard_traces = (
            [StageTrace() for _ in range(self.num_shards)] if trace is not None else None
        )
        per_shard = self._fan_out(
            lambda s: self._engines[s].query_batch(
                queries,
                radius,
                trace=None if shard_traces is None else shard_traces[s],
                adaptive=adaptive,
            ),
            self.num_shards,
        )
        if shard_traces is not None:
            for shard_trace in shard_traces:
                trace.merge(shard_trace)
        with stage_timer(trace, "merge"):
            return [
                self._merge_radius([shard_results[qi] for shard_results in per_shard], radius)
                for qi in range(queries.shape[0])
            ]

    def _merge_radius(self, shard_results: list[QueryResult], radius: float) -> QueryResult:
        return merge_radius_results(self._shard_gids, shard_results, radius)

    # ------------------------------------------------------------------
    # Top-k queries (exact)
    # ------------------------------------------------------------------
    def query_topk(self, query: np.ndarray, k: int) -> QueryResult:
        """Exact k-nearest-neighbors of one query (see :meth:`query_topk_batch`)."""
        return self.query_topk_batch(np.asarray(query)[None, :], k)[0]

    def query_topk_batch(
        self,
        queries: np.ndarray,
        k: int,
        trace: StageTrace | None = None,
        allow_partial: bool = False,
    ) -> list[QueryResult]:
        """Exact k-NN for a query matrix, merged across shards.

        ``allow_partial`` is accepted for surface parity with the
        process pool and ignored (in-process shards cannot fail
        independently).

        Every shard computes its local distance block with the metric's
        batch kernel; the global ``k`` smallest per query are selected
        with ``(distance, id)`` tie-breaking.  Results are ordered by
        ascending distance (ties by id) — *not* by id like radius
        results — and ``result.radius`` reports the k-th distance.
        """
        k = check_positive_int(k, "k")
        queries = check_matrix(queries, dim=self.dim, name="queries")
        if k > self.n:
            raise ConfigurationError(f"k ({k}) must not exceed the index size ({self.n})")
        with stage_timer(trace, "linear"):
            blocks = self._fan_out(
                lambda s: pairwise_distances(queries, self.shards[s].index.points, self.metric),
                self.num_shards,
            )
        with stage_timer(trace, "merge"):
            return exact_topk_results(np.concatenate(self._shard_gids), blocks, k, self.n)

    # ------------------------------------------------------------------
    # Incremental inserts
    # ------------------------------------------------------------------
    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Insert points, routing them round-robin across the shards.

        Returns the assigned global ids (``n .. n + m - 1``).  The next
        query — single, batched, or top-k — sees the new points: the
        per-shard id maps are extended here and the shard engines read
        their index's point matrix afresh on every call.
        """
        new_points = check_matrix(new_points, dim=self.dim, name="new_points")
        m = new_points.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        start = self.n
        global_ids = np.arange(start, start + m, dtype=np.int64)
        assignment = (self._next_shard + np.arange(m)) % self.num_shards
        for s in range(self.num_shards):
            rows = np.flatnonzero(assignment == s)
            if rows.size == 0:
                continue
            self.shards[s].index.insert(new_points[rows])
            self._shard_gids[s] = np.concatenate([self._shard_gids[s], global_ids[rows]])
        self._next_shard = (self._next_shard + m) % self.num_shards
        return global_ids

    def __repr__(self) -> str:
        return (
            f"ShardedHybridIndex(K={self.num_shards}, n={self.n}, "
            f"dim={self.dim}, metric={self.metric_name}, r={self.radius})"
        )
