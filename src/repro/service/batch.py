"""The batched query engine — the serving-side face of Algorithm 2.

:class:`BatchQueryEngine` wraps a :class:`~repro.core.hybrid.HybridSearcher`
and answers whole query matrices:

* Step S1 is one fused hashing kernel call for the entire batch
  (:meth:`~repro.index.lsh_index.LSHIndex.lookup_batch`);
* the cost decision of Algorithm 2 is still made *per query* — that is
  the paper's contribution and is preserved exactly;
* every query the model sends to linear search joins one grouped
  distance-matrix pass (:func:`~repro.distances.matrix.pairwise_distances`,
  the same kernel the single-query path calls row by row);
* every query the model sends to LSH search deduplicates its candidate
  buckets with the vectorised scatter instead of the paper's
  per-collision bitvector probe.

Both substitutions return bit-identical answers to the single-query
path; they only remove per-query Python overhead.  The deliberate
scalar dedup of :meth:`~repro.index.lsh_index.LSHIndex.candidate_ids`
models Equation (1)'s cost structure for the *experiments*; a serving
layer is exactly where collapsing that constant is appropriate.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import AdaptivePolicy, CostModelTuner
from repro.core.cost_model import CostModel
from repro.core.hybrid import HybridLSH, HybridSearcher
from repro.core.results import QueryResult, Strategy
from repro.exceptions import ConfigurationError
from repro.observability import StageTrace
from repro.utils.rng import RandomState

__all__ = ["BatchQueryEngine"]


class BatchQueryEngine:
    """Batched front-end over a hybrid searcher.

    Parameters
    ----------
    searcher:
        The :class:`~repro.core.hybrid.HybridSearcher` to serve from.
    radius:
        Default query radius (``None`` forces callers to pass one).
    dedup:
        Step-S2 deduplication used for LSH-bound queries; the default
        ``"vectorized"`` is the serving-appropriate implementation and
        returns the identical candidate sets as ``"scalar"``.

    Notes
    -----
    The engine never caches the data matrix: every batch re-reads
    ``searcher.index.points`` through the searcher's refresh-on-insert
    path (:meth:`HybridSearcher._linear_scan`), so answers always see
    points added by :meth:`insert` — the stale-``points`` hazard of a
    cached scan cannot occur.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CostModel
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(500, 16))
    >>> engine = BatchQueryEngine.from_points(
    ...     points, metric="l2", radius=1.5,
    ...     num_tables=8, cost_model=CostModel.from_ratio(6.0), seed=1)
    >>> results = engine.query_batch(points[:4])
    >>> [int(r.ids[0]) for r in results] == [0, 1, 2, 3]
    True
    """

    def __init__(
        self,
        searcher: HybridSearcher,
        radius: float | None = None,
        dedup: str = "vectorized",
    ) -> None:
        if dedup not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f'dedup must be "scalar" or "vectorized", got {dedup!r}'
            )
        self.searcher = searcher
        self.radius = None if radius is None else float(radius)
        self.dedup = dedup
        # Online cost-model recalibration state; created lazily by the
        # first batch whose AdaptivePolicy asks for it.
        self._tuner: CostModelTuner | None = None

    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        metric: str,
        radius: float,
        num_tables: int = 50,
        delta: float = 0.1,
        hll_precision: int = 7,
        cost_model: CostModel | None = None,
        seed: RandomState = None,
        dedup: str = "vectorized",
    ) -> BatchQueryEngine:
        """Build a paper-configured hybrid index and wrap it for serving."""
        hybrid = HybridLSH(
            points,
            metric=metric,
            radius=radius,
            num_tables=num_tables,
            delta=delta,
            hll_precision=hll_precision,
            cost_model=cost_model,
            seed=seed,
        )
        return cls(hybrid.searcher, radius=radius, dedup=dedup)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def index(self):
        """The underlying :class:`~repro.index.lsh_index.LSHIndex`."""
        return self.searcher.index

    @property
    def n(self) -> int:
        """Number of indexed points (reflects inserts immediately)."""
        return self.index.n

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self.index.dim

    def _resolve_radius(self, radius: float | None) -> float:
        if radius is not None:
            return float(radius)
        if self.radius is None:
            raise ConfigurationError(
                "no radius given and the engine has no default radius"
            )
        return self.radius

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def query(self, query: np.ndarray, radius: float | None = None) -> QueryResult:
        """Answer one query (a batch of size one)."""
        return self.query_batch(np.asarray(query)[None, :], radius)[0]

    def query_batch(
        self,
        queries: np.ndarray,
        radius: float | None = None,
        trace: StageTrace | None = None,
        adaptive: AdaptivePolicy | None = None,
    ) -> list[QueryResult]:
        """Answer a ``(q, d)`` query matrix.

        Returns exactly the same results (ids, distances, and decision
        stats) as looping :meth:`HybridSearcher.query` over the rows.
        ``trace`` opts into per-stage timing (forwarded to the searcher;
        answers are unaffected).  ``adaptive`` forwards an
        :class:`~repro.core.adaptive.AdaptivePolicy` to the searcher
        (per-query probe budgets) and, when the policy asks for
        ``recalibrate``, feeds the batch's observed per-stage timings
        into a :class:`~repro.core.adaptive.CostModelTuner` so
        subsequent batches dispatch with EWMA-recalibrated coefficients.
        """
        recalibrate = adaptive is not None and adaptive.enabled and adaptive.recalibrate
        inner_trace = trace
        if recalibrate and inner_trace is None:
            inner_trace = StageTrace()
        results = self.searcher.query_batch(
            np.asarray(queries),
            self._resolve_radius(radius),
            dedup=self.dedup,
            trace=inner_trace,
            adaptive=adaptive,
        )
        if recalibrate:
            self._observe_timings(results, inner_trace, adaptive)
        return results

    def _observe_timings(
        self,
        results: list[QueryResult],
        trace: StageTrace,
        adaptive: AdaptivePolicy,
    ) -> None:
        """Fold one batch's stage timings into the cost-model tuner."""
        tuner = self._tuner
        if tuner is None or tuner.ewma_weight != adaptive.ewma_weight:
            tuner = CostModelTuner(
                self.searcher.cost_model, ewma_weight=adaptive.ewma_weight
            )
            self._tuner = tuner
        linear_ops = sum(
            self.n for r in results if r.stats.strategy is Strategy.LINEAR
        )
        candidate_ops = sum(
            r.stats.exact_candidates
            for r in results
            if r.stats.strategy is Strategy.LSH and r.stats.exact_candidates >= 0
        )
        tuner.observe_batch(
            linear_ops,
            trace.seconds.get("linear", 0.0),
            candidate_ops,
            trace.seconds.get("candidates", 0.0),
        )
        self.searcher.cost_model = tuner.model

    @property
    def recalibrations(self) -> int:
        """Completed cost-model coefficient updates (0 when never tuned)."""
        return 0 if self._tuner is None else self._tuner.recalibrations

    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Add points to the served index; returns their assigned ids.

        Subsequent queries — single or batched — see the new points at
        once (the searcher refreshes its scan on the next query).
        """
        return self.index.insert(new_points)

    def __repr__(self) -> str:
        return (
            f"BatchQueryEngine(n={self.n}, dim={self.dim}, "
            f"radius={self.radius}, dedup={self.dedup!r})"
        )
