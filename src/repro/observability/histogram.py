"""A mergeable fixed-log-bucket latency histogram.

Serving latency spans decades — a cache hit answers in microseconds, a
linear-scan batch over a cold mmap in hundreds of milliseconds — so the
histogram buckets are *fixed* powers of ten subdivided logarithmically
(:data:`BUCKETS_PER_DECADE` buckets per decade from
``10**MIN_EXPONENT`` to ``10**MAX_EXPONENT`` seconds, plus an overflow
bucket).  Fixed edges are the whole design: every
:class:`LatencyHistogram` in the system — per worker process, per
shard, per serving front-end — shares the identical bucket boundaries,
so :meth:`merge` is integer addition of the count vectors and is
**exact**: merging per-worker histograms yields bit-for-bit the counts
of a single histogram fed the concatenated samples (the property the
observability tests pin with Hypothesis).

Quantiles are resolved to a bucket upper edge (a conservative bound, in
the Prometheus ``le`` style), which makes :meth:`quantile` deterministic
under merging and JSON round-trips.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np
import numpy.typing as npt

__all__ = ["LatencyHistogram", "BUCKETS_PER_DECADE", "MIN_EXPONENT", "MAX_EXPONENT"]

#: Log-bucket resolution: 5 buckets per decade => edges grow by 10**0.2
#: (~1.58x), i.e. quantiles are resolved to within ~58% relative error —
#: plenty for p50/p95/p99 reporting, cheap enough to ship over a pipe.
BUCKETS_PER_DECADE = 5
#: Smallest finite bucket edge is ``10**MIN_EXPONENT`` seconds (1 µs).
MIN_EXPONENT = -6
#: Largest finite bucket edge is ``10**MAX_EXPONENT`` seconds (100 s);
#: anything slower lands in the +Inf overflow bucket.
MAX_EXPONENT = 2

#: The shared, immutable bucket upper edges (seconds).  Computed once
#: from the exponent grid so every histogram everywhere — across
#: processes and JSON round-trips — agrees on the boundaries exactly.
_EDGES: npt.NDArray[np.float64] = np.power(
    10.0,
    np.arange(
        MIN_EXPONENT * BUCKETS_PER_DECADE,
        MAX_EXPONENT * BUCKETS_PER_DECADE + 1,
    )
    / BUCKETS_PER_DECADE,
)
_EDGES.setflags(write=False)

#: A scheme tag persisted with every snapshot; merging or loading counts
#: recorded under a different bucket layout would silently corrupt the
#: distribution, so mismatches are rejected loudly.
_SCHEME = f"log10[{MIN_EXPONENT}..{MAX_EXPONENT}]x{BUCKETS_PER_DECADE}"


class LatencyHistogram:
    """Counts of observed durations in fixed logarithmic buckets.

    Bucket ``i`` counts samples ``v`` with ``edges[i-1] < v <= edges[i]``
    (bucket 0 additionally absorbs everything below the smallest edge);
    the final bucket is the ``+Inf`` overflow.  All histograms share one
    edge vector, so :meth:`merge` is exact.

    Examples
    --------
    >>> h = LatencyHistogram()
    >>> for v in (0.001, 0.002, 0.2):
    ...     h.record(v)
    >>> h.count
    3
    >>> h.quantile(0.5) <= h.quantile(0.99)
    True
    >>> LatencyHistogram.from_dict(h.to_dict()).counts.tolist() == h.counts.tolist()
    True
    """

    __slots__ = ("counts", "total_seconds")

    counts: npt.NDArray[np.int64]
    total_seconds: float

    def __init__(self) -> None:
        self.counts = np.zeros(_EDGES.size + 1, dtype=np.int64)
        self.total_seconds = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, seconds: float, count: int = 1) -> None:
        """Record ``count`` samples of duration ``seconds``.

        ``count > 1`` attributes one measured wall time to several
        units of work — e.g. every query in a batch experienced the
        batch's latency — without ``count`` searchsorted calls.
        """
        idx = int(np.searchsorted(_EDGES, seconds, side="left"))
        self.counts[idx] += count
        self.total_seconds += float(seconds) * count

    def record_many(self, values: npt.ArrayLike) -> None:
        """Record an array of durations in one vectorised pass."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        idx = np.searchsorted(_EDGES, values, side="left")
        np.add.at(self.counts, idx, 1)
        self.total_seconds += float(values.sum())

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: LatencyHistogram) -> LatencyHistogram:
        """Fold ``other`` into this histogram (exact; returns self)."""
        self.counts += other.counts
        self.total_seconds += other.total_seconds
        return self

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total number of recorded samples."""
        return int(self.counts.sum())

    @property
    def mean(self) -> float:
        """Mean recorded duration (0.0 when empty)."""
        total = self.count
        return self.total_seconds / total if total else 0.0

    @staticmethod
    def bucket_edges() -> npt.NDArray[np.float64]:
        """The shared finite bucket upper edges, in seconds (read-only)."""
        return _EDGES

    def quantile(self, p: float) -> float:
        """Upper bound on the ``p``-quantile (a bucket edge; NaN when empty).

        Resolved as the smallest bucket edge whose cumulative count
        reaches ``ceil(p * count)`` — deterministic, monotone in ``p``,
        and stable under :meth:`merge` regrouping.  Samples in the
        overflow bucket resolve to ``inf``.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile p must be in [0, 1], got {p}")
        total = self.count
        if total == 0:
            return float("nan")
        target = max(1, math.ceil(p * total))
        cumulative = np.cumsum(self.counts)
        idx = int(np.searchsorted(cumulative, target, side="left"))
        return float(_EDGES[idx]) if idx < _EDGES.size else float("inf")

    def quantiles(self) -> dict[str, float]:
        """The standard reporting trio: p50 / p95 / p99 (seconds)."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot (counts + sum; edges are implied by scheme)."""
        return {
            "scheme": _SCHEME,
            "counts": self.counts.tolist(),
            "total_seconds": self.total_seconds,
            "count": self.count,
            **self.quantiles(),
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> LatencyHistogram:
        """Rebuild from :meth:`to_dict` output (exact counts)."""
        scheme = doc.get("scheme", _SCHEME)
        if scheme != _SCHEME:
            raise ValueError(
                f"histogram bucket scheme mismatch: got {scheme!r}, "
                f"expected {_SCHEME!r}"
            )
        counts = np.asarray(doc.get("counts", ()), dtype=np.int64)
        if counts.size != _EDGES.size + 1:
            raise ValueError(
                f"histogram has {counts.size} buckets; expected {_EDGES.size + 1}"
            )
        self = cls()
        self.counts = counts.copy()
        self.total_seconds = float(doc.get("total_seconds", 0.0))
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            bool(np.array_equal(self.counts, other.counts))
            and self.total_seconds == other.total_seconds
        )

    def __repr__(self) -> str:
        q = self.quantiles()
        return (
            f"LatencyHistogram(count={self.count}, "
            f"p50={q['p50']:.4g}, p99={q['p99']:.4g})"
        )
