"""Serving telemetry: latency histograms, stage tracing, and exposition.

This package is the measurement layer threaded through every serving
path (sequential, batched, sharded threads, worker processes).  It has
three deliberately small pieces:

- :class:`~repro.observability.histogram.LatencyHistogram` — fixed
  log-bucket counts that merge *exactly* across shards and processes;
- :class:`~repro.observability.tracing.StageTrace` /
  :func:`~repro.observability.tracing.stage_timer` — opt-in per-stage
  wall-time attribution with near-zero disabled cost;
- :func:`~repro.observability.prometheus.prometheus_text` — renders a
  ``ServiceStats`` snapshot in the Prometheus text exposition format.

Only numpy and the standard library are used, so any layer (including
worker subprocesses) can import it without ordering constraints.
"""

from .histogram import LatencyHistogram
from .prometheus import prometheus_text
from .tracing import STAGES, StageTrace, stage_timer

__all__ = [
    "LatencyHistogram",
    "StageTrace",
    "stage_timer",
    "STAGES",
    "prometheus_text",
]
