"""Render a stats snapshot in the Prometheus text exposition format.

The serving layers all report through ``ServiceStats.as_dict()`` (a
JSON-safe nested dict); :func:`prometheus_text` maps that snapshot onto
the `text format`__ scrape payload — counters as ``*_total``, the
latency histogram as cumulative ``le`` buckets with ``_sum``/``_count``,
stage and strategy attributions as labeled counters, and gauges as
plain gauges.  Keeping this a pure dict -> str function means the same
renderer serves the stream protocol's ``metrics`` op, the CLI, and any
future HTTP endpoint without touching live stats objects.

__ https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

from typing import Any

from .histogram import LatencyHistogram

__all__ = ["prometheus_text"]

#: Flat counter keys in ``as_dict`` output -> metric names.
_COUNTERS = {
    "queries_served": ("repro_queries_served_total", "Queries answered."),
    "batches": ("repro_batches_total", "Query batches executed."),
    "cache_hits": ("repro_cache_hits_total", "Result-cache hits."),
    "cache_misses": ("repro_cache_misses_total", "Result-cache misses."),
    "deduplicated": ("repro_deduplicated_total", "Duplicate queries folded by the batch dedup."),
    "bytes_shipped": ("repro_bytes_shipped_total", "Bytes of query/result payload crossing worker pipes."),
    "worker_respawns": ("repro_worker_respawns_total", "Pool workers respawned after a crash."),
    "worker_timeouts": ("repro_worker_timeouts_total", "Worker replies that missed their recv deadline."),
    "worker_retries": ("repro_worker_retries_total", "Requests re-sent after a worker transport failure."),
    "degraded_responses": ("repro_degraded_responses_total", "Responses served with one or more shards missing."),
    "breaker_opens": ("repro_breaker_opens_total", "Per-worker circuit breakers tripped open."),
    "replica_failovers": ("repro_replica_failovers_total", "Reads re-routed to a surviving replica after a transport failure."),
    "adaptive_probes": ("repro_adaptive_probes_total", "Queries answered under a bounded per-query probe budget."),
    "radius_estimates": ("repro_radius_estimates_total", "Top-k queries attempted via radius-from-k estimation."),
    "recalibrations": ("repro_recalibrations_total", "Completed online cost-model coefficient updates."),
}

_GAUGES = {
    "pool_workers": ("repro_pool_workers", "Configured fan-out width (threads or processes)."),
    "elapsed_seconds": ("repro_query_busy_seconds", "Accumulated wall time spent answering queries."),
}


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _sanitise_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(stats: dict[str, Any], prefix_comment: str | None = None) -> str:
    """Render a ``ServiceStats.as_dict()`` snapshot as Prometheus text.

    Unknown flat keys are ignored, so the renderer tolerates snapshots
    from older or newer stats schemas.  Returns a payload ending in a
    newline, as the exposition format requires.
    """
    lines: list[str] = []
    if prefix_comment:
        lines.append(f"# {prefix_comment}")

    for key, (name, help_text) in _COUNTERS.items():
        if key in stats:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format_value(stats[key])}")

    for key, (name, help_text) in _GAUGES.items():
        if key in stats:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(stats[key])}")

    respawns_by_cause = stats.get("respawns_by_cause") or {}
    if respawns_by_cause:
        name = "repro_worker_respawns_by_cause_total"
        lines.append(f"# HELP {name} Worker respawns keyed by trigger.")
        lines.append(f"# TYPE {name} counter")
        for cause in sorted(respawns_by_cause):
            label = _sanitise_label(str(cause))
            lines.append(
                f'{name}{{cause="{label}"}} '
                f"{_format_value(respawns_by_cause[cause])}"
            )

    strategies = {
        key[len("strategy_"):]: value
        for key, value in stats.items()
        if key.startswith("strategy_")
    }
    if strategies:
        name = "repro_strategy_queries_total"
        lines.append(f"# HELP {name} Queries answered per execution strategy.")
        lines.append(f"# TYPE {name} counter")
        for strategy in sorted(strategies):
            label = _sanitise_label(str(strategy))
            lines.append(
                f'{name}{{strategy="{label}"}} {_format_value(strategies[strategy])}'
            )

    stages = stats.get("stages") or {}
    if stages:
        sec_name = "repro_stage_seconds_total"
        call_name = "repro_stage_calls_total"
        lines.append(f"# HELP {sec_name} Wall seconds attributed to each pipeline stage (traced calls only).")
        lines.append(f"# TYPE {sec_name} counter")
        for stage, entry in stages.items():
            label = _sanitise_label(str(stage))
            lines.append(f'{sec_name}{{stage="{label}"}} {_format_value(entry["seconds"])}')
        lines.append(f"# HELP {call_name} Traced span entries per pipeline stage.")
        lines.append(f"# TYPE {call_name} counter")
        for stage, entry in stages.items():
            label = _sanitise_label(str(stage))
            lines.append(f'{call_name}{{stage="{label}"}} {_format_value(entry["calls"])}')

    for gauge, value in sorted((stats.get("gauges") or {}).items()):
        name = f"repro_{gauge}"
        lines.append(f"# HELP {name} Backend gauge {gauge}.")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")

    latency = stats.get("latency")
    if latency:
        histogram = LatencyHistogram.from_dict(latency)
        name = "repro_query_latency_seconds"
        lines.append(f"# HELP {name} Per-query serving latency (batch wall time attributed to each query).")
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        edges = LatencyHistogram.bucket_edges()
        for edge, bucket in zip(edges, histogram.counts[: edges.size]):
            cumulative += int(bucket)
            lines.append(f'{name}_bucket{{le="{_format_value(float(edge))}"}} {cumulative}')
        cumulative += int(histogram.counts[-1])
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_format_value(histogram.total_seconds)}")
        lines.append(f"{name}_count {cumulative}")

    return "\n".join(lines) + "\n"
