"""Per-stage wall-time attribution for the query pipeline.

A :class:`StageTrace` is an opt-in accumulator handed down the call
chain (facade -> batch engine -> hybrid searcher -> shard/worker
backends).  Each layer brackets its named pipeline stage with
:func:`stage_timer`; when no trace was requested the bracket degrades to
a shared no-op span, so the disabled path costs one ``is None`` check
and no allocation — tracing must be safe to leave compiled into every
serving layer.

Tracing observes, never steers: a span wraps timing around existing
computation and the traced code path is otherwise byte-identical to the
untraced one (the observability tests pin tracing-on == tracing-off
result bit-identity with Hypothesis).

Stage names are a closed vocabulary (:data:`STAGES`) so dashboards and
the Prometheus exposition can rely on stable label values:

``hash``
    LSH bucket key computation + table lookups.
``estimate``
    HyperLogLog candidate-size estimation + cost-model evaluation.
``candidates``
    Candidate gather, dedup, and exact distance filtering (LSH path).
``linear``
    Full linear scans for queries the cost model routed away from LSH.
``merge``
    Cross-shard / cross-worker result merging.
``ipc``
    Pipe round-trips to pool workers (includes worker compute time,
    since the parent only observes the blocking request/reply).
"""

from __future__ import annotations

import time
from types import TracebackType

__all__ = ["STAGES", "StageTrace", "stage_timer"]

#: The closed stage vocabulary, in pipeline order.
STAGES = ("hash", "estimate", "candidates", "linear", "merge", "ipc")


class StageTrace:
    """Accumulated seconds and call counts per pipeline stage.

    Not thread-safe by design: concurrent fan-outs give each branch its
    own trace and :meth:`merge` them afterwards (exactly like the
    latency histograms), which keeps the hot path free of locks.
    """

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, stage: str, seconds: float, calls: int = 1) -> None:
        """Attribute ``seconds`` of wall time to ``stage``."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds
        self.calls[stage] = self.calls.get(stage, 0) + calls

    def merge(self, other: StageTrace) -> StageTrace:
        """Fold another trace (e.g. a per-shard branch) into this one."""
        for stage, seconds in other.seconds.items():
            self.add(stage, seconds, other.calls.get(stage, 0))
        return self

    @property
    def total_seconds(self) -> float:
        """Sum of attributed time across all stages."""
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-friendly ``{stage: {seconds, calls}}`` in stable stage order."""
        known = [s for s in STAGES if s in self.seconds]
        extra = sorted(set(self.seconds) - set(STAGES))
        return {
            stage: {"seconds": self.seconds[stage], "calls": self.calls[stage]}
            for stage in known + extra
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{s}={v:.4g}s" for s, v in self.as_dict_flat().items())
        return f"StageTrace({parts})"

    def as_dict_flat(self) -> dict[str, float]:
        """``{stage: seconds}`` view used by stats accumulation."""
        return dict(self.seconds)


class _Span:
    """Context manager that adds its wall time to one trace stage."""

    __slots__ = ("_trace", "_stage", "_started")

    def __init__(self, trace: StageTrace, stage: str) -> None:
        self._trace = trace
        self._stage = stage
        self._started = 0.0

    def __enter__(self) -> _Span:
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._trace.add(self._stage, time.perf_counter() - self._started)


class _NullSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


def stage_timer(trace: StageTrace | None, stage: str) -> _Span | _NullSpan:
    """Bracket a pipeline stage: a timing span, or a no-op when untraced.

    Usage at every instrumentation point::

        with stage_timer(trace, "hash"):
            lookups = index.lookup_batch(queries)

    ``trace=None`` (the default everywhere) returns a shared singleton
    whose ``__enter__``/``__exit__`` do nothing, keeping disabled-path
    overhead to a single branch.
    """
    if trace is None:
        return _NULL_SPAN
    return _Span(trace, stage)
