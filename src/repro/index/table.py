"""A single LSH hash table: the buckets of one composite function.

Hashing itself lives in :class:`~repro.hashing.batched.BatchedHash`
(owned by the index, fused across tables); the table receives the
precomputed ``(n, k)`` hash-value matrix of its points and groups them
into buckets with one vectorised sort.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.composite import encode_rows
from repro.index.bucket import Bucket
from repro.sketches.hyperloglog import PrecomputedHllHashes

__all__ = ["HashTable"]


class HashTable:
    """One of the ``L`` tables of an :class:`~repro.index.lsh_index.LSHIndex`.

    Parameters
    ----------
    hll_precision, hll_seed, lazy_threshold:
        Bucket-sketch configuration, forwarded to every bucket; see
        :class:`~repro.index.bucket.Bucket`.
    with_sketches:
        ``False`` builds a plain LSH table with no sketches at all
        (the classic baseline the paper compares against).
    """

    def __init__(
        self,
        hll_precision: int = 7,
        hll_seed: int = 0,
        lazy_threshold: int | None = None,
        with_sketches: bool = True,
    ) -> None:
        self.hll_precision = int(hll_precision)
        self.hll_seed = int(hll_seed)
        self.lazy_threshold = lazy_threshold
        self.with_sketches = bool(with_sketches)
        self.buckets: dict[bytes, Bucket] = {}

    def insert_hashed(
        self, hash_matrix: np.ndarray, hashes: PrecomputedHllHashes | None
    ) -> None:
        """Group pre-hashed points into buckets (Algorithm 1 inner loop).

        Groups rows with one vectorised sort instead of n dict probes:
        ``np.unique(axis=0)`` yields the distinct buckets and an inverse
        map, and a stable argsort of the inverse map lays point ids out
        bucket-by-bucket.

        Parameters
        ----------
        hash_matrix:
            ``(n, k)`` composite hash values of this table; row ``i``
            belongs to point id ``i``.
        hashes:
            Precomputed HLL pairs for ids ``0..n-1``; ignored when the
            table was built with ``with_sketches=False``.
        """
        hash_matrix = np.asarray(hash_matrix)
        unique_rows, inverse = np.unique(hash_matrix, axis=0, return_inverse=True)
        keys = encode_rows(unique_rows)
        order = np.argsort(inverse, kind="stable")
        counts = np.bincount(inverse.ravel(), minlength=unique_rows.shape[0])
        boundaries = np.cumsum(counts)[:-1]
        id_groups = np.split(order, boundaries)
        sketch_hashes = hashes if self.with_sketches else None
        for key, ids in zip(keys, id_groups):
            self.buckets[key] = Bucket.from_ids(
                ids,
                sketch_hashes,
                hll_precision=self.hll_precision,
                hll_seed=self.hll_seed,
                lazy_threshold=self.lazy_threshold,
            )

    def get(self, key: bytes) -> Bucket | None:
        """The bucket stored under ``key``, or ``None``."""
        return self.buckets.get(key)

    @property
    def num_buckets(self) -> int:
        """Number of non-empty buckets."""
        return len(self.buckets)

    def bucket_sizes(self) -> np.ndarray:
        """Sizes of all buckets (for occupancy diagnostics)."""
        return np.asarray([b.size for b in self.buckets.values()], dtype=np.int64)

    @property
    def sketch_memory_bytes(self) -> int:
        """Total bytes held by materialised bucket sketches in this table."""
        return sum(b.sketch_memory_bytes for b in self.buckets.values())

    def __repr__(self) -> str:
        return f"HashTable(buckets={self.num_buckets})"
