"""Frozen CSR layouts for the probing index variants (multi-probe, covering).

PR 3's frozen layout compacted the plain :class:`~repro.index.lsh_index.LSHIndex`
into contiguous CSR arrays; this module extends the same compaction to
the two probing variants the paper's conclusion singles out:

* :class:`FrozenMultiProbeLSHIndex` — the tables are byte-identical to
  the plain layout's (multi-probe changes *queries*, not construction),
  so only the lookup differs: every query probes ``1 + P`` buckets per
  table.  The probe hash rows are generated for the whole batch with
  one vectorised XOR (binary families) or add (p-stable offsets) over
  the ``(q, L, k)`` hash tensor, and all ``q * L * (1 + P)`` bucket
  addresses resolve with one ``np.searchsorted`` per table.  The probe
  enumeration is shared with the dict layout
  (:func:`~repro.hashing.probing.hamming_flip_masks` /
  :func:`~repro.hashing.probing.perturbation_offsets`), so the probed
  bucket sequence — and therefore every answer — is bit-identical.

* :class:`FrozenCoveringLSHIndex` — the covering index hashes each
  point by ``r + 1`` bit-*blocks* of different widths, so its bucket
  keys are not uniform ``8 * k`` bytes.  The fused key matrix pads
  every key on the right with zero bytes up to the widest block's
  width; padding cannot collide or reorder keys within a table (same
  true width, zero suffixes compare equal), so the sorted segments are
  the same bucket sequences as the dict layout's and all downstream
  primitives (collision counts, register maxima, candidate unions) are
  bit-identical.

Both variants keep the full overflow-insert story of the base class —
inserts land in a mutable dict-layout side-table probed alongside the
frozen arrays, with double-buffered background re-freeze — and both
persist through :func:`~repro.index.frozen.save_frozen_index` /
:func:`~repro.index.frozen.load_frozen_index` as plain ``.npy``
directories reopened with ``np.load(mmap_mode="r")``.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.composite import encode_rows
from repro.hashing.probing import probe_deltas
from repro.index.covering import (
    CoveringLSHIndex,
    hamming_family_facade,
    insert_into_covering_tables,
)
from repro.index.frozen import FrozenLSHIndex, FrozenQueryLookup, FrozenTables
from repro.sketches.hyperloglog import PrecomputedHllHashes

__all__ = ["FrozenMultiProbeLSHIndex", "FrozenCoveringLSHIndex"]


class FrozenMultiProbeLSHIndex(FrozenLSHIndex):
    """A built multi-probe index compacted into contiguous CSR arrays.

    Produced by :meth:`repro.index.multiprobe_index.MultiProbeLSHIndex.freeze`;
    answers every primitive bit-identically to the dict-layout
    multi-probe index it was frozen from, including after ``insert``
    (overflow side-table, probed under home *and* probe keys) and
    re-freeze.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.hashing import SimHashLSH
    >>> from repro.index import MultiProbeLSHIndex
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(300, 16))
    >>> index = MultiProbeLSHIndex(
    ...     SimHashLSH(16, seed=1), k=4, num_tables=6, num_probes=3, seed=2
    ... ).build(points)
    >>> frozen = index.freeze()
    >>> frozen.num_collisions(points[0]) == index.num_collisions(points[0])
    True
    >>> bool(np.array_equal(
    ...     frozen.candidate_ids(frozen.lookup(points[0])),
    ...     index.candidate_ids(index.lookup(points[0]))))
    True
    """

    variant = "multiprobe"

    def _adopt(self, index) -> None:
        super()._adopt(index)
        self._init_probing(index.num_probes)

    @classmethod
    def from_state(cls, *args, num_probes: int = 0, **kwargs):
        """Reassemble from persisted arrays (adds the probe config)."""
        self = super().from_state(*args, **kwargs)
        self._init_probing(num_probes)
        return self

    def _init_probing(self, num_probes: int) -> None:
        """Precompute the probe deltas as one ``(P, k)`` matrix.

        Mirrors :class:`~repro.index.multiprobe_index.MultiProbeLSHIndex`:
        XOR bit-flip masks for binary hash values, additive ±1 offsets
        for p-stable quantisers — drawn from the same enumerations, in
        the same order, truncated the same way.
        """
        if num_probes < 0:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(f"num_probes must be >= 0, got {num_probes}")
        self.num_probes = int(num_probes)
        self._binary_values, self._probe_deltas = probe_deltas(
            self.family, self.k, self.num_probes
        )
        # Slot metadata is fixed for the index's lifetime; precomputed
        # here so the per-query lookup path never reallocates it.
        self._probe_count = int(self._probe_deltas.shape[0])
        self._num_slots = self.num_tables * (1 + self._probe_count)
        self._slot_tables = np.repeat(
            np.arange(self.num_tables), 1 + self._probe_count
        )

    @property
    def probe_count(self) -> int:
        """Effective probes per table (the enumeration may run dry)."""
        return self._probe_count

    @property
    def num_slots(self) -> int:
        return self._num_slots

    @property
    def _slot_table_ids(self) -> np.ndarray:
        return self._slot_tables

    def _slot_rows(self, all_rows: np.ndarray) -> np.ndarray:
        """``(q, L, k)`` home rows -> ``(q, L * (1 + P), k)`` probed rows.

        Slot order per table is home first, then the probes in
        enumeration order — exactly the dict layout's
        ``_lookup_from_rows`` sequence.
        """
        probes = self.probe_count
        if probes == 0:
            return all_rows
        q, num_tables, k = all_rows.shape
        home = all_rows[:, :, None, :]
        if self._binary_values:
            probed = home ^ self._probe_deltas[None, None, :, :]
        else:
            probed = home + self._probe_deltas[None, None, :, :]
        stacked = np.concatenate([home, probed], axis=2)  # (q, L, 1 + P, k)
        return stacked.reshape(q, num_tables * (1 + probes), k)

    def __repr__(self) -> str:
        base = super().__repr__()
        return base[:-1] + f", probes={self.num_probes})"


class FrozenCoveringLSHIndex(FrozenLSHIndex):
    """A built covering index compacted into contiguous CSR arrays.

    Produced by :meth:`repro.index.covering.CoveringLSHIndex.freeze`.
    The ``r + 1`` block tables have different key widths, so the fused
    key matrix stores every key zero-padded to the widest block's
    width; the no-false-negative covering guarantee is untouched
    because the bucket contents are identical to the dict layout's.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.index import CoveringLSHIndex
    >>> rng = np.random.default_rng(0)
    >>> points = (rng.random((300, 32)) < 0.5).astype(np.float64)
    >>> index = CoveringLSHIndex(dim=32, radius=4, seed=1).build(points)
    >>> frozen = index.freeze()
    >>> bool(np.array_equal(
    ...     frozen.candidate_ids(frozen.lookup(points[0])),
    ...     index.candidate_ids(index.lookup(points[0]))))
    True
    """

    variant = "covering"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_covering_index(
        cls, index: CoveringLSHIndex, refreeze_threshold: int | None = None
    ) -> FrozenCoveringLSHIndex:
        """Compact a built covering index (shares points and blocks)."""
        index._require_built()
        self = cls.__new__(cls)
        self._adopt_covering(
            dim=index.dim,
            radius=index.radius,
            blocks=index._blocks,
            hll_precision=index.hll_precision,
            hll_seed=index.hll_seed,
            lazy_threshold=index.lazy_threshold,
            with_sketches=index.with_sketches,
            dedup=index.dedup,
            points=index.points,
            hll_hashes=index._hll_hashes,
        )
        width = self.key_width
        per_table = [
            FrozenTables.table_arrays(
                table, 8 * block.size, member_dtype=np.intp, pad_to=width
            )
            for table, block in zip(index.tables, self._blocks)
        ]
        self.frozen = FrozenTables.assemble(
            per_table,
            width,
            self._hll_hashes,
            self._effective_lazy_threshold,
            self.hll_precision,
        )
        self._init_overflow(refreeze_threshold)
        return self

    @classmethod
    def from_state(
        cls,
        points: np.ndarray,
        frozen: FrozenTables,
        dim: int,
        radius: int,
        blocks: list,
        hll_precision: int,
        hll_seed: int,
        lazy_threshold: int | None,
        with_sketches: bool,
        dedup: str,
        refreeze_threshold: int | None = None,
    ) -> FrozenCoveringLSHIndex:
        """Reassemble from persisted arrays (no bucket reconstruction)."""
        self = cls.__new__(cls)
        self._adopt_covering(
            dim=dim,
            radius=radius,
            blocks=[np.asarray(b, dtype=np.int64) for b in blocks],
            hll_precision=hll_precision,
            hll_seed=hll_seed,
            lazy_threshold=lazy_threshold,
            with_sketches=with_sketches,
            dedup=dedup,
            points=points,
            hll_hashes=(
                PrecomputedHllHashes(
                    points.shape[0], p=int(hll_precision), seed=int(hll_seed)
                )
                if with_sketches
                else None
            ),
        )
        self.frozen = frozen
        self._init_overflow(refreeze_threshold)
        return self

    def _adopt_covering(
        self,
        dim,
        radius,
        blocks,
        hll_precision,
        hll_seed,
        lazy_threshold,
        with_sketches,
        dedup,
        points,
        hll_hashes,
    ) -> None:
        self._dim = int(dim)
        self.radius = int(radius)
        self._blocks = [np.asarray(b, dtype=np.int64) for b in blocks]
        self.num_tables = len(self._blocks)
        self.hll_precision = int(hll_precision)
        self.hll_seed = int(hll_seed)
        self.lazy_threshold = lazy_threshold
        self.with_sketches = bool(with_sketches)
        self.dedup = dedup
        self.points = points
        self._hll_hashes = hll_hashes
        self._batched = None
        # One facade for the index's lifetime: the searchers read
        # .family.metric once per answered query.
        self._family_facade = hamming_family_facade(self._dim)

    # ------------------------------------------------------------------
    # Covering specifics
    # ------------------------------------------------------------------
    @property
    def key_width(self) -> int:
        """Fused key width: the widest block's key, in bytes."""
        return 8 * max(block.size for block in self._blocks)

    def _dict_key_width(self, t: int) -> int:
        return 8 * int(self._blocks[t].size)

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def family(self):
        """Minimal family facade (metric access for the searchers)."""
        return self._family_facade

    def _insert_overflow(self, new_points: np.ndarray) -> np.ndarray:
        return insert_into_covering_tables(self, new_points)

    # ------------------------------------------------------------------
    # Lookups (block keys have per-table widths, so no shared hash pass)
    # ------------------------------------------------------------------
    def lookup(self, query: np.ndarray) -> FrozenQueryLookup:
        """Locate the query's bucket in each block table (binary searches)."""
        from repro.utils.validation import check_vector

        self._require_built()
        query = check_vector(query, dim=self.dim, name="query")
        return self.lookup_batch(query[None, :])[0]

    def lookup_batch(self, queries: np.ndarray) -> list[FrozenQueryLookup]:
        """Locate many queries' block buckets with one searchsorted per table."""
        from repro.utils.validation import check_matrix

        self._require_built()
        queries = check_matrix(queries, dim=self.dim, name="queries")
        q = queries.shape[0]
        frozen, generations = self._snapshot()
        width = frozen.key_width
        raw = np.zeros((q, self.num_tables, width), dtype=np.uint8)
        rows_per_table = []
        for t, block in enumerate(self._blocks):
            rows = np.ascontiguousarray(queries[:, block], dtype="<i8")
            rows_per_table.append(rows)
            raw[:, t, : 8 * block.size] = rows.view(np.uint8).reshape(
                q, 8 * block.size
            )
        key_matrix = raw.view(np.dtype((np.void, width)))[:, :, 0]
        positions = frozen.locate(key_matrix)  # (q, L)
        found = positions >= 0
        safe = np.where(found, positions, 0)
        collisions = np.where(found, frozen.sizes[safe], 0).sum(axis=1)
        if generations:
            keys_per_table = [encode_rows(rows) for rows in rows_per_table]
        lookups = []
        for qi in range(q):
            overflow = None
            num_collisions = int(collisions[qi])
            if generations:
                keys = [keys_per_table[t][qi] for t in range(self.num_tables)]
                overflow = self._overflow_buckets_for(keys, generations)
                num_collisions += sum(b.size for b in overflow if b is not None)
            lookups.append(
                FrozenQueryLookup(
                    bucket_ids=positions[qi],
                    hash_rows=[rows[qi] for rows in rows_per_table],
                    frozen=frozen,
                    overflow=overflow,
                    num_collisions=num_collisions,
                )
            )
        return lookups

    def __repr__(self) -> str:
        built = f"n={self.n}" if self.is_built else "unbuilt"
        return (
            f"FrozenCoveringLSHIndex(dim={self._dim}, radius={self.radius}, "
            f"tables={self.num_tables}, {built}, "
            f"overflow={self.overflow_count})"
        )
