"""Frozen CSR index layout — contiguous bucket arrays for serving.

The dict layout of :class:`~repro.index.lsh_index.LSHIndex` stores one
Python :class:`~repro.index.bucket.Bucket` object per bucket, so every
query-side primitive (collision counting, sketch merging, candidate
union) walks Python objects even on the batched serving path.  This
module *freezes* a built index into CSR-style contiguous arrays, fused
across all ``L`` tables:

* ``keys`` — every bucket's composite-hash key, 8 * k bytes each,
  sorted within each table's segment so a lookup is one
  ``np.searchsorted`` per table;
* ``offsets`` / ``members`` — int64 CSR offsets into one flat member
  array holding all bucket ids back to back (stored in the platform
  index dtype so the per-query gathers and scatters skip numpy's
  index-conversion pass);
* ``sizes`` — per-bucket occupancy (``#collisions`` is a gather + sum);
* ``registers`` — the HLL registers of every *materialised* bucket
  sketch stacked into a single ``(S, m)`` uint8 matrix, with
  ``sketch_rows`` mapping buckets to rows (-1 = lazy small bucket).

On this layout ``lookup_batch`` is a fused hash pass plus one binary
search per table, merged-sketch estimation is a row-gathered
``np.maximum.reduceat`` over the register matrix, and candidate
deduplication is a boolean scatter over member slices — all vectorised
across queries *and* tables with zero per-bucket Python objects, and
all **bit-identical** to the dict layout (register maxima and id unions
are associative, so regrouping cannot change a single byte).

:meth:`FrozenLSHIndex.insert` keeps working: new points land in a small
mutable dict-layout *overflow* side-table probed alongside the frozen
arrays, and the index re-freezes itself once the overflow outgrows
``refreeze_threshold``.  Splitting a logical bucket into a frozen part
and an overflow part changes no answer for the same associativity
reason.

Re-freezing is **double-buffered**: the insert that crosses the
threshold does not pay the compaction — it moves the overflow tables
aside as a *compacting* generation, opens a fresh overflow generation
for subsequent inserts, and hands the merge of ``frozen ⊕ compacting``
to a background thread.  Queries issued while the compaction runs take
a consistent snapshot (old frozen arrays plus both overflow
generations) under a lock, so their answers are bit-identical
throughout; when the merge finishes, the new :class:`FrozenTables` is
swapped in atomically and the compacting generation is dropped.
:meth:`FrozenLSHIndex.refreeze` remains synchronous — it waits for any
in-flight background compaction and folds whatever overflow is left.

The frozen arrays persist as a directory of plain ``.npy`` files
(:func:`save_frozen_index` / :func:`load_frozen_index`), so reopening a
saved index is ``np.load(..., mmap_mode="r")`` per array — zero-copy,
no bucket reconstruction, first query pages in only what it touches.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import threading
import time

import numpy as np

from repro.exceptions import ConfigurationError, CorruptArtifactError
from repro.utils.fsio import commit_dir, staging_path, write_json_atomic
from repro.hashing.composite import encode_rows
from repro.index.bucket import Bucket
from repro.index.lsh_index import LSHIndex
from repro.index.table import HashTable
from repro.sketches.hyperloglog import HyperLogLog, PrecomputedHllHashes, alpha_m

__all__ = [
    "FrozenLSHIndex",
    "FrozenTables",
    "FrozenQueryLookup",
    "save_frozen_index",
    "load_frozen_index",
]

#: Overflow points tolerated before :meth:`FrozenLSHIndex.insert`
#: triggers an automatic re-freeze.
DEFAULT_REFREEZE_THRESHOLD = 1024

_FROZEN_FORMAT_VERSION = 1
_CONFIG_FILE = "config.json"


def _void_view(key_matrix: np.ndarray) -> np.ndarray:
    """View a ``(B, w)`` uint8 key matrix as ``(B,)`` fixed-width scalars.

    ``np.void`` scalars compare bytewise (memcmp), giving a total order
    that ``np.argsort``/``np.searchsorted`` share — the actual order is
    irrelevant, only consistency and exact equality matter.
    """
    width = key_matrix.shape[1]
    return np.ascontiguousarray(key_matrix).view(np.dtype((np.void, width))).ravel()


def _estimates_from_registers(registers: np.ndarray) -> np.ndarray:
    """Per-row HLL estimates of a ``(rows, m)`` merged-register matrix.

    The harmonic sums and zero-register counts are computed for all
    rows in two vectorised passes; the scalar bias/linear-counting
    finish per row replays :meth:`HyperLogLog.estimate` exactly, so the
    values are bit-identical to the per-sketch path.  Shared by
    :meth:`FrozenLSHIndex.merged_estimates_batch` and the per-ring
    prefix estimates of :meth:`FrozenLSHIndex.lookup_batch_adaptive` —
    one finish, so the adaptive stopping rule and the cost decision can
    never disagree about what an estimate is.
    """
    m = registers.shape[1]
    inv_sums = np.sum(np.exp2(-registers.astype(np.float64)), axis=1)
    zero_counts = m - np.count_nonzero(registers, axis=1)
    out = (alpha_m(m) * m * m) / inv_sums
    corrected = np.flatnonzero((out <= 2.5 * m) & (zero_counts > 0))
    for i in corrected.tolist():
        out[i] = m * math.log(m / int(zero_counts[i]))
    return out


def _csr_gather(
    members: np.ndarray, starts: np.ndarray, lens: np.ndarray
) -> np.ndarray:
    """Concatenate ``members[starts[i] : starts[i] + lens[i]]`` slices."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=members.dtype)
    exclusive = np.concatenate(([0], np.cumsum(lens[:-1])))
    idx = np.repeat(starts - exclusive, lens) + np.arange(total, dtype=np.int64)
    return members[idx]


class FrozenTables:
    """All ``L`` tables of a frozen index as one fused CSR structure.

    Bucket ``b`` (a *global* index across tables) owns members
    ``members[offsets[b] : offsets[b + 1]]``; table ``t`` owns the
    bucket range ``table_slices[t] : table_slices[t + 1]``, whose keys
    are sorted so :meth:`locate` can binary-search them.
    """

    __slots__ = (
        "num_tables",
        "key_width",
        "keys_raw",
        "keys",
        "table_slices",
        "offsets",
        "sizes",
        "members",
        "sketch_rows",
        "registers",
    )

    def __init__(
        self,
        num_tables: int,
        key_width: int,
        keys_raw: np.ndarray,
        table_slices: np.ndarray,
        offsets: np.ndarray,
        sizes: np.ndarray,
        members: np.ndarray,
        sketch_rows: np.ndarray,
        registers: np.ndarray,
    ) -> None:
        self.num_tables = int(num_tables)
        self.key_width = int(key_width)
        self.keys_raw = keys_raw
        self.keys = _void_view(keys_raw) if keys_raw.size else keys_raw.view(
            np.dtype((np.void, key_width))
        ).reshape(0)
        self.table_slices = table_slices
        self.offsets = offsets
        self.sizes = sizes
        self.members = members
        self.sketch_rows = sketch_rows
        self.registers = registers

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def assemble(
        cls,
        per_table: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
        key_width: int,
        hll_hashes: PrecomputedHllHashes | None,
        lazy_threshold: int,
        hll_precision: int,
    ) -> FrozenTables:
        """Fuse per-table ``(sorted key matrix, sizes, members)`` triples.

        Sketch materialisation follows the dict layout's invariant —
        a bucket is sketched iff its size exceeds the lazy threshold —
        and registers are rebuilt from the member ids in one vectorised
        scatter-max (bit-identical to incrementally maintained sketches,
        because registers are maxima over per-id hash pairs).
        """
        num_tables = len(per_table)
        table_slices = np.zeros(num_tables + 1, dtype=np.int64)
        for t, (keys_mat, _, _) in enumerate(per_table):
            table_slices[t + 1] = table_slices[t] + keys_mat.shape[0]
        total_buckets = int(table_slices[-1])
        keys_raw = (
            np.concatenate([keys_mat for keys_mat, _, _ in per_table])
            if total_buckets
            else np.empty((0, key_width), dtype=np.uint8)
        )
        sizes = (
            np.concatenate([s for _, s, _ in per_table]).astype(np.int64)
            if total_buckets
            else np.empty(0, dtype=np.int64)
        )
        member_parts = [m for _, _, m in per_table if m.size]
        members = (
            np.concatenate(member_parts)
            if member_parts
            else np.empty(0, dtype=np.intp)
        )
        offsets = np.zeros(total_buckets + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])

        m = 1 << hll_precision
        sketch_rows = np.full(total_buckets, -1, dtype=np.int64)
        if hll_hashes is not None:
            sketched = np.flatnonzero(sizes > lazy_threshold)
            sketch_rows[sketched] = np.arange(sketched.size)
            registers = np.zeros((sketched.size, m), dtype=np.uint8)
            if sketched.size:
                ids = _csr_gather(members, offsets[sketched], sizes[sketched])
                rows = np.repeat(np.arange(sketched.size), sizes[sketched])
                np.maximum.at(
                    registers,
                    (rows, hll_hashes.registers[ids]),
                    hll_hashes.ranks[ids],
                )
        else:
            registers = np.zeros((0, m), dtype=np.uint8)
        return cls(
            num_tables=num_tables,
            key_width=key_width,
            keys_raw=keys_raw,
            table_slices=table_slices,
            offsets=offsets,
            sizes=sizes,
            members=members,
            sketch_rows=sketch_rows,
            registers=registers,
        )

    @staticmethod
    def table_arrays(
        table: HashTable, key_width: int, member_dtype=np.intp, pad_to: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One dict-layout table -> ``(sorted key matrix, sizes, members)``.

        ``key_width`` is the table's true dict-key width in bytes;
        ``pad_to`` (>= ``key_width``) zero-pads every key on the right
        so tables with different key widths — the covering index's
        variable block widths — can share one fused key matrix.
        Padding cannot collide distinct keys of one table (same true
        width) and cannot reorder them (the zero suffixes compare
        equal), so the sorted segment is the same bucket sequence either
        way.
        """
        width = key_width if pad_to is None else int(pad_to)
        num = len(table.buckets)
        if num == 0:
            return (
                np.empty((0, width), dtype=np.uint8),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=member_dtype),
            )
        keys_mat = np.frombuffer(
            b"".join(table.buckets.keys()), dtype=np.uint8
        ).reshape(num, key_width)
        if width != key_width:
            padded = np.zeros((num, width), dtype=np.uint8)
            padded[:, :key_width] = keys_mat
            keys_mat = padded
        order = np.argsort(_void_view(keys_mat), kind="stable")
        buckets = list(table.buckets.values())
        sizes = np.asarray([buckets[i].size for i in order], dtype=np.int64)
        members = (
            np.concatenate([buckets[i].ids for i in order]).astype(member_dtype)
            if int(sizes.sum())
            else np.empty(0, dtype=member_dtype)
        )
        return np.ascontiguousarray(keys_mat[order]), sizes, members

    def merged_table_arrays(
        self, t: int, overflow: HashTable, key_width: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Table ``t`` merged with its overflow side-table (for re-freeze).

        Duplicate keys keep their frozen members first and overflow
        members second — the exact id order the dict layout's append
        path produces — and the merge is a stable sort over the
        concatenated key sets, no per-bucket Python loop.
        ``key_width`` is the overflow table's true dict-key width; its
        keys are padded up to this structure's fused width when the two
        differ (covering layout).
        """
        lo, hi = int(self.table_slices[t]), int(self.table_slices[t + 1])
        f_keys = self.keys_raw[lo:hi]
        f_sizes = self.sizes[lo:hi]
        seg_start, seg_stop = int(self.offsets[lo]), int(self.offsets[hi])
        f_members = self.members[seg_start:seg_stop]
        f_starts = self.offsets[lo:hi] - seg_start
        o_keys, o_sizes, o_members = self.table_arrays(
            overflow,
            key_width,
            member_dtype=self.members.dtype,
            pad_to=self.key_width,
        )
        if o_keys.shape[0] == 0:
            return (
                np.ascontiguousarray(f_keys),
                np.asarray(f_sizes),
                np.asarray(f_members),
            )
        src_members = np.concatenate([f_members, o_members])
        o_starts = np.concatenate(([0], np.cumsum(o_sizes[:-1]))) + f_members.size
        src_starts = np.concatenate([f_starts, o_starts])
        src_sizes = np.concatenate([f_sizes, o_sizes])
        comb_keys = np.concatenate([np.ascontiguousarray(f_keys), o_keys])
        # Stable sort keeps frozen source buckets ahead of overflow ones
        # for equal keys (frozen rows come first in the concatenation).
        order = np.argsort(_void_view(comb_keys), kind="stable")
        ordered_keys = comb_keys[order]
        ordered_view = _void_view(ordered_keys)
        new_bucket = np.empty(order.size, dtype=bool)
        new_bucket[0] = True
        new_bucket[1:] = ordered_view[1:] != ordered_view[:-1]
        group_starts = np.flatnonzero(new_bucket)
        merged_keys = np.ascontiguousarray(ordered_keys[group_starts])
        ordered_sizes = src_sizes[order]
        merged_sizes = np.add.reduceat(ordered_sizes, group_starts)
        merged_members = _csr_gather(src_members, src_starts[order], ordered_sizes)
        return merged_keys, merged_sizes, merged_members

    # ------------------------------------------------------------------
    # Query-side primitives
    # ------------------------------------------------------------------
    def locate(
        self, query_keys: np.ndarray, probes_per_table: int = 1
    ) -> np.ndarray:
        """Global bucket index per ``(query, slot)``; -1 for empty buckets.

        ``query_keys`` is the ``(q, S)`` void-key matrix of a query
        batch.  With the default ``probes_per_table=1`` slot ``s``
        probes table ``s`` (``S == L``, the plain and covering
        layouts); the multi-probe layout folds all ``1 + P`` probes of
        a table into the consecutive slot range
        ``[t * (1 + P), (t + 1) * (1 + P))`` and passes ``1 + P``.
        Either way, each table costs one ``np.searchsorted`` over its
        sorted key segment — covering all of that table's probes and
        queries in the single call.
        """
        q, num_slots = query_keys.shape
        if num_slots != self.num_tables * probes_per_table:
            raise ValueError(
                f"key matrix has {num_slots} slot columns; expected "
                f"{self.num_tables} tables x {probes_per_table} probes"
            )
        out = np.full((q, num_slots), -1, dtype=np.int64)
        for t in range(self.num_tables):
            lo, hi = int(self.table_slices[t]), int(self.table_slices[t + 1])
            if hi == lo:
                continue
            segment = self.keys[lo:hi]
            cols = slice(t * probes_per_table, (t + 1) * probes_per_table)
            block = query_keys[:, cols]
            pos = np.searchsorted(segment, block.ravel()).reshape(block.shape)
            in_range = pos < (hi - lo)
            clamped = np.where(in_range, pos, 0)
            hit = in_range & (segment[clamped] == block)
            out[:, cols] = np.where(hit, lo + clamped, -1)
        return out

    def gather_members(self, bucket_idx: np.ndarray) -> np.ndarray:
        """Concatenated member ids of the given global buckets."""
        return _csr_gather(
            self.members, self.offsets[bucket_idx], self.sizes[bucket_idx]
        )

    @property
    def num_buckets(self) -> int:
        return int(self.table_slices[-1])

    @property
    def memory_bytes(self) -> dict[str, int]:
        return {
            "bucket_ids": int(self.members.nbytes),
            "bucket_keys": int(self.keys_raw.nbytes),
            "sketches": int(self.registers.nbytes),
        }

    def __repr__(self) -> str:
        return (
            f"FrozenTables(L={self.num_tables}, buckets={self.num_buckets}, "
            f"members={self.members.size}, sketched={self.registers.shape[0]})"
        )


class _FrozenBucketView:
    """Read-only bucket facade for estimator callbacks on frozen lookups.

    Exposes the subset of the :class:`~repro.index.bucket.Bucket`
    surface the registered estimators consume (``ids``, ``size``,
    ``__len__``) without materialising per-bucket state in the index.
    """

    __slots__ = ("ids",)

    def __init__(self, ids: np.ndarray) -> None:
        self.ids = ids

    @property
    def size(self) -> int:
        return int(self.ids.size)

    def __len__(self) -> int:
        return int(self.ids.size)

    def __repr__(self) -> str:
        return f"_FrozenBucketView(size={self.size})"


class FrozenQueryLookup:
    """A query's bucket addresses in the frozen arrays (Step S1 output).

    The frozen counterpart of
    :class:`~repro.index.lsh_index.QueryLookup`: instead of one Python
    ``Bucket`` per table it carries one int64 per table — the global
    bucket index, or -1 where the query fell into an empty bucket —
    plus the matching overflow buckets when the index has absorbed
    inserts since it was frozen.
    """

    __slots__ = (
        "bucket_ids",
        "hash_rows",
        "overflow",
        "_frozen",
        "_num_collisions",
        "_found",
    )

    def __init__(
        self,
        bucket_ids: np.ndarray,
        hash_rows: np.ndarray,
        frozen: FrozenTables,
        overflow: list[Bucket | None] | None = None,
        num_collisions: int | None = None,
    ) -> None:
        self.bucket_ids = bucket_ids
        self.hash_rows = hash_rows
        self.overflow = overflow
        self._frozen = frozen
        self._num_collisions = num_collisions
        self._found = None

    @property
    def num_collisions(self) -> int:
        """Total occupancy of the query's buckets (frozen + overflow)."""
        if self._num_collisions is None:
            found = self.bucket_ids[self.bucket_ids >= 0]
            total = int(self._frozen.sizes[found].sum())
            if self.overflow is not None:
                total += sum(b.size for b in self.overflow if b is not None)
            self._num_collisions = total
        return self._num_collisions

    def found_buckets(self) -> np.ndarray:
        """Global indexes of the query's non-empty frozen buckets (cached)."""
        if self._found is None:
            self._found = self.bucket_ids[self.bucket_ids >= 0]
        return self._found

    def member_slices(self) -> list[np.ndarray]:
        """Zero-copy member views of the found buckets, in table order."""
        frozen = self._frozen
        found = self.found_buckets()
        starts = frozen.offsets[found]
        stops = (starts + frozen.sizes[found]).tolist()
        members = frozen.members
        return [
            members[a:b] for a, b in zip(starts.tolist(), stops)
        ]

    def nonempty_buckets(self) -> list:
        """Bucket views in table order (estimator-callback compatibility).

        Frozen buckets surface as light :class:`_FrozenBucketView`
        objects (``ids``/``size`` only); overflow buckets are the real
        mutable :class:`~repro.index.bucket.Bucket` instances.
        """
        views: list = []
        num_tables = len(self.bucket_ids)
        for t, b in enumerate(self.bucket_ids):
            if b >= 0:
                start = int(self._frozen.offsets[b])
                stop = start + int(self._frozen.sizes[b])
                views.append(
                    _FrozenBucketView(
                        np.asarray(self._frozen.members[start:stop], dtype=np.intp)
                    )
                )
            if self.overflow is not None:
                # Generation-major flat list (G * num_tables slots):
                # table t owns slot g * num_tables + t of each generation.
                for bucket in self.overflow[t::num_tables]:
                    if bucket is not None and len(bucket):
                        views.append(bucket)
        return views


class FrozenLSHIndex(LSHIndex):
    """A built LSH index compacted into contiguous CSR arrays.

    Produced by :meth:`repro.index.lsh_index.LSHIndex.freeze`; answers
    every query-side primitive bit-identically to the dict-layout index
    it was frozen from, while the batched serving path runs entirely in
    numpy.  Supports :meth:`insert` through a mutable overflow
    side-table that is automatically re-frozen once it exceeds
    ``refreeze_threshold`` points.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.hashing import SimHashLSH
    >>> from repro.index import LSHIndex
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(300, 16))
    >>> index = LSHIndex(SimHashLSH(16, seed=1), k=4, num_tables=8, seed=2)
    >>> frozen = index.build(points).freeze()
    >>> frozen.num_collisions(points[0]) == index.num_collisions(points[0])
    True
    >>> lookup = frozen.lookup(points[0])
    >>> bool(np.array_equal(frozen.candidate_ids(lookup),
    ...                     index.candidate_ids(index.lookup(points[0]))))
    True
    """

    layout = "frozen"
    #: Index-variant tag; the probing subclasses override this.
    variant = "plain"

    # ------------------------------------------------------------------
    # Slot model
    #
    # A *slot* is one probed bucket address per query: the plain layout
    # has one slot per table (S == L), the multi-probe layout has
    # ``1 + P`` consecutive slots per table.  Everything downstream of
    # the lookup — collision counts, sketch merges, candidate unions,
    # overflow probing — is written against slots, so the probing
    # subclasses only override the three hooks below.
    # ------------------------------------------------------------------
    @property
    def key_width(self) -> int:
        """Width in bytes of the fused key matrix (covering overrides)."""
        return 8 * self.k

    @property
    def num_slots(self) -> int:
        """Probed bucket addresses per query (``L`` for the plain layout)."""
        return self.num_tables

    @property
    def _slot_table_ids(self) -> np.ndarray:
        """Table owning each slot (identity for the plain layout)."""
        return np.arange(self.num_tables)

    def _slot_rows(self, all_rows: np.ndarray) -> np.ndarray:
        """``(q, L, k)`` hash tensor -> ``(q, S, k)`` probed hash rows."""
        return all_rows

    def _dict_key_width(self, t: int) -> int:
        """True dict-key width of table ``t`` (uniform except covering)."""
        return self.key_width

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict_index(
        cls, index: LSHIndex, refreeze_threshold: int | None = None
    ) -> FrozenLSHIndex:
        """Compact a built dict-layout index (shares points and kernel)."""
        index._require_built()
        self = cls.__new__(cls)
        self._adopt(index)
        key_width = 8 * self.k
        # Members live in the platform index dtype (intp): every hot-path
        # consumer is a fancy index (candidate scatter, HLL pair gather,
        # point gather), and numpy converts any other integer dtype to
        # intp per call — a measurable per-query tax at serving rates.
        per_table = [
            FrozenTables.table_arrays(table, key_width, member_dtype=np.intp)
            for table in index.tables
        ]
        self.frozen = FrozenTables.assemble(
            per_table,
            key_width,
            self._hll_hashes,
            self._effective_lazy_threshold,
            self.hll_precision,
        )
        self._init_overflow(refreeze_threshold)
        return self

    @classmethod
    def from_state(
        cls,
        family,
        batched,
        points: np.ndarray,
        frozen: FrozenTables,
        k: int,
        num_tables: int,
        hll_precision: int,
        hll_seed: int,
        lazy_threshold: int | None,
        with_sketches: bool,
        dedup: str,
        refreeze_threshold: int | None = None,
    ) -> FrozenLSHIndex:
        """Reassemble from persisted arrays (no bucket reconstruction)."""
        self = cls.__new__(cls)
        self.family = family
        self.k = int(k)
        self.num_tables = int(num_tables)
        self.hll_precision = int(hll_precision)
        self.hll_seed = int(hll_seed)
        self.lazy_threshold = lazy_threshold
        self.with_sketches = bool(with_sketches)
        self.dedup = dedup
        self.points = points
        self._batched = batched
        self._hll_hashes = (
            PrecomputedHllHashes(
                points.shape[0], p=self.hll_precision, seed=self.hll_seed
            )
            if self.with_sketches
            else None
        )
        self.frozen = frozen
        self._init_overflow(refreeze_threshold)
        return self

    def _adopt(self, index: LSHIndex) -> None:
        """Share the immutable pieces of the source index."""
        self.family = index.family
        self.k = index.k
        self.num_tables = index.num_tables
        self.hll_precision = index.hll_precision
        self.hll_seed = index.hll_seed
        self.lazy_threshold = index.lazy_threshold
        self.with_sketches = index.with_sketches
        self.dedup = index.dedup
        self.points = index.points
        self._hll_hashes = index._hll_hashes
        self._batched = index._batched

    def _init_overflow(self, refreeze_threshold: int | None) -> None:
        self.refreeze_threshold = (
            DEFAULT_REFREEZE_THRESHOLD
            if refreeze_threshold is None
            else int(refreeze_threshold)
        )
        #: When True (default) the insert crossing ``refreeze_threshold``
        #: hands compaction to a background thread instead of running it
        #: inline; answers are bit-identical either way.
        self.background_refreeze = getattr(self, "background_refreeze", True)
        self.tables = self._fresh_tables()
        self._overflow_count = 0
        self._compacting_tables: list[HashTable] | None = None
        self._compacting_count = 0
        self._refreeze_lock = threading.Lock()
        self._refreeze_thread: threading.Thread | None = None
        self._refreeze_error: BaseException | None = None
        #: re-freeze telemetry (read by the observability gauges):
        #: completed folds, their summed duration, and the last one's.
        self.refreeze_count = 0
        self.refreeze_seconds_total = 0.0
        self.last_refreeze_seconds = 0.0

    def _fresh_tables(self) -> list[HashTable]:
        return [
            HashTable(
                hll_precision=self.hll_precision,
                hll_seed=self.hll_seed,
                lazy_threshold=self.lazy_threshold,
                with_sketches=self.with_sketches,
            )
            for _ in range(self.num_tables)
        ]

    @property
    def _effective_lazy_threshold(self) -> int:
        return (
            (1 << self.hll_precision)
            if self.lazy_threshold is None
            else int(self.lazy_threshold)
        )

    @property
    def overflow_count(self) -> int:
        """Points inserted since the last completed (re-)freeze.

        Includes the generation an in-flight background compaction is
        currently folding in; drops to zero once the swap lands.
        """
        return self._overflow_count + self._compacting_count

    def build(self, points: np.ndarray) -> LSHIndex:
        raise ConfigurationError(
            "a frozen index is created from a built dict-layout index via "
            "LSHIndex.freeze(); it cannot be rebuilt in place"
        )

    # ------------------------------------------------------------------
    # Mutation: overflow inserts + re-freeze
    # ------------------------------------------------------------------
    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Insert points into the overflow side-table; re-freeze past the threshold.

        With :attr:`background_refreeze` (the default) the triggering
        insert only *starts* the compaction and returns immediately;
        queries keep probing both overflow generations until the
        background swap lands, so nothing is ever missed.
        """
        new_ids = self._insert_overflow(new_points)
        with self._refreeze_lock:
            self._overflow_count += int(new_ids.size)
            trigger = self._overflow_count > self.refreeze_threshold
        if trigger:
            if self.background_refreeze:
                self._start_background_refreeze()
            else:
                self.refreeze()
        return new_ids

    def _insert_overflow(self, new_points: np.ndarray) -> np.ndarray:
        """Hash new points into the current overflow generation.

        The dict layout's incremental Algorithm 1 already lands each
        point in its home bucket of ``self.tables`` — which here *are*
        the overflow tables; the covering subclass replaces this with
        its block-projection hashing.
        """
        return super().insert(new_points)

    def _start_background_refreeze(self) -> None:
        """Rotate the overflow generation and compact it off-thread."""
        with self._refreeze_lock:
            if self._refreeze_thread is not None:
                # One compaction at a time; the overflow keeps growing in
                # the current generation and the next insert re-triggers.
                return
            if self._compacting_tables is None:
                self._compacting_tables = self.tables
                self._compacting_count = self._overflow_count
                self.tables = self._fresh_tables()
                self._overflow_count = 0
            # else: a previous background fold failed — retry the stuck
            # generation (queries kept probing it, nothing was lost).
            snapshot = self.frozen
            compacting = self._compacting_tables
            thread = threading.Thread(
                target=self._background_refreeze_run,
                args=(snapshot, compacting),
                name="repro-refreeze",
                daemon=True,
            )
            self._refreeze_thread = thread
            # Start while holding the lock so a concurrent
            # wait_for_refreeze() can never join() an unstarted thread;
            # the new thread only needs the lock when its fold is done.
            thread.start()

    def _background_refreeze_run(
        self, snapshot: FrozenTables, compacting: list[HashTable]
    ) -> None:
        started = time.perf_counter()
        try:
            merged = self._fold_generation(snapshot, compacting)
        except BaseException as exc:  # leave both generations queryable
            with self._refreeze_lock:
                self._refreeze_error = exc
                self._refreeze_thread = None
            return
        elapsed = time.perf_counter() - started
        with self._refreeze_lock:
            self._refreeze_thread = None
            if self._compacting_tables is not compacting:
                # A synchronous refreeze() superseded this run while the
                # fold was in flight; its arrays already contain every
                # generation — swapping in ours would drop newer points.
                return
            self.frozen = merged
            self._compacting_tables = None
            self._compacting_count = 0
            self._refreeze_error = None
            self._record_refreeze_locked(1, elapsed)

    def _fold_generation(
        self, frozen: FrozenTables, overflow: list[HashTable]
    ) -> FrozenTables:
        """Merge one overflow generation into ``frozen`` (pure function)."""
        per_table = [
            frozen.merged_table_arrays(t, overflow[t], self._dict_key_width(t))
            for t in range(self.num_tables)
        ]
        return FrozenTables.assemble(
            per_table,
            self.key_width,
            self._hll_hashes,
            self._effective_lazy_threshold,
            self.hll_precision,
        )

    def _record_refreeze_locked(self, folds: int, elapsed: float) -> None:
        """Update the re-freeze gauges (``_refreeze_lock`` held)."""
        self.refreeze_count += folds
        self.refreeze_seconds_total += elapsed
        self.last_refreeze_seconds = elapsed

    @property
    def last_refreeze_error(self) -> BaseException | None:
        """The most recent background compaction failure, if any.

        A failed fold never loses data — queries keep probing the stuck
        overflow generation — and the next threshold crossing (or an
        explicit :meth:`refreeze`) retries it; this surfaces the cause.
        """
        return self._refreeze_error

    def wait_for_refreeze(self) -> FrozenLSHIndex:
        """Block until any in-flight background compaction has landed."""
        with self._refreeze_lock:
            # Assignment and start() both happen under this lock, so a
            # thread observed here can never be assigned-but-unstarted
            # (joining one raises RuntimeError).
            thread = self._refreeze_thread
        if thread is not None:
            thread.join()
        return self

    def refreeze(self) -> FrozenLSHIndex:
        """Fold all overflow back into the CSR arrays, synchronously.

        Waits for an in-flight background compaction first, then folds
        whatever generations remain — oldest first, so duplicate keys
        keep their members in insertion order (bit-identical to the
        dict layout's append path).
        """
        self.wait_for_refreeze()
        with self._refreeze_lock:
            self._refreeze_error = None
            generations = [
                gen
                for gen in (self._compacting_tables, self.tables)
                if gen is not None and any(t.buckets for t in gen)
            ]
            frozen = self.frozen
            started = time.perf_counter()
            for gen in generations:
                frozen = self._fold_generation(frozen, gen)
            self.frozen = frozen
            self.tables = self._fresh_tables()
            self._overflow_count = 0
            self._compacting_tables = None
            self._compacting_count = 0
            if generations:
                self._record_refreeze_locked(
                    len(generations), time.perf_counter() - started
                )
        return self

    def freeze(self, refreeze_threshold: int | None = None) -> FrozenLSHIndex:
        """Re-freezing a frozen index compacts its overflow (idempotent)."""
        if refreeze_threshold is not None:
            self.refreeze_threshold = int(refreeze_threshold)
        return self.refreeze()

    # ------------------------------------------------------------------
    # Step S1: lookups
    # ------------------------------------------------------------------
    def _query_key_matrix(self, slot_rows: np.ndarray) -> np.ndarray:
        """``(q, S, k)`` int64 slot-hash tensor -> ``(q, S)`` void key matrix."""
        q, num_slots = slot_rows.shape[0], slot_rows.shape[1]
        width = self.key_width
        flat = np.ascontiguousarray(slot_rows.reshape(q, num_slots * self.k), dtype="<i8")
        raw = flat.view(np.uint8).reshape(q, num_slots, width)
        return raw.view(np.dtype((np.void, width)))[:, :, 0]

    def _snapshot(self) -> tuple[FrozenTables, list[list[HashTable]]]:
        """A consistent ``(frozen arrays, overflow generations)`` view.

        Taken under the re-freeze lock so a concurrent background swap
        can never hand a lookup the *new* arrays together with the
        compacting generation (double counting) or the *old* arrays
        without it (missed points).  Generations are ordered oldest
        first.
        """
        with self._refreeze_lock:
            generations = []
            if self._compacting_count:
                generations.append(self._compacting_tables)
            if self._overflow_count:
                generations.append(self.tables)
            return self.frozen, generations

    def _overflow_buckets_for(
        self, keys: list[bytes], generations: list[list[HashTable]]
    ) -> list[Bucket | None] | None:
        """Generation-major flat bucket list (``G * S`` slots), or None.

        Slot ``g * S + j`` holds generation ``g``'s bucket for the
        query's probe ``j`` (probed in the table ``_slot_table_ids[j]``
        owns); candidate unions and register maxima are associative, so
        consumers may walk the flat list in any grouping.
        """
        if not generations:
            return None
        slot_tables = self._slot_table_ids.tolist()
        return [
            gen[t].buckets.get(key)
            for gen in generations
            for t, key in zip(slot_tables, keys)
        ]

    def lookup(self, query: np.ndarray) -> FrozenQueryLookup:
        """Locate the query's probed buckets (one binary search per table)."""
        self._require_built()
        rows = self._batched.query_rows(query)  # validates dim; (L, k)
        frozen, generations = self._snapshot()
        slot_rows = self._slot_rows(rows[None, :, :])  # (1, S, k)
        key_matrix = self._query_key_matrix(slot_rows)
        bucket_ids = frozen.locate(
            key_matrix, self.num_slots // self.num_tables
        )[0]
        overflow = self._overflow_buckets_for(
            encode_rows(np.ascontiguousarray(slot_rows[0])), generations
        )
        return FrozenQueryLookup(
            bucket_ids=bucket_ids, hash_rows=rows, frozen=frozen, overflow=overflow
        )

    def lookup_batch(self, queries: np.ndarray) -> list[FrozenQueryLookup]:
        """Locate many queries' probed buckets: fused hash pass + searchsorted.

        One binary search per table covers every probe slot of every
        query in the batch (the multi-probe layout's ``1 + P`` slots per
        table included).
        """
        from repro.utils.validation import check_matrix

        self._require_built()
        queries = check_matrix(queries, dim=self.dim, name="queries")
        all_rows = self._batched.hash_points(queries)  # (q, L, k)
        frozen, generations = self._snapshot()
        slot_rows = self._slot_rows(all_rows)  # (q, S, k)
        key_matrix = self._query_key_matrix(slot_rows)
        positions = frozen.locate(
            key_matrix, self.num_slots // self.num_tables
        )  # (q, S)
        return self._finish_lookup_batch(
            all_rows, slot_rows, positions, frozen, generations
        )

    def _finish_lookup_batch(
        self,
        all_rows: np.ndarray,
        slot_rows: np.ndarray,
        positions: np.ndarray,
        frozen: FrozenTables,
        generations: list[list[HashTable]],
    ) -> list[FrozenQueryLookup]:
        """Assemble :class:`FrozenQueryLookup` objects from located slots.

        ``positions`` may carry -1 in place of slots an adaptive probe
        budget trimmed away (:meth:`lookup_batch_adaptive`); the
        vectorised collision count simply skips them, exactly like
        empty buckets.
        """
        q = all_rows.shape[0]
        num_slots = positions.shape[1]
        found = positions >= 0
        safe = np.where(found, positions, 0)
        collisions = np.where(found, frozen.sizes[safe], 0).sum(axis=1)
        if generations:
            flat_keys = encode_rows(
                np.ascontiguousarray(slot_rows.reshape(q * num_slots, self.k))
            )
        lookups = []
        for qi in range(q):
            overflow = None
            num_collisions = int(collisions[qi])
            if generations:
                keys = flat_keys[qi * num_slots : (qi + 1) * num_slots]
                overflow = self._overflow_buckets_for(keys, generations)
                num_collisions += sum(
                    b.size for b in overflow if b is not None
                )
            lookups.append(
                FrozenQueryLookup(
                    bucket_ids=positions[qi],
                    hash_rows=all_rows[qi],
                    frozen=frozen,
                    overflow=overflow,
                    num_collisions=num_collisions,
                )
            )
        return lookups

    def lookup_batch_adaptive(
        self,
        queries: np.ndarray,
        target_candidates: int,
        min_probes: int = 0,
    ) -> tuple[list[FrozenQueryLookup], np.ndarray, np.ndarray]:
        """Per-query probe budgets: stop probing once the estimate suffices.

        Resolves the full probe fan-out (the slot resolution is one
        binary search per table regardless), then merges each query's
        bucket sketches *ring by ring* — ring ``j`` holds probe ``j`` of
        every table; ring 0 is the home buckets — and keeps, per query,
        only the rings up to the first prefix whose merged HLL estimate
        reaches ``target_candidates``.  Register maxima are associative,
        so the ring-``j`` prefix registers are bit-identical to merging
        the first ``1 + j`` probes outright; with ``min_probes`` covering
        every ring the result is bit-identical to :meth:`lookup_batch`.

        Returns ``(lookups, probes_used, estimates)``: the (possibly
        trimmed) lookups, the stopping ring per query (int64), and the
        merged estimate of each query's kept candidate set (float64, the
        exact value :meth:`merged_estimates_batch` would report for the
        returned lookups).
        """
        from repro.utils.validation import check_matrix

        self._require_sketches()
        queries = check_matrix(queries, dim=self.dim, name="queries")
        all_rows = self._batched.hash_points(queries)  # (q, L, k)
        q = all_rows.shape[0]
        rings = self.num_slots // self.num_tables
        frozen, generations = self._snapshot()
        slot_rows = self._slot_rows(all_rows)  # (q, S, k)
        key_matrix = self._query_key_matrix(slot_rows)
        positions = frozen.locate(key_matrix, rings)  # (q, S)
        if q == 0 or rings == 1 or generations:
            # Overflow buckets are keyed per dict table, not per ring,
            # so a trimmed slot set cannot be matched against them
            # consistently; probe the full fan-out (bit-identical to the
            # fixed path) until the next re-freeze folds the overflow.
            # Single-ring layouts (plain, covering) have nothing to trim.
            lookups = self._finish_lookup_batch(
                all_rows, slot_rows, positions, frozen, generations
            )
            probes = np.full(q, rings - 1, dtype=np.int64)
            return lookups, probes, self.merged_estimates_batch(lookups)
        num_tables = self.num_tables
        # Pseudo-query trick: ring j of query i becomes row
        # ``i * rings + j`` of a ``(q * rings, L)`` bucket matrix, so one
        # vectorised register merge yields every ring's registers at
        # once; a cumulative max over the ring axis then gives every
        # probe-prefix's merged registers.
        ring_mat = (
            positions.reshape(q, num_tables, rings)
            .transpose(0, 2, 1)
            .reshape(q * rings, num_tables)
        )
        ring_regs = self._registers_for_bucket_matrix(frozen, ring_mat)
        prefix = np.maximum.accumulate(ring_regs.reshape(q, rings, -1), axis=1)
        estimates = _estimates_from_registers(
            prefix.reshape(q * rings, -1)
        ).reshape(q, rings)
        reached = estimates >= float(target_candidates)
        min_ring = min(max(int(min_probes), 0), rings - 1)
        if min_ring:
            reached[:, :min_ring] = False
        stop = np.where(
            reached.any(axis=1), reached.argmax(axis=1), rings - 1
        ).astype(np.int64)
        slot_rings = np.tile(np.arange(rings), num_tables)  # ring of each slot
        trimmed = np.where(slot_rings[None, :] <= stop[:, None], positions, -1)
        lookups = self._finish_lookup_batch(
            all_rows, slot_rows, trimmed, frozen, []
        )
        return lookups, stop, estimates[np.arange(q), stop]

    # ------------------------------------------------------------------
    # Sketch merging (Algorithm 2, line 2)
    # ------------------------------------------------------------------
    def _require_sketches(self) -> None:
        self._require_built()
        if not self.with_sketches or self._hll_hashes is None:
            raise ConfigurationError("index was built with with_sketches=False")

    def merged_sketch(self, lookup: FrozenQueryLookup) -> HyperLogLog:
        """Merge the query's bucket sketches: row maxima over the register matrix."""
        self._require_sketches()
        # Read through the lookup's snapshot: a background re-freeze may
        # swap self.frozen between lookup and merge, but the lookup's
        # bucket indexes address the arrays it was taken against.
        frozen = lookup._frozen
        m = 1 << self.hll_precision
        regs = np.zeros(m, dtype=np.uint8)
        found = lookup.found_buckets()
        srows = frozen.sketch_rows[found]
        sketched = srows[srows >= 0]
        if sketched.size:
            np.maximum.reduce(frozen.registers[sketched], axis=0, out=regs)
        lazy = found[srows < 0]
        if lazy.size:
            ids = frozen.gather_members(lazy)
            np.maximum.at(
                regs, self._hll_hashes.registers[ids], self._hll_hashes.ranks[ids]
            )
        merged = HyperLogLog(p=self.hll_precision, seed=self.hll_seed)
        merged.registers = regs
        if lookup.overflow is not None:
            for bucket in lookup.overflow:
                if bucket is not None:
                    bucket.contribute_to(merged, self._hll_hashes)
        return merged

    def _registers_for_bucket_matrix(
        self, frozen: FrozenTables, bucket_mat: np.ndarray
    ) -> np.ndarray:
        """Merged frozen-bucket registers per row of a bucket-index matrix.

        ``bucket_mat`` is any ``(rows, cols)`` matrix of global bucket
        indexes (-1 = no bucket); the result is the ``(rows, m)`` uint8
        register matrix of each row's merged sketch.  Rows need not map
        one-to-one onto queries — :meth:`lookup_batch_adaptive` feeds it
        one row per ``(query, probe ring)`` pair.  Overflow buckets are
        the caller's business (they are per-lookup objects, not rows of
        a matrix).
        """
        m = 1 << self.hll_precision
        registers = np.zeros((bucket_mat.shape[0], m), dtype=np.uint8)
        if bucket_mat.shape[0] == 0:
            return registers
        found = bucket_mat >= 0
        qi, _ = np.nonzero(found)  # row-major -> qi ascending
        buckets = bucket_mat[found]
        srows = frozen.sketch_rows[buckets]
        sketched = srows >= 0
        if sketched.any():
            rows = qi[sketched]
            stacked = frozen.registers[srows[sketched]]
            # Row-major np.nonzero keeps `rows` sorted, so segments of
            # equal query index are contiguous: one reduceat merges each
            # query's sketched buckets.
            seg_starts = np.flatnonzero(np.diff(rows, prepend=-1))
            seg_max = np.maximum.reduceat(stacked, seg_starts, axis=0)
            registers[rows[seg_starts]] = seg_max
        lazy = ~sketched
        if lazy.any():
            lazy_buckets = buckets[lazy]
            ids = frozen.gather_members(lazy_buckets)
            rows = np.repeat(qi[lazy], frozen.sizes[lazy_buckets])
            np.maximum.at(
                registers,
                (rows, self._hll_hashes.registers[ids]),
                self._hll_hashes.ranks[ids],
            )
        return registers

    def _merged_registers_batch(self, lookups: list[FrozenQueryLookup]) -> np.ndarray:
        """The ``(q, m)`` merged-register matrix of a lookup batch."""
        m = 1 << self.hll_precision
        q = len(lookups)
        if q == 0:
            return np.zeros((0, m), dtype=np.uint8)
        frozen = lookups[0]._frozen  # one lookup_batch -> one snapshot
        bucket_mat = np.stack([lk.bucket_ids for lk in lookups])  # (q, L)
        registers = self._registers_for_bucket_matrix(frozen, bucket_mat)
        if any(lk.overflow is not None for lk in lookups):
            for i, lk in enumerate(lookups):
                if lk.overflow is None:
                    continue
                for bucket in lk.overflow:
                    if bucket is None or not len(bucket):
                        continue
                    if bucket.sketch is not None:
                        np.maximum(
                            registers[i], bucket.sketch.registers, out=registers[i]
                        )
                    else:
                        ids = bucket.ids
                        np.maximum.at(
                            registers[i],
                            self._hll_hashes.registers[ids],
                            self._hll_hashes.ranks[ids],
                        )
        return registers

    def merged_sketches_batch(
        self, lookups: list[FrozenQueryLookup]
    ) -> list[HyperLogLog]:
        """One merged sketch per lookup, fully vectorised across queries."""
        self._require_sketches()
        registers = self._merged_registers_batch(lookups)
        sketches = []
        for i in range(len(lookups)):
            sketch = HyperLogLog(p=self.hll_precision, seed=self.hll_seed)
            sketch.registers = registers[i]
            sketches.append(sketch)
        return sketches

    def merged_estimates_batch(
        self, lookups: list[FrozenQueryLookup]
    ) -> np.ndarray:
        """``candSize`` estimates for a lookup batch without sketch objects.

        The harmonic sums and zero-register counts are computed for all
        queries in two vectorised passes; the scalar bias/linear-counting
        finish per query replays :meth:`HyperLogLog.estimate` exactly,
        so the values are bit-identical to the per-sketch path.
        """
        self._require_sketches()
        return _estimates_from_registers(self._merged_registers_batch(lookups))

    # ------------------------------------------------------------------
    # Step S2: candidate union
    # ------------------------------------------------------------------
    def candidate_ids(
        self, lookup: FrozenQueryLookup, dedup: str | None = None
    ) -> np.ndarray:
        """Deduplicated candidate set: boolean scatter over member slices."""
        self._require_built()
        if dedup is None:
            dedup = self.dedup
        elif dedup not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f'dedup must be "scalar" or "vectorized", got {dedup!r}'
            )
        if dedup == "vectorized":
            # One boolean scatter over the concatenated zero-copy member
            # slices; members are stored in native index dtype (intp) so
            # the scatter pays no per-query index conversion.
            parts = lookup.member_slices()
            if lookup.overflow is not None:
                parts = parts + [
                    bucket.ids
                    for bucket in lookup.overflow
                    if bucket is not None and len(bucket)
                ]
            seen = np.zeros(self.n, dtype=bool)
            if parts:
                seen[np.concatenate(parts)] = True
            return np.flatnonzero(seen)
        # Scalar mode preserves Equation (1)'s per-collision cost
        # structure, exactly like the dict layout's implementation.
        return self._candidate_ids_scalar(lookup)

    def _candidate_ids_scalar(self, lookup: FrozenQueryLookup) -> np.ndarray:
        frozen = lookup._frozen
        num_slots = len(lookup.bucket_ids)
        seen = np.zeros(self.n, dtype=bool)
        out: list[int] = []
        for t in range(num_slots):
            b = int(lookup.bucket_ids[t])
            if b >= 0:
                start = int(frozen.offsets[b])
                stop = start + int(frozen.sizes[b])
                for point_id in frozen.members[start:stop].tolist():
                    if not seen[point_id]:
                        seen[point_id] = True
                        out.append(point_id)
            if lookup.overflow is not None:
                # The flat overflow list is generation-major (G * S
                # slots); slot t owns entry g * S + t of each generation.
                for bucket in lookup.overflow[t::num_slots]:
                    if bucket is not None:
                        for point_id in bucket.ids.tolist():
                            if not seen[point_id]:
                                seen[point_id] = True
                                out.append(point_id)
        return np.sort(np.asarray(out, dtype=np.int64))

    def candidate_ids_batch(
        self, lookups: list[FrozenQueryLookup], dedup: str | None = None
    ) -> list[np.ndarray]:
        """Candidate sets for many lookups, deduplicating shared work.

        Equivalent to ``[self.candidate_ids(lk, dedup) for lk in
        lookups]``.  Queries from the same dense region collide into the
        *same* bucket in every table — their rows of the ``(q, L)``
        bucket-index matrix are identical — so each distinct bucket set
        is unioned once and the resulting array shared (it is consumed
        read-only by Step S3).  Only expressible in the frozen layout,
        where a query's bucket set is a plain integer row.
        """
        self._require_built()
        if dedup is None:
            dedup = self.dedup
        if (
            dedup == "scalar"
            or len(lookups) <= 1
            or any(lk.overflow is not None for lk in lookups)
        ):
            # Overflow buckets are per-lookup objects; the bucket row
            # alone no longer keys the candidate set, so fall back.
            return [self.candidate_ids(lk, dedup=dedup) for lk in lookups]
        matrix = np.stack([lk.bucket_ids for lk in lookups])
        unique_rows, inverse = np.unique(matrix, axis=0, return_inverse=True)
        if unique_rows.shape[0] == len(lookups):
            return [self.candidate_ids(lk, dedup=dedup) for lk in lookups]
        representatives = {}
        for i, group in enumerate(inverse.tolist()):
            if group not in representatives:
                representatives[group] = self.candidate_ids(lookups[i], dedup=dedup)
        return [representatives[group] for group in inverse.tolist()]

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def _all_overflow_tables(self) -> list[HashTable]:
        """Every live overflow table, compacting generation included."""
        tables = list(self._compacting_tables or ())
        tables.extend(self.tables)
        return tables

    @property
    def sketch_memory_bytes(self) -> int:
        overflow = sum(t.sketch_memory_bytes for t in self._all_overflow_tables())
        return int(self.frozen.registers.nbytes) + overflow

    def memory_report(self) -> dict[str, int]:
        self._require_built()
        report = self.frozen.memory_bytes
        for table in self._all_overflow_tables():
            for key, bucket in table.buckets.items():
                report["bucket_ids"] += 8 * bucket.size
                report["bucket_keys"] += len(key)
        report["sketches"] = self.sketch_memory_bytes
        report["points"] = int(self.points.nbytes)
        report["total"] = sum(
            report[k] for k in ("points", "bucket_ids", "bucket_keys", "sketches")
        )
        return report

    def bucket_statistics(self) -> dict[str, float]:
        self._require_built()
        sizes = [np.asarray(self.frozen.sizes)]
        sketched = [np.asarray(self.frozen.sketch_rows) >= 0]
        for table in self._all_overflow_tables():
            if table.buckets:
                sizes.append(table.bucket_sizes())
                sketched.append(
                    np.asarray([b.has_sketch for b in table.buckets.values()])
                )
        all_sizes = np.concatenate(sizes)
        return {
            "tables": float(self.num_tables),
            "buckets": float(all_sizes.size),
            "mean_size": float(all_sizes.mean()),
            "max_size": float(all_sizes.max()),
            "sketched_fraction": float(np.mean(np.concatenate(sketched))),
        }

    def __repr__(self) -> str:
        built = f"n={self.n}" if self.is_built else "unbuilt"
        return (
            f"{type(self).__name__}(family={type(self.family).__name__}, "
            f"k={self.k}, L={self.num_tables}, {built}, "
            f"overflow={self.overflow_count})"
        )


# ----------------------------------------------------------------------
# Persistence: a directory of plain .npy files, mmap-loadable
# ----------------------------------------------------------------------

_ARRAY_FILES = (
    "points",
    "keys_raw",
    "table_slices",
    "offsets",
    "sizes",
    "members",
    "sketch_rows",
    "registers",
)


def save_frozen_index(index: FrozenLSHIndex, path: str) -> None:
    """Persist a frozen index under directory ``path`` (plain ``.npy`` files).

    Any overflow side-table is compacted first (:meth:`refreeze`), so
    the artifact is pure CSR arrays.  Every array lands in its own
    uncompressed ``.npy`` file — unlike ``.npz`` members these can be
    reopened with ``np.load(..., mmap_mode="r")``, which is what makes
    :func:`load_frozen_index` zero-copy.
    """
    if not isinstance(index, FrozenLSHIndex):
        raise ConfigurationError(
            f"save_frozen_index persists FrozenLSHIndex objects, "
            f"got {type(index).__name__}"
        )
    index._require_built()
    config = {
        "format_version": _FROZEN_FORMAT_VERSION,
        "layout": "frozen",
        "variant": index.variant,
        "num_tables": index.num_tables,
        "hll_precision": index.hll_precision,
        "hll_seed": index.hll_seed,
        "lazy_threshold": index.lazy_threshold,
        "with_sketches": index.with_sketches,
        "dedup": index.dedup,
        "dim": index.dim,
        "refreeze_threshold": index.refreeze_threshold,
    }
    if index.variant == "covering":
        # No hash kernel to persist: the block permutation *is* the
        # hash, and it is plain JSON.
        batched = None
        config["radius"] = index.radius
        config["blocks"] = [block.tolist() for block in index._blocks]
        config["key_width"] = index.key_width
    else:
        batched = index._batched
        if batched.params is None or batched.kind == "generic":
            raise ConfigurationError(
                "index family does not expose serialisable kernel parameters "
                f"(kind={batched.kind!r}); only built-in families are supported"
            )
        config["k"] = index.k
        config["family"] = batched.kind
        config["kernel_params"] = sorted(batched.params)
        if batched.kind == "pstable":
            config["p"] = index.family.p
            config["w"] = index.family.w
        if index.variant == "multiprobe":
            config["num_probes"] = index.num_probes
    index.refreeze()
    frozen = index.frozen
    arrays = {
        "points": index.points,
        "keys_raw": frozen.keys_raw,
        "table_slices": frozen.table_slices,
        "offsets": frozen.offsets,
        "sizes": frozen.sizes,
        "members": frozen.members,
        "sketch_rows": frozen.sketch_rows,
        "registers": frozen.registers,
    }
    if batched is not None:
        for name, array in batched.params.items():
            arrays[f"kernel_{name}"] = array
    # Stage the whole artifact in a sibling temp directory, fsync every
    # file, then swap it in with one rename pair (utils.fsio): a crash
    # mid-save leaves the previous artifact intact instead of a mixture
    # of old and new arrays.  A re-saved index may hold arrays that are
    # memory-mapped from the files being replaced (open -> save back to
    # the same path); the retired directory's inodes stay valid for
    # those mappings until they close, while fresh opens only ever see
    # a complete directory.
    staged = staging_path(path)
    shutil.rmtree(staged, ignore_errors=True)
    os.makedirs(staged)
    try:
        for name, array in arrays.items():
            with open(os.path.join(staged, f"{name}.npy"), "wb") as fh:
                np.save(fh, np.ascontiguousarray(array))
                fh.flush()
                os.fsync(fh.fileno())
        write_json_atomic(os.path.join(staged, _CONFIG_FILE), config)
        commit_dir(staged, path)
    except BaseException:
        shutil.rmtree(staged, ignore_errors=True)
        raise


def load_frozen_index(path: str, mmap_mode: str | None = "r") -> FrozenLSHIndex:
    """Reopen a frozen index saved by :func:`save_frozen_index`.

    All bucket arrays (and the data matrix) come back memory-mapped
    with the default ``mmap_mode="r"`` — no bucket reconstruction, no
    rehashing, answers bit-identical to the saved instance.  Pass
    ``mmap_mode=None`` to materialise everything in RAM instead.
    """
    from repro.hashing.batched import BatchedHash
    from repro.index.serialize import _rebuild_family_and_kernel

    config_path = os.path.join(path, _CONFIG_FILE)
    if not os.path.exists(config_path):
        raise ConfigurationError(
            f"no frozen index at {path!r} (missing {_CONFIG_FILE})"
        )
    with open(config_path) as fh:
        try:
            config = json.load(fh)
        except ValueError as exc:
            raise CorruptArtifactError(
                f"frozen index config {config_path!r} is not valid JSON "
                f"({exc}); the artifact is truncated or corrupt"
            ) from exc
    if not isinstance(config, dict):
        raise CorruptArtifactError(
            f"frozen index config {config_path!r} must hold a JSON object, "
            f"got {type(config).__name__}"
        )
    if config.get("format_version") != _FROZEN_FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported frozen index version: {config.get('format_version')!r}"
        )
    variant = config.get("variant", "plain")
    required = {
        "num_tables", "hll_precision", "hll_seed", "lazy_threshold",
        "with_sketches", "dedup", "dim",
    }
    required |= (
        {"radius", "blocks", "key_width"}
        if variant == "covering"
        else {"k", "family", "kernel_params"}
    )
    missing_keys = sorted(required - set(config))
    if missing_keys:
        raise CorruptArtifactError(
            f"frozen index config {config_path!r} is missing keys "
            f"{missing_keys}; the artifact is truncated or corrupt"
        )

    def _load_array(name: str) -> np.ndarray:
        target = os.path.join(path, f"{name}.npy")
        try:
            return np.load(target, mmap_mode=mmap_mode, allow_pickle=False)
        except FileNotFoundError as exc:
            raise CorruptArtifactError(
                f"frozen index at {path!r} is missing {name}.npy; "
                "the artifact is incomplete"
            ) from exc
        except (ValueError, OSError, EOFError) as exc:
            raise CorruptArtifactError(
                f"frozen index array {target!r} is unreadable ({exc}); "
                "the artifact is truncated or corrupt"
            ) from exc

    arrays = {name: _load_array(name) for name in _ARRAY_FILES}
    frozen = FrozenTables(
        num_tables=config["num_tables"],
        key_width=(
            config["key_width"] if variant == "covering" else 8 * config["k"]
        ),
        keys_raw=arrays["keys_raw"],
        table_slices=arrays["table_slices"],
        offsets=arrays["offsets"],
        sizes=arrays["sizes"],
        members=arrays["members"],
        sketch_rows=arrays["sketch_rows"],
        registers=arrays["registers"],
    )
    if variant == "covering":
        from repro.index.frozen_probing import FrozenCoveringLSHIndex

        return FrozenCoveringLSHIndex.from_state(
            points=arrays["points"],
            frozen=frozen,
            dim=config["dim"],
            radius=config["radius"],
            blocks=config["blocks"],
            hll_precision=config["hll_precision"],
            hll_seed=config["hll_seed"],
            lazy_threshold=config["lazy_threshold"],
            with_sketches=config["with_sketches"],
            dedup=config["dedup"],
            refreeze_threshold=config.get("refreeze_threshold"),
        )
    kernel_params = {
        name: np.load(
            os.path.join(path, f"kernel_{name}.npy"),
            mmap_mode=mmap_mode,
            allow_pickle=False,
        )
        for name in config["kernel_params"]
    }
    dim = config["dim"]
    family, fused = _rebuild_family_and_kernel(config, kernel_params, dim)
    batched = BatchedHash(
        fused,
        k=config["k"],
        num_tables=config["num_tables"],
        dim=dim,
        kind=config["family"],
        params=kernel_params,
    )
    state_kwargs = dict(
        family=family,
        batched=batched,
        points=arrays["points"],
        frozen=frozen,
        k=config["k"],
        num_tables=config["num_tables"],
        hll_precision=config["hll_precision"],
        hll_seed=config["hll_seed"],
        lazy_threshold=config["lazy_threshold"],
        with_sketches=config["with_sketches"],
        dedup=config["dedup"],
        refreeze_threshold=config.get("refreeze_threshold"),
    )
    if variant == "multiprobe":
        from repro.index.frozen_probing import FrozenMultiProbeLSHIndex

        return FrozenMultiProbeLSHIndex.from_state(
            num_probes=config["num_probes"], **state_kwargs
        )
    return FrozenLSHIndex.from_state(**state_kwargs)
