"""Index persistence: save a built LSH index to one ``.npz`` file.

Production users build once and query many times, so the index must
survive a process restart without re-hashing the dataset.  The format
is a single compressed numpy archive — no pickle, so files are safe to
load from untrusted storage:

* the data matrix;
* the fused hash kernel's sampled parameters (projection matrices,
  offsets, coordinates or priorities — exposed explicitly by each
  family's :meth:`sample_batch` via ``BatchedHash.params``);
* per table: the raw key bytes (fixed width, ``8 * k`` per key), the
  per-bucket counts, and the concatenated bucket ids;
* the index configuration as a JSON blob.

Bucket sketches are *rebuilt* from the stored ids at load time: the
HLL hashing is deterministic in (id, seed), so the reconstruction is
bit-identical to the saved index, and rebuilding (one vectorised pass
per bucket) is far cheaper than re-hashing the dataset.
"""

from __future__ import annotations

import json

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hashing.batched import BatchedHash
from repro.hashing.bit_sampling import BitSamplingLSH
from repro.hashing.minhash import MinHashLSH, _ABSENT
from repro.hashing.pstable import PStableLSH
from repro.hashing.simhash import SimHashLSH
from repro.index.bucket import Bucket
from repro.index.lsh_index import LSHIndex
from repro.index.table import HashTable
from repro.sketches.hyperloglog import PrecomputedHllHashes

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index: LSHIndex, path: str) -> None:
    """Serialise a built index to ``path`` (compressed npz, no pickle).

    Parameters
    ----------
    index:
        A built :class:`~repro.index.lsh_index.LSHIndex` whose family
        is one of the built-ins (bit sampling, SimHash, p-stable,
        MinHash); custom families would need their own parameter
        export and are rejected.
    path:
        Destination file; numpy appends ``.npz`` if missing.
    """
    if not index.is_built:
        raise ConfigurationError("cannot save an index that has not been built")
    if index.layout != "dict":
        raise ConfigurationError(
            "save_index writes the dict bucket layout; persist frozen "
            "indexes with repro.index.frozen.save_frozen_index"
        )
    variant = getattr(index, "variant", "plain")
    config = {
        "format_version": _FORMAT_VERSION,
        "variant": variant,
        "num_tables": index.num_tables,
        "hll_precision": index.hll_precision,
        "hll_seed": index.hll_seed,
        "lazy_threshold": index.lazy_threshold,
        "with_sketches": index.with_sketches,
        "dedup": index.dedup,
        "dim": index.dim,
    }
    payload: dict[str, np.ndarray] = {"points": index.points}
    if variant == "covering":
        # The block permutation is the whole hash; per-table key widths
        # follow the block widths, so each table records its own.
        config["radius"] = index.radius
        config["blocks"] = [block.tolist() for block in index._blocks]
        key_widths = [8 * block.size for block in index._blocks]
    else:
        batched = index._batched
        if batched.params is None or batched.kind == "generic":
            raise ConfigurationError(
                "index family does not expose serialisable kernel parameters "
                f"(kind={batched.kind!r}); only built-in families are supported"
            )
        config["k"] = index.k
        config["family"] = batched.kind
        if batched.kind == "pstable":
            config["p"] = index.family.p
            config["w"] = index.family.w
        if variant == "multiprobe":
            config["num_probes"] = index.num_probes
        for name, array in batched.params.items():
            payload[f"kernel_{name}"] = array
        key_widths = [8 * index.k] * index.num_tables
    for t, (table, key_width) in enumerate(zip(index.tables, key_widths)):
        keys = list(table.buckets)
        ids = [bucket.ids for bucket in table.buckets.values()]
        if keys:
            key_matrix = np.frombuffer(b"".join(keys), dtype=np.uint8)
            key_matrix = key_matrix.reshape(len(keys), key_width)
            concatenated = np.concatenate(ids)
        else:
            key_matrix = np.empty((0, key_width), dtype=np.uint8)
            concatenated = np.empty(0, dtype=np.int64)
        payload[f"table{t}_keys"] = key_matrix
        payload[f"table{t}_counts"] = np.asarray([arr.size for arr in ids], dtype=np.int64)
        payload[f"table{t}_ids"] = concatenated
    payload["config_json"] = np.frombuffer(
        json.dumps(config).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_index(path: str) -> LSHIndex:
    """Load an index saved by :func:`save_index`.

    The returned index is query-identical to the saved one: same
    buckets, same sketches (rebuilt deterministically), same fused
    query kernel.
    """
    with np.load(path, allow_pickle=False) as archive:
        config = json.loads(bytes(archive["config_json"]).decode("utf-8"))
        if config.get("format_version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported index file version: {config.get('format_version')}"
            )
        points = archive["points"]
        dim = config["dim"]
        num_tables = config["num_tables"]
        variant = config.get("variant", "plain")
        if variant == "covering":
            from repro.index.covering import CoveringLSHIndex

            index = CoveringLSHIndex(
                dim=dim,
                radius=config["radius"],
                hll_precision=config["hll_precision"],
                hll_seed=config["hll_seed"],
                lazy_threshold=config["lazy_threshold"],
                with_sketches=config["with_sketches"],
                dedup=config["dedup"],
                # The constructor's permutation draw is discarded below;
                # a fixed seed keeps loading deterministic and entropy-free.
                seed=0,
            )
            # The saved permutation replaces the constructor's draw.
            index._blocks = [
                np.asarray(block, dtype=np.int64) for block in config["blocks"]
            ]
        else:
            k = config["k"]
            kernel_params = {
                key[len("kernel_"):]: archive[key]
                for key in archive.files
                if key.startswith("kernel_")
            }
            family, fused = _rebuild_family_and_kernel(config, kernel_params, dim)
            index_kwargs = dict(
                k=k,
                num_tables=num_tables,
                hll_precision=config["hll_precision"],
                hll_seed=config["hll_seed"],
                lazy_threshold=config["lazy_threshold"],
                with_sketches=config["with_sketches"],
                dedup=config["dedup"],
            )
            if variant == "multiprobe":
                from repro.index.multiprobe_index import MultiProbeLSHIndex

                index = MultiProbeLSHIndex(
                    family, num_probes=config["num_probes"], **index_kwargs
                )
            else:
                index = LSHIndex(family, **index_kwargs)
            index._batched = BatchedHash(
                fused,
                k=k,
                num_tables=num_tables,
                dim=dim,
                kind=config["family"],
                params=kernel_params,
            )
        index.points = points
        index._hll_hashes = (
            PrecomputedHllHashes(
                points.shape[0], p=index.hll_precision, seed=index.hll_seed
            )
            if index.with_sketches
            else None
        )
        index.tables = []
        for t in range(num_tables):
            table = HashTable(
                hll_precision=index.hll_precision,
                hll_seed=index.hll_seed,
                lazy_threshold=index.lazy_threshold,
                with_sketches=index.with_sketches,
            )
            keys_matrix = archive[f"table{t}_keys"]
            counts = archive[f"table{t}_counts"]
            all_ids = archive[f"table{t}_ids"]
            boundaries = np.cumsum(counts)[:-1]
            for key_row, ids in zip(keys_matrix, np.split(all_ids, boundaries)):
                table.buckets[key_row.tobytes()] = Bucket.from_ids(
                    ids,
                    index._hll_hashes,
                    hll_precision=index.hll_precision,
                    hll_seed=index.hll_seed,
                    lazy_threshold=index.lazy_threshold,
                )
            index.tables.append(table)
    return index


def _rebuild_family_and_kernel(config: dict, params: dict[str, np.ndarray], dim: int):
    """Reconstruct the family object and fused kernel from stored arrays."""
    name = config["family"]
    if name == "pstable":
        projections = params["projections"]
        offsets = params["offsets"]
        w = float(config["w"])
        family = PStableLSH(dim, w=w, p=config["p"])

        def fused(points: np.ndarray) -> np.ndarray:
            shifted = np.asarray(points, dtype=np.float64) @ projections + offsets
            return np.floor(shifted / w).astype(np.int64)

        return family, fused
    if name == "simhash":
        planes = params["planes"]
        family = SimHashLSH(dim)

        def fused(points: np.ndarray) -> np.ndarray:
            return (np.asarray(points, dtype=np.float64) @ planes > 0.0).astype(np.int64)

        return family, fused
    if name == "bit_sampling":
        coords = params["coords"].astype(np.int64)
        family = BitSamplingLSH(dim)

        def fused(points: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(points[:, coords], dtype=np.int64)

        return family, fused
    if name == "minhash":
        priorities = params["priorities"].astype(np.int64)
        family = MinHashLSH(dim)

        def fused(points: np.ndarray) -> np.ndarray:
            present = np.asarray(points).astype(bool)
            n = present.shape[0]
            values = np.empty((n, priorities.shape[0]), dtype=np.int64)
            for j in range(priorities.shape[0]):
                masked = np.where(present, priorities[j][None, :], _ABSENT)
                values[:, j] = masked.min(axis=1)
            return values

        return family, fused
    raise ConfigurationError(f"unknown family in index file: {name!r}")
