"""Multi-probe LSH index — the paper's named future-work extension.

Multi-probe LSH (Lv et al., VLDB 2007) examines several "close" buckets
per table instead of multiplying tables, trading memory for probes.
The paper's conclusion observes that hybrid search "fits well with the
multi-probe LSH schemes ... which typically require a large number of
probes" — more probed buckets means more collisions and more duplicate
removal, so cost estimation matters even more.

:class:`MultiProbeLSHIndex` extends :class:`~repro.index.lsh_index.LSHIndex`
with a ``num_probes`` parameter: each table contributes its home bucket
plus up to ``num_probes`` perturbed buckets.  The perturbation scheme is
chosen per family: bit flips for binary hash values (SimHash, bit
sampling), ±1 coordinate offsets for the integer values of p-stable
quantisers.  All sketch/collision primitives transparently cover the
probed buckets, so :class:`~repro.core.hybrid.HybridSearcher` works on
this index unchanged — which is precisely the claim the A4 extension
benchmark exercises.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.composite import encode_rows
from repro.hashing.probing import probe_deltas
from repro.index.bucket import Bucket
from repro.index.lsh_index import LSHIndex, QueryLookup

__all__ = ["MultiProbeLSHIndex"]


class MultiProbeLSHIndex(LSHIndex):
    """LSH index that probes ``1 + num_probes`` buckets per table.

    Parameters
    ----------
    num_probes:
        Additional buckets examined per table beyond the home bucket.
    (remaining parameters as in :class:`~repro.index.lsh_index.LSHIndex`)
    """

    variant = "multiprobe"

    def __init__(self, *args, num_probes: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if num_probes < 0:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(f"num_probes must be >= 0, got {num_probes}")
        self.num_probes = int(num_probes)
        # One classification + enumeration shared with the frozen
        # layout (repro.hashing.probing.probe_deltas), so the two
        # layouts can never probe different bucket sets.
        self._binary_values, self._probe_deltas = probe_deltas(
            self.family, self.k, self.num_probes
        )

    def _probe_keys(self, hash_row: np.ndarray) -> list[bytes]:
        """Keys of the perturbed buckets for one table's hash row."""
        if self._probe_deltas.shape[0] == 0:
            return []
        row = np.asarray(hash_row, dtype=np.int64)[None, :]
        if self._binary_values:
            return encode_rows(row ^ self._probe_deltas)
        return encode_rows(row + self._probe_deltas)

    def _lookup_from_rows(self, rows: np.ndarray, home_keys: list[bytes]) -> QueryLookup:
        """Assemble one query's home + probe buckets from its hash rows.

        Shared by :meth:`lookup` and :meth:`lookup_batch` so the probed
        bucket set (and its order) can never diverge between the
        single-query and batched paths.
        """
        keys: list[bytes] = []
        buckets: list[Bucket | None] = []
        for table, row, home_key in zip(self.tables, rows, home_keys):
            keys.append(home_key)
            buckets.append(table.get(home_key))
            for key in self._probe_keys(row):
                keys.append(key)
                buckets.append(table.get(key))
        return QueryLookup(keys=keys, buckets=buckets, hash_rows=list(rows))

    def lookup(self, query: np.ndarray) -> QueryLookup:
        """Locate home + probe buckets in every table.

        The returned :class:`~repro.index.lsh_index.QueryLookup` lists
        one entry per probed bucket (so ``len(keys)`` is up to
        ``L * (1 + num_probes)``); all downstream primitives — collision
        count, sketch merge, candidate retrieval — operate on the full
        probed set without modification.
        """
        self._require_built()
        rows = self._batched.query_rows(query)  # validates dim; (L, k)
        return self._lookup_from_rows(rows, encode_rows(rows))

    def lookup_batch(self, queries: np.ndarray) -> list[QueryLookup]:
        """Batched home + probe lookups (one fused hashing pass).

        Overridden so the batched serving stack sees exactly the same
        probed bucket set as :meth:`lookup` — the base implementation
        would silently return home buckets only.
        """
        from repro.utils.validation import check_matrix

        self._require_built()
        queries = check_matrix(queries, dim=self.dim, name="queries")
        all_rows = self._batched.hash_points(queries)  # (q, L, k)
        num_queries = all_rows.shape[0]
        flat_keys = encode_rows(all_rows.reshape(num_queries * self.num_tables, self.k))
        return [
            self._lookup_from_rows(
                rows, flat_keys[qi * self.num_tables : (qi + 1) * self.num_tables]
            )
            for qi, rows in enumerate(all_rows)
        ]

    def lookup_batch_adaptive(
        self,
        queries: np.ndarray,
        target_candidates: int,
        min_probes: int = 0,
    ) -> tuple[list[QueryLookup], np.ndarray, np.ndarray]:
        """Per-query probe budgets on the dict layout (reference path).

        Mirrors :meth:`~repro.index.frozen.FrozenLSHIndex.lookup_batch_adaptive`:
        each query's bucket sketches are merged ring by ring (ring ``j``
        holds probe ``j`` of every table; ring 0 the home buckets) and
        probing stops at the first ring whose merged HLL estimate
        reaches ``target_candidates``.  Register maxima are associative,
        so every prefix estimate is bit-identical to what
        :meth:`~repro.index.lsh_index.LSHIndex.merged_sketch` reports
        for the trimmed lookup — the frozen layout computes the same
        numbers vectorised.

        Returns ``(lookups, probes_used, estimates)`` with the same
        contract as the frozen layout's implementation.
        """
        from repro.exceptions import ConfigurationError
        from repro.sketches.hyperloglog import HyperLogLog

        self._require_built()
        if not self.with_sketches or self._hll_hashes is None:
            raise ConfigurationError("index was built with with_sketches=False")
        full = self.lookup_batch(queries)
        q = len(full)
        rings = 1 + self._probe_deltas.shape[0]
        if rings == 1:
            probes = np.zeros(q, dtype=np.int64)
            return full, probes, np.asarray(self.merged_estimates_batch(full))
        min_ring = min(max(int(min_probes), 0), rings - 1)
        target = float(target_candidates)
        probes = np.empty(q, dtype=np.int64)
        estimates = np.empty(q, dtype=np.float64)
        lookups = []
        for i, lk in enumerate(full):
            merged = HyperLogLog(p=self.hll_precision, seed=self.hll_seed)
            stop = rings - 1
            estimate = 0.0
            for j in range(rings):
                for t in range(self.num_tables):
                    bucket = lk.buckets[t * rings + j]
                    if bucket is not None and len(bucket):
                        bucket.contribute_to(merged, self._hll_hashes)
                estimate = merged.estimate()
                if j >= min_ring and estimate >= target:
                    stop = j
                    break
            probes[i] = stop
            estimates[i] = estimate
            if stop == rings - 1:
                lookups.append(lk)
                continue
            keep = [
                t * rings + j
                for t in range(self.num_tables)
                for j in range(stop + 1)
            ]
            lookups.append(
                QueryLookup(
                    keys=[lk.keys[s] for s in keep],
                    buckets=[lk.buckets[s] for s in keep],
                    hash_rows=lk.hash_rows,
                )
            )
        return lookups, probes, estimates

    def freeze(self, refreeze_threshold: int | None = None):
        """Compact into the frozen CSR layout (multi-probe fast path).

        Returns a
        :class:`~repro.index.frozen_probing.FrozenMultiProbeLSHIndex`
        sharing this index's points and hash kernel: the tables compact
        into the same contiguous arrays as the plain layout (multi-probe
        changes queries, not construction) and the probe-sequence
        lookups become batched ``searchsorted`` calls — bit-identical
        answers, including after ``insert``.  The source index is left
        untouched.
        """
        from repro.index.frozen_probing import FrozenMultiProbeLSHIndex

        self._require_built()
        return FrozenMultiProbeLSHIndex.from_dict_index(
            self, refreeze_threshold=refreeze_threshold
        )

    def __repr__(self) -> str:
        base = super().__repr__()
        return base[:-1] + f", probes={self.num_probes})"
