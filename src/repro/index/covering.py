"""Covering LSH — rNNR reporting with *no false negatives* (paper §5).

The paper's conclusion names "the covering LSH [14]" (Pagh, SODA 2016)
alongside multi-probe LSH as schemes the hybrid strategy fits well,
"which typically require a large number of probes".  This module
implements a covering scheme for Hamming space and wires it into the
same bucket/sketch machinery so :class:`~repro.core.hybrid.HybridSearcher`
runs on it unchanged.

Construction (block pigeonhole covering)
----------------------------------------
For radius ``r``, split the ``d`` bit positions into ``r + 1``
near-equal blocks and build one table per block, hashing each point by
its bits in that block.  Two points at Hamming distance ``<= r`` have
at most ``r`` differing positions, which cannot touch all ``r + 1``
blocks — so they agree on *some* whole block and collide in that
table.  This yields the covering guarantee deterministically:

    every point within radius ``r`` appears in the candidate set,
    i.e. the "exact" rNNR variant with ``delta = 0``.

The price is selectivity: blocks of width ``d / (r + 1)`` are short
composite hashes, so buckets are large — precisely the "large number
of probes/collisions" regime where the paper expects cost estimation
to pay off most.  A random bit permutation (seeded) decorrelates the
blocks from any structure in the input coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, EmptyIndexError
from repro.hashing.composite import encode_rows
from repro.index.bucket import Bucket
from repro.index.lsh_index import LSHIndex, QueryLookup
from repro.index.table import HashTable
from repro.sketches.hyperloglog import PrecomputedHllHashes
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix, check_positive_int, check_vector

__all__ = ["CoveringLSHIndex"]


class CoveringLSHIndex:
    """Hamming-space rNNR index with a no-false-negative guarantee.

    Parameters
    ----------
    dim:
        Number of bits per vector.
    radius:
        The Hamming radius the covering guarantee is constructed for.
        Queries at larger radii lose the guarantee (they degrade to
        ordinary LSH behaviour).
    hll_precision / hll_seed / lazy_threshold / with_sketches / dedup:
        Bucket-sketch and Step-S2 configuration, exactly as in
        :class:`~repro.index.lsh_index.LSHIndex`.
    seed:
        Randomness for the bit permutation.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> points = (rng.random((300, 32)) < 0.5).astype(np.uint8)
    >>> index = CoveringLSHIndex(dim=32, radius=4, seed=1).build(points)
    >>> lookup = index.lookup(points[0])
    >>> 0 in index.candidate_ids(lookup)   # the point itself always collides
    True
    """

    def __init__(
        self,
        dim: int,
        radius: int,
        hll_precision: int = 7,
        hll_seed: int = 0,
        lazy_threshold: int | None = None,
        with_sketches: bool = True,
        dedup: str = "scalar",
        seed: RandomState = None,
    ) -> None:
        self.dim = check_positive_int(dim, "dim")
        self.radius = check_positive_int(radius, "radius")
        if self.radius >= self.dim:
            raise ConfigurationError(
                f"radius ({radius}) must be smaller than dim ({dim}) for a "
                f"covering construction"
            )
        self.num_tables = self.radius + 1
        self.hll_precision = int(hll_precision)
        self.hll_seed = int(hll_seed)
        self.lazy_threshold = lazy_threshold
        self.with_sketches = bool(with_sketches)
        if dedup not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f'dedup must be "scalar" or "vectorized", got {dedup!r}'
            )
        self.dedup = dedup
        rng = ensure_rng(seed)
        permutation = rng.permutation(self.dim)
        # Near-equal consecutive slices of the permuted positions.
        self._blocks = [
            np.sort(block) for block in np.array_split(permutation, self.num_tables)
        ]
        self.tables: list[HashTable] = []
        self.points: np.ndarray | None = None
        self._hll_hashes: PrecomputedHllHashes | None = None

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, points: np.ndarray) -> "CoveringLSHIndex":
        """Hash every point's block projections into the r+1 tables."""
        points = check_matrix(points, dim=self.dim, name="points")
        n = points.shape[0]
        if n == 0:
            raise ConfigurationError("cannot build an index over zero points")
        self.points = points
        self._hll_hashes = (
            PrecomputedHllHashes(n, p=self.hll_precision, seed=self.hll_seed)
            if self.with_sketches
            else None
        )
        self.tables = []
        for block in self._blocks:
            table = HashTable(
                hll_precision=self.hll_precision,
                hll_seed=self.hll_seed,
                lazy_threshold=self.lazy_threshold,
                with_sketches=self.with_sketches,
            )
            table.insert_hashed(
                np.ascontiguousarray(points[:, block], dtype=np.int64),
                self._hll_hashes,
            )
            self.tables.append(table)
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has been called."""
        return self.points is not None

    @property
    def n(self) -> int:
        """Number of indexed points."""
        self._require_built()
        return int(self.points.shape[0])

    def _require_built(self) -> None:
        if self.points is None:
            raise EmptyIndexError("index has not been built; call build(points) first")

    # ------------------------------------------------------------------
    # Query primitives (same surface as LSHIndex, so HybridSearcher works)
    # ------------------------------------------------------------------
    def lookup(self, query: np.ndarray) -> QueryLookup:
        """Locate the query's bucket in each of the r+1 block tables."""
        self._require_built()
        query = check_vector(query, dim=self.dim, name="query")
        keys: list[bytes] = []
        buckets: list[Bucket | None] = []
        hash_rows: list[np.ndarray] = []
        for table, block in zip(self.tables, self._blocks):
            row = np.ascontiguousarray(query[block], dtype=np.int64)
            hash_rows.append(row)
            key = encode_rows(row[None, :])[0]
            keys.append(key)
            buckets.append(table.get(key))
        return QueryLookup(keys=keys, buckets=buckets, hash_rows=hash_rows)

    # The remaining primitives are identical to LSHIndex; reuse them.
    merged_sketch = LSHIndex.merged_sketch
    estimate_candidates = LSHIndex.estimate_candidates
    candidate_ids = LSHIndex.candidate_ids
    num_collisions = LSHIndex.num_collisions
    sketch_memory_bytes = LSHIndex.sketch_memory_bytes
    bucket_statistics = LSHIndex.bucket_statistics

    @property
    def family(self):
        """Minimal family facade (metric access for the searchers)."""
        from repro.hashing.bit_sampling import BitSamplingLSH

        facade = BitSamplingLSH.__new__(BitSamplingLSH)
        facade.dim = self.dim
        return facade

    def __repr__(self) -> str:
        built = f"n={self.n}" if self.is_built else "unbuilt"
        return (
            f"CoveringLSHIndex(dim={self.dim}, radius={self.radius}, "
            f"tables={self.num_tables}, {built})"
        )
