"""Covering LSH — rNNR reporting with *no false negatives* (paper §5).

The paper's conclusion names "the covering LSH [14]" (Pagh, SODA 2016)
alongside multi-probe LSH as schemes the hybrid strategy fits well,
"which typically require a large number of probes".  This module
implements a covering scheme for Hamming space and wires it into the
same bucket/sketch machinery so :class:`~repro.core.hybrid.HybridSearcher`
runs on it unchanged.

Construction (block pigeonhole covering)
----------------------------------------
For radius ``r``, split the ``d`` bit positions into ``r + 1``
near-equal blocks and build one table per block, hashing each point by
its bits in that block.  Two points at Hamming distance ``<= r`` have
at most ``r`` differing positions, which cannot touch all ``r + 1``
blocks — so they agree on *some* whole block and collide in that
table.  This yields the covering guarantee deterministically:

    every point within radius ``r`` appears in the candidate set,
    i.e. the "exact" rNNR variant with ``delta = 0``.

The price is selectivity: blocks of width ``d / (r + 1)`` are short
composite hashes, so buckets are large — precisely the "large number
of probes/collisions" regime where the paper expects cost estimation
to pay off most.  A random bit permutation (seeded) decorrelates the
blocks from any structure in the input coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, EmptyIndexError
from repro.hashing.composite import encode_rows
from repro.index.bucket import Bucket
from repro.index.lsh_index import LSHIndex, QueryLookup
from repro.index.table import HashTable
from repro.sketches.hyperloglog import PrecomputedHllHashes
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix, check_positive_int, check_vector

__all__ = [
    "CoveringLSHIndex",
    "insert_into_covering_tables",
    "hamming_family_facade",
]


def hamming_family_facade(dim: int):
    """Minimal Hamming family facade for the covering indexes.

    The covering construction has no sampled hash family, but the
    searchers read ``index.family.metric`` (and the persistence layer
    ``family.dim``); this builds the one stand-in both the dict and
    frozen covering layouts share, so the exposed surface cannot drift
    between them.
    """
    from repro.hashing.bit_sampling import BitSamplingLSH

    facade = BitSamplingLSH.__new__(BitSamplingLSH)
    facade.dim = int(dim)
    return facade


def insert_into_covering_tables(index, new_points: np.ndarray) -> np.ndarray:
    """Incremental covering insert: hash block projections into ``index.tables``.

    The covering construction is inherently incremental — each new
    point lands in its block bucket per table and the bucket's sketch
    absorbs its precomputed HLL pair.  Shared by the dict layout's
    :meth:`CoveringLSHIndex.insert` and the frozen layout's overflow
    insert (where ``index.tables`` are the overflow side-tables), so
    the two can never hash an inserted point differently.
    """
    index._require_built()
    new_points = check_matrix(new_points, dim=index.dim, name="new_points")
    m = new_points.shape[0]
    if m == 0:
        return np.empty(0, dtype=np.int64)
    old_n = int(index.points.shape[0])
    new_ids = np.arange(old_n, old_n + m, dtype=np.int64)
    index.points = np.concatenate([index.points, new_points])
    if index._hll_hashes is not None:
        index._hll_hashes.extend(old_n + m)
    for table, block in zip(index.tables, index._blocks):
        keys = encode_rows(np.ascontiguousarray(new_points[:, block], dtype=np.int64))
        for point_id, key in zip(new_ids.tolist(), keys):
            bucket = table.buckets.get(key)
            if bucket is None:
                bucket = Bucket(
                    hll_precision=index.hll_precision,
                    hll_seed=index.hll_seed,
                    lazy_threshold=table.lazy_threshold,
                )
                table.buckets[key] = bucket
            bucket.append(int(point_id), index._hll_hashes)
    return new_ids


class CoveringLSHIndex:
    """Hamming-space rNNR index with a no-false-negative guarantee.

    Parameters
    ----------
    dim:
        Number of bits per vector.
    radius:
        The Hamming radius the covering guarantee is constructed for.
        Queries at larger radii lose the guarantee (they degrade to
        ordinary LSH behaviour).
    hll_precision / hll_seed / lazy_threshold / with_sketches / dedup:
        Bucket-sketch and Step-S2 configuration, exactly as in
        :class:`~repro.index.lsh_index.LSHIndex`.
    seed:
        Randomness for the bit permutation.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> points = (rng.random((300, 32)) < 0.5).astype(np.uint8)
    >>> index = CoveringLSHIndex(dim=32, radius=4, seed=1).build(points)
    >>> lookup = index.lookup(points[0])
    >>> 0 in index.candidate_ids(lookup)   # the point itself always collides
    True
    """

    #: Storage layout / variant tags (the frozen counterpart overrides).
    layout = "dict"
    variant = "covering"

    def __init__(
        self,
        dim: int,
        radius: int,
        hll_precision: int = 7,
        hll_seed: int = 0,
        lazy_threshold: int | None = None,
        with_sketches: bool = True,
        dedup: str = "scalar",
        seed: RandomState = None,
    ) -> None:
        self.dim = check_positive_int(dim, "dim")
        self.radius = check_positive_int(radius, "radius")
        if self.radius >= self.dim:
            raise ConfigurationError(
                f"radius ({radius}) must be smaller than dim ({dim}) for a "
                f"covering construction"
            )
        self.num_tables = self.radius + 1
        self.hll_precision = int(hll_precision)
        self.hll_seed = int(hll_seed)
        self.lazy_threshold = lazy_threshold
        self.with_sketches = bool(with_sketches)
        if dedup not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f'dedup must be "scalar" or "vectorized", got {dedup!r}'
            )
        self.dedup = dedup
        rng = ensure_rng(seed)
        permutation = rng.permutation(self.dim)
        # Near-equal consecutive slices of the permuted positions.
        self._blocks = [
            np.sort(block) for block in np.array_split(permutation, self.num_tables)
        ]
        self.tables: list[HashTable] = []
        self.points: np.ndarray | None = None
        self._hll_hashes: PrecomputedHllHashes | None = None
        self._batched = None  # no fused kernel: blocks have per-table widths
        # One facade for the index's lifetime: the searchers read
        # .family.metric once per answered query.
        self._family_facade = hamming_family_facade(self.dim)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, points: np.ndarray) -> CoveringLSHIndex:
        """Hash every point's block projections into the r+1 tables."""
        points = check_matrix(points, dim=self.dim, name="points")
        n = points.shape[0]
        if n == 0:
            raise ConfigurationError("cannot build an index over zero points")
        self.points = points
        self._hll_hashes = (
            PrecomputedHllHashes(n, p=self.hll_precision, seed=self.hll_seed)
            if self.with_sketches
            else None
        )
        self.tables = []
        for block in self._blocks:
            table = HashTable(
                hll_precision=self.hll_precision,
                hll_seed=self.hll_seed,
                lazy_threshold=self.lazy_threshold,
                with_sketches=self.with_sketches,
            )
            table.insert_hashed(
                np.ascontiguousarray(points[:, block], dtype=np.int64),
                self._hll_hashes,
            )
            self.tables.append(table)
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has been called."""
        return self.points is not None

    @property
    def n(self) -> int:
        """Number of indexed points."""
        self._require_built()
        return int(self.points.shape[0])

    def _require_built(self) -> None:
        if self.points is None:
            raise EmptyIndexError("index has not been built; call build(points) first")

    # ------------------------------------------------------------------
    # Query primitives (same surface as LSHIndex, so HybridSearcher works)
    # ------------------------------------------------------------------
    def lookup(self, query: np.ndarray) -> QueryLookup:
        """Locate the query's bucket in each of the r+1 block tables."""
        self._require_built()
        query = check_vector(query, dim=self.dim, name="query")
        keys: list[bytes] = []
        buckets: list[Bucket | None] = []
        hash_rows: list[np.ndarray] = []
        for table, block in zip(self.tables, self._blocks):
            row = np.ascontiguousarray(query[block], dtype=np.int64)
            hash_rows.append(row)
            key = encode_rows(row[None, :])[0]
            keys.append(key)
            buckets.append(table.get(key))
        return QueryLookup(keys=keys, buckets=buckets, hash_rows=hash_rows)

    def lookup_batch(self, queries: np.ndarray) -> list[QueryLookup]:
        """Batched block lookups: one encode pass per table.

        Equivalent to ``[self.lookup(q) for q in queries]``; this is
        what lets the batched serving engines (and the hybrid batch
        dispatch) run on a covering index.
        """
        self._require_built()
        queries = check_matrix(queries, dim=self.dim, name="queries")
        per_table_rows = [
            np.ascontiguousarray(queries[:, block], dtype=np.int64)
            for block in self._blocks
        ]
        per_table_keys = [encode_rows(rows) for rows in per_table_rows]
        lookups = []
        for qi in range(queries.shape[0]):
            keys = [per_table_keys[t][qi] for t in range(self.num_tables)]
            buckets = [table.get(key) for table, key in zip(self.tables, keys)]
            hash_rows = [per_table_rows[t][qi] for t in range(self.num_tables)]
            lookups.append(QueryLookup(keys=keys, buckets=buckets, hash_rows=hash_rows))
        return lookups

    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Insert points into the block tables (incremental construction).

        Returns the ids assigned to the new points (``n .. n + m - 1``).
        The covering guarantee extends to the inserted points: they are
        hashed by the same block projections, so any point within the
        construction radius of a later query still shares a whole block
        with it.
        """
        return insert_into_covering_tables(self, new_points)

    def freeze(self, refreeze_threshold: int | None = None):
        """Compact into the frozen CSR layout (covering fast path).

        Returns a
        :class:`~repro.index.frozen_probing.FrozenCoveringLSHIndex`
        sharing this index's points and block permutation —
        bit-identical answers, vectorised batch primitives, mmap-able
        persistence.  The source index is left untouched.
        """
        from repro.index.frozen_probing import FrozenCoveringLSHIndex

        self._require_built()
        return FrozenCoveringLSHIndex.from_covering_index(
            self, refreeze_threshold=refreeze_threshold
        )

    # The remaining primitives are identical to LSHIndex; reuse them.
    merged_sketch = LSHIndex.merged_sketch
    merged_sketches_batch = LSHIndex.merged_sketches_batch
    merged_estimates_batch = LSHIndex.merged_estimates_batch
    estimate_candidates = LSHIndex.estimate_candidates
    candidate_ids = LSHIndex.candidate_ids
    num_collisions = LSHIndex.num_collisions
    sketch_memory_bytes = LSHIndex.sketch_memory_bytes
    bucket_statistics = LSHIndex.bucket_statistics

    @property
    def family(self):
        """Minimal family facade (metric access for the searchers)."""
        return self._family_facade

    def __repr__(self) -> str:
        built = f"n={self.n}" if self.is_built else "unbuilt"
        return (
            f"CoveringLSHIndex(dim={self.dim}, radius={self.radius}, "
            f"tables={self.num_tables}, {built})"
        )
