"""The ``L``-table LSH index with per-bucket HyperLogLog sketches.

This is the data structure of Algorithm 1 plus the query-side
primitives Algorithm 2 consumes:

* ``#collisions`` — the exact total bucket occupancy of the query's
  ``L`` buckets (bucket sizes are stored, so this is ``O(L)``);
* ``candSize`` estimate — the merged sketch of those buckets,
  ``O(mL)`` plus the ids of lazy small buckets;
* the candidate set itself — the deduplicated union of the buckets,
  which is what classic LSH search pays ``alpha * #collisions`` for.

The index stores the data matrix so the search layers
(:mod:`repro.core`) can verify candidates without re-threading it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, EmptyIndexError
from repro.hashing.base import LSHFamily
from repro.index.bucket import Bucket
from repro.index.table import HashTable
from repro.sketches.hyperloglog import HyperLogLog, PrecomputedHllHashes
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["LSHIndex", "QueryLookup"]


@dataclass
class QueryLookup:
    """The query's view of the index: its bucket in each of the L tables.

    Produced once per query by :meth:`LSHIndex.lookup` so the hybrid
    search pipeline (collision count -> sketch merge -> possibly
    candidate retrieval) hashes the query exactly once.

    Attributes
    ----------
    keys:
        The query's bucket key per table.
    buckets:
        The matching bucket per table; ``None`` where the query fell
        into an empty (absent) bucket.
    hash_rows:
        The raw ``(L, k)`` composite hash values (multi-probe needs
        them to generate neighbouring keys).
    """

    keys: list[bytes]
    buckets: list[Bucket | None]
    hash_rows: list[np.ndarray]

    @property
    def num_collisions(self) -> int:
        """Step-S2 cost driver: total occupancy of the query's buckets.

        Cached after the first access — the hybrid pipeline reads it
        once for the cost decision and once for the result stats.
        """
        cached = getattr(self, "_num_collisions", None)
        if cached is None:
            cached = sum(b.size for b in self.nonempty_buckets())
            self._num_collisions = cached
        return cached

    def nonempty_buckets(self) -> list[Bucket]:
        """The buckets that actually exist, in table order.

        Computed once and cached: the hybrid pipeline walks the same
        non-empty set for the collision count, the sketch merge, *and*
        the candidate union, so each lookup filters its ``L`` bucket
        slots exactly once instead of once per step.
        """
        cached = getattr(self, "_nonempty", None)
        if cached is None:
            cached = [b for b in self.buckets if b is not None]
            self._nonempty = cached
        return cached


class LSHIndex:
    """Classic multi-table LSH index with per-bucket cardinality sketches.

    Parameters
    ----------
    family:
        The LSH family (fixes the metric and the atomic hash).
    k:
        Concatenation width of each composite function.
    num_tables:
        ``L``, the number of hash tables.
    hll_precision:
        Sketch precision ``p`` (``m = 2**p`` registers; paper default
        ``m = 128`` i.e. ``p = 7``).
    hll_seed:
        Salt shared by all bucket sketches (mergeability requirement).
    lazy_threshold:
        Small-bucket trick cutoff; ``None`` means ``m`` (paper's
        suggestion), ``0`` disables the trick.
    with_sketches:
        ``False`` yields a plain LSH index (baseline; sketch queries
        then raise).
    dedup:
        Step-S2 duplicate-removal implementation: ``"scalar"``
        (default) probes the n-bit seen-vector once per collision,
        matching the per-collision cost ``alpha * #collisions`` of
        Equation (1); ``"vectorized"`` scatters whole buckets at once
        (tiny alpha — used by the dedup ablation to show how the
        implementation shifts the beta/alpha ratio).

    Examples
    --------
    >>> from repro.hashing import SimHashLSH
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(200, 16))
    >>> index = LSHIndex(SimHashLSH(16, seed=1), k=4, num_tables=8, seed=2)
    >>> index = index.build(points)
    >>> lookup = index.lookup(points[0])
    >>> lookup.num_collisions >= 8  # the point collides with itself everywhere
    True
    """

    #: Storage layout tag; the CSR-compacted subclass overrides this.
    layout = "dict"
    #: Index-variant tag; the probing subclasses override this.
    variant = "plain"

    def __init__(
        self,
        family: LSHFamily,
        k: int,
        num_tables: int,
        hll_precision: int = 7,
        hll_seed: int = 0,
        lazy_threshold: int | None = None,
        with_sketches: bool = True,
        dedup: str = "scalar",
        seed: int | None = None,
    ) -> None:
        self.family = family
        self.k = check_positive_int(k, "k")
        self.num_tables = check_positive_int(num_tables, "num_tables")
        self.hll_precision = int(hll_precision)
        self.hll_seed = int(hll_seed)
        self.lazy_threshold = lazy_threshold
        self.with_sketches = bool(with_sketches)
        if dedup not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f'dedup must be "scalar" or "vectorized", got {dedup!r}'
            )
        self.dedup = dedup
        if seed is not None:
            # Re-seed the family so index construction is reproducible
            # regardless of what was drawn from the family before.
            from repro.utils.rng import ensure_rng

            family._rng = ensure_rng(seed)
        self.tables: list[HashTable] = []
        self.points: np.ndarray | None = None
        self._hll_hashes: PrecomputedHllHashes | None = None
        self._batched = None

    # ------------------------------------------------------------------
    # Build (Algorithm 1)
    # ------------------------------------------------------------------
    def build(self, points: np.ndarray) -> LSHIndex:
        """Hash every point into every table and attach bucket sketches.

        All ``L * k`` atomic hash functions are drawn as one fused
        :class:`~repro.hashing.batched.BatchedHash`, so the dataset is
        hashed in one vectorised pass and queries pay a single kernel
        call for Step S1.
        """
        points = check_matrix(points, dim=self.family.dim, name="points")
        n = points.shape[0]
        if n == 0:
            raise ConfigurationError("cannot build an index over zero points")
        self.points = points
        self._hll_hashes = (
            PrecomputedHllHashes(n, p=self.hll_precision, seed=self.hll_seed)
            if self.with_sketches
            else None
        )
        self._batched = self.family.sample_batch(self.k, self.num_tables)
        all_hashes = self._batched.hash_points(points)  # (n, L, k)
        self.tables = []
        for t in range(self.num_tables):
            table = HashTable(
                hll_precision=self.hll_precision,
                hll_seed=self.hll_seed,
                lazy_threshold=self.lazy_threshold,
                with_sketches=self.with_sketches,
            )
            table.insert_hashed(all_hashes[:, t, :], self._hll_hashes)
            self.tables.append(table)
        return self

    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Insert additional points into a built index (incremental Algorithm 1).

        The classic construction is inherently incremental: each new
        point is hashed into its bucket per table and the bucket's
        sketch absorbs its precomputed HLL pair (materialising the
        sketch if the bucket crosses the lazy threshold).

        Parameters
        ----------
        new_points:
            ``(m, d)`` matrix of points to add.

        Returns
        -------
        numpy.ndarray
            The ids assigned to the new points (``n .. n + m - 1``).
        """
        self._require_built()
        new_points = check_matrix(new_points, dim=self.dim, name="new_points")
        m = new_points.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        old_n = self.n
        new_ids = np.arange(old_n, old_n + m, dtype=np.int64)
        self.points = np.concatenate([self.points, new_points])
        if self._hll_hashes is not None:
            self._hll_hashes.extend(old_n + m)
        hashes = self._batched.hash_points(new_points)  # (m, L, k)
        from repro.hashing.composite import encode_rows

        for t, table in enumerate(self.tables):
            keys = encode_rows(np.ascontiguousarray(hashes[:, t, :]))
            for point_id, key in zip(new_ids, keys):
                bucket = table.buckets.get(key)
                if bucket is None:
                    bucket = Bucket(
                        hll_precision=self.hll_precision,
                        hll_seed=self.hll_seed,
                        lazy_threshold=table.lazy_threshold,
                    )
                    table.buckets[key] = bucket
                bucket.append(int(point_id), self._hll_hashes)
        return new_ids

    def freeze(self, refreeze_threshold: int | None = None):
        """Compact the index into the frozen CSR layout (serving fast path).

        Returns a :class:`~repro.index.frozen.FrozenLSHIndex` sharing
        this index's points and hash kernel: contiguous bucket arrays,
        one stacked HLL register matrix, vectorised batch primitives —
        bit-identical answers, no per-bucket Python objects.  The source
        index is left untouched.  ``refreeze_threshold`` bounds how many
        overflow inserts the frozen index absorbs before re-compacting.
        """
        from repro.index.frozen import FrozenLSHIndex

        self._require_built()
        if type(self) is not LSHIndex:
            # MultiProbeLSHIndex and CoveringLSHIndex override freeze()
            # with their own frozen layouts; anything else is a custom
            # subclass whose query surface we cannot assume.
            raise ConfigurationError(
                f"freeze() has no frozen layout for {type(self).__name__}; "
                f"built-in variants (LSHIndex, MultiProbeLSHIndex, "
                f"CoveringLSHIndex) each provide their own freeze()"
            )
        return FrozenLSHIndex.from_dict_index(
            self, refreeze_threshold=refreeze_threshold
        )

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has been called."""
        return self.points is not None

    @property
    def n(self) -> int:
        """Number of indexed points."""
        self._require_built()
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self.family.dim

    def _require_built(self) -> None:
        if self.points is None:
            raise EmptyIndexError("index has not been built; call build(points) first")

    # ------------------------------------------------------------------
    # Query-side primitives (Algorithm 2 inputs)
    # ------------------------------------------------------------------
    def lookup(self, query: np.ndarray) -> QueryLookup:
        """Locate the query's bucket in every table (Step S1).

        One fused kernel call hashes the query into all ``L`` tables,
        then each table is probed with one dict lookup.
        """
        from repro.hashing.composite import encode_rows

        self._require_built()
        rows = self._batched.query_rows(query)  # validates dim; (L, k)
        keys = encode_rows(rows)
        buckets = [table.get(key) for table, key in zip(self.tables, keys)]
        return QueryLookup(keys=keys, buckets=buckets, hash_rows=list(rows))

    def lookup_batch(self, queries: np.ndarray) -> list[QueryLookup]:
        """Locate many queries' buckets with one fused hashing pass.

        Equivalent to ``[self.lookup(q) for q in queries]`` but the
        Step-S1 hashing of the whole query set is a single vectorised
        kernel call.
        """
        from repro.hashing.composite import encode_rows

        self._require_built()
        queries = check_matrix(queries, dim=self.dim, name="queries")
        all_rows = self._batched.hash_points(queries)  # (q, L, k)
        num_queries = all_rows.shape[0]
        # One encode call for all q * L rows (row qi*L + t is query qi,
        # table t) instead of one per query.
        flat_keys = encode_rows(all_rows.reshape(num_queries * self.num_tables, self.k))
        lookups = []
        for qi, rows in enumerate(all_rows):
            keys = flat_keys[qi * self.num_tables : (qi + 1) * self.num_tables]
            buckets = [table.get(key) for table, key in zip(self.tables, keys)]
            lookups.append(QueryLookup(keys=keys, buckets=buckets, hash_rows=list(rows)))
        return lookups

    def num_collisions(self, query: np.ndarray) -> int:
        """Exact ``#collisions`` of Equation (1) for this query."""
        return self.lookup(query).num_collisions

    def merged_sketch(self, lookup: QueryLookup) -> HyperLogLog:
        """Merge the L bucket sketches into one (Algorithm 2, line 2).

        Sketched buckets merge register-wise; lazy small buckets feed
        their raw ids into the output sketch (the paper's on-demand
        update trick).
        """
        self._require_built()
        if not self.with_sketches or self._hll_hashes is None:
            raise ConfigurationError("index was built with with_sketches=False")
        merged = HyperLogLog(p=self.hll_precision, seed=self.hll_seed)
        for bucket in lookup.nonempty_buckets():
            bucket.contribute_to(merged, self._hll_hashes)
        return merged

    def merged_sketches_batch(self, lookups: list[QueryLookup]) -> list[HyperLogLog]:
        """One merged sketch per lookup, register maxima vectorised.

        Returns exactly ``[self.merged_sketch(lk) for lk in lookups]``:
        HLL merging and lazy-bucket contribution are elementwise integer
        maxima, which are associative and commutative, so computing all
        sketched-bucket maxima with one ``np.maximum.reduceat`` over the
        stacked register matrix and all lazy-bucket contributions with
        one scatter-max yields bit-identical registers — the per-query
        Python merge loop of the single-query path is what disappears.
        """
        self._require_built()
        if not self.with_sketches or self._hll_hashes is None:
            raise ConfigurationError("index was built with with_sketches=False")
        m = 1 << self.hll_precision
        registers = np.zeros((len(lookups), m), dtype=np.uint8)
        sketched_regs: list[np.ndarray] = []
        segment_starts: list[int] = []
        segment_rows: list[int] = []
        lazy_rows: list[int] = []
        lazy_ids: list[np.ndarray] = []
        for i, lookup in enumerate(lookups):
            new_segment = True
            for bucket in lookup.nonempty_buckets():
                if bucket.sketch is not None:
                    if new_segment:
                        segment_starts.append(len(sketched_regs))
                        segment_rows.append(i)
                        new_segment = False
                    sketched_regs.append(bucket.sketch.registers)
                elif len(bucket):
                    lazy_rows.append(i)
                    lazy_ids.append(bucket.ids)
        if sketched_regs:
            stacked = np.stack(sketched_regs)
            segment_max = np.maximum.reduceat(stacked, np.asarray(segment_starts), axis=0)
            # Each query owns at most one segment and its row is still
            # all-zero here, so plain assignment is the max.
            registers[np.asarray(segment_rows)] = segment_max
        if lazy_ids:
            rows = np.repeat(
                np.asarray(lazy_rows), [ids.size for ids in lazy_ids]
            )
            ids = np.concatenate(lazy_ids)
            np.maximum.at(
                registers,
                (rows, self._hll_hashes.registers[ids]),
                self._hll_hashes.ranks[ids],
            )
        sketches = []
        for i in range(len(lookups)):
            sketch = HyperLogLog(p=self.hll_precision, seed=self.hll_seed)
            sketch.registers = registers[i]
            sketches.append(sketch)
        return sketches

    def merged_estimates_batch(self, lookups: list[QueryLookup]) -> np.ndarray:
        """``candSize`` estimate per lookup (batch counterpart of
        :meth:`estimate_candidates`).

        The dict layout estimates from the batch-merged sketches; the
        frozen layout overrides this with a fully vectorised pass over
        its stacked register matrix.  Both return the identical floats.
        """
        return np.asarray(
            [sketch.estimate() for sketch in self.merged_sketches_batch(lookups)],
            dtype=np.float64,
        )

    def estimate_candidates(self, lookup: QueryLookup) -> float:
        """Estimated ``candSize`` — distinct points among the L buckets."""
        return self.merged_sketch(lookup).estimate()

    def candidate_ids(self, lookup: QueryLookup, dedup: str | None = None) -> np.ndarray:
        """The deduplicated candidate set (exact; this is what LSH search pays for).

        Step S2 as the paper models it: an n-bit bitvector probed once
        per collision, so the cost is ``alpha * #collisions`` with a
        *per-element* constant.  This is deliberately not vectorised —
        the cost structure of Equation (1) is the system under study,
        and collapsing alpha by orders of magnitude (see the
        ``dedup="vectorized"`` option and the dedup ablation benchmark)
        shrinks the very bottleneck the paper's Figure 1 is about.

        ``dedup`` overrides the index-level setting for this one call;
        both implementations return the identical sorted id array, so
        serving layers (:mod:`repro.service`) may pass
        ``dedup="vectorized"`` for speed without changing any answer.
        """
        self._require_built()
        if dedup is None:
            dedup = self.dedup
        elif dedup not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f'dedup must be "scalar" or "vectorized", got {dedup!r}'
            )
        if dedup == "vectorized":
            seen_arr = np.zeros(self.n, dtype=bool)
            buckets = lookup.nonempty_buckets()
            if buckets:
                if len(buckets) == 1:
                    seen_arr[buckets[0].ids] = True
                else:
                    seen_arr[np.concatenate([b.ids for b in buckets])] = True
            return np.flatnonzero(seen_arr)
        seen = np.zeros(self.n, dtype=bool)
        out: list[int] = []
        for bucket in lookup.nonempty_buckets():
            for point_id in bucket.ids.tolist():
                if not seen[point_id]:
                    seen[point_id] = True
                    out.append(point_id)
        return np.sort(np.asarray(out, dtype=np.int64))

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def sketch_memory_bytes(self) -> int:
        """Total memory held by materialised bucket sketches."""
        return sum(t.sketch_memory_bytes for t in self.tables)

    def memory_report(self) -> dict[str, int]:
        """Byte-level accounting of the index, for the §3.2 space claims.

        The paper argues the HLL overhead "is usually smaller than
        large buckets": with the default lazy threshold ``m``, a
        materialised sketch costs ``m`` bytes but sits on a bucket
        whose ids alone occupy ``> 8 m`` bytes.  This report exposes
        the terms so the space-overhead benchmark can check the claim.

        Keys: ``points`` (data matrix), ``bucket_ids`` (stored point
        ids across all tables), ``bucket_keys`` (hash-key bytes),
        ``sketches`` (register arrays), ``total``.
        """
        self._require_built()
        ids_bytes = 0
        keys_bytes = 0
        for table in self.tables:
            for key, bucket in table.buckets.items():
                ids_bytes += 8 * bucket.size
                keys_bytes += len(key)
        report = {
            "points": int(self.points.nbytes),
            "bucket_ids": ids_bytes,
            "bucket_keys": keys_bytes,
            "sketches": self.sketch_memory_bytes,
            "total": int(self.points.nbytes) + ids_bytes + keys_bytes + self.sketch_memory_bytes,
        }
        return report

    def bucket_statistics(self) -> dict[str, float]:
        """Occupancy summary across all tables (for diagnostics and docs)."""
        self._require_built()
        sizes = np.concatenate([t.bucket_sizes() for t in self.tables])
        return {
            "tables": float(self.num_tables),
            "buckets": float(sizes.size),
            "mean_size": float(sizes.mean()),
            "max_size": float(sizes.max()),
            "sketched_fraction": float(
                np.mean(
                    [b.has_sketch for t in self.tables for b in t.buckets.values()]
                )
            ),
        }

    def __repr__(self) -> str:
        built = f"n={self.n}" if self.is_built else "unbuilt"
        return (
            f"{type(self).__name__}(family={type(self.family).__name__}, "
            f"k={self.k}, L={self.num_tables}, {built})"
        )
