"""A hash-table bucket: point ids plus an optional HyperLogLog sketch.

Algorithm 1 of the paper attaches an HLL to every bucket.  Its
complexity analysis then observes that for buckets smaller than the
register count ``m`` the sketch costs more memory than the ids
themselves, and that such buckets can instead contribute their raw ids
to the *merged* sketch at query time ("we can update the merged HLL on
demand at the query time.  This trick can save the space overhead").
:class:`Bucket` implements both modes: a bucket materialises its sketch
only once it outgrows ``lazy_threshold``.
"""

from __future__ import annotations

import numpy as np

from repro.sketches.hyperloglog import HyperLogLog, PrecomputedHllHashes

__all__ = ["Bucket"]


class Bucket:
    """Point ids hashed to one bucket, with an optional attached sketch.

    Parameters
    ----------
    hll_precision:
        Precision ``p`` of the attached sketch (``m = 2**p`` registers).
    hll_seed:
        Sketch hash salt; all buckets of an index share it so their
        sketches merge losslessly.
    lazy_threshold:
        Buckets with at most this many points keep ids only (the
        paper's small-bucket trick).  ``0`` disables laziness (always
        sketch); ``None`` defaults to ``m``.
    """

    __slots__ = ("_ids", "_frozen_ids", "sketch", "hll_precision", "hll_seed", "lazy_threshold")

    def __init__(
        self,
        hll_precision: int = 7,
        hll_seed: int = 0,
        lazy_threshold: int | None = None,
    ) -> None:
        self._ids: list[int] = []
        self._frozen_ids: np.ndarray | None = None
        self.hll_precision = int(hll_precision)
        self.hll_seed = int(hll_seed)
        self.lazy_threshold = (1 << self.hll_precision) if lazy_threshold is None else int(lazy_threshold)
        self.sketch: HyperLogLog | None = None

    # ------------------------------------------------------------------
    # Build path (Algorithm 1)
    # ------------------------------------------------------------------
    def append(self, point_id: int, hashes: PrecomputedHllHashes | None = None) -> None:
        """Insert a point id; grow/update the sketch past the threshold.

        Parameters
        ----------
        point_id:
            Index of the point in the dataset.
        hashes:
            Precomputed HLL hash pairs for the whole point universe;
            required to maintain the sketch (pass ``None`` only when
            sketches are disabled at the index level).
        """
        self._frozen_ids = None
        self._ids.append(point_id)
        if hashes is None:
            return
        if self.sketch is not None:
            self.sketch.add_precomputed(*hashes.pair(point_id))
        elif len(self._ids) > self.lazy_threshold:
            self._materialise_sketch(hashes)

    def _materialise_sketch(self, hashes: PrecomputedHllHashes) -> None:
        """Build the sketch from all ids accumulated so far."""
        sketch = HyperLogLog(p=self.hll_precision, seed=self.hll_seed)
        ids = np.asarray(self._ids, dtype=np.int64)
        sketch.add_precomputed_batch(hashes.registers[ids], hashes.ranks[ids])
        self.sketch = sketch

    @classmethod
    def from_ids(
        cls,
        ids: np.ndarray,
        hashes: PrecomputedHllHashes | None,
        hll_precision: int = 7,
        hll_seed: int = 0,
        lazy_threshold: int | None = None,
    ) -> Bucket:
        """Bulk-construct a bucket from a full id array (build fast path).

        Equivalent to appending each id in order, but the sketch (when
        the bucket exceeds the lazy threshold) is built with one
        vectorised register update instead of per-point calls.
        """
        bucket = cls(
            hll_precision=hll_precision, hll_seed=hll_seed, lazy_threshold=lazy_threshold
        )
        ids = np.asarray(ids, dtype=np.int64)
        bucket._ids = ids.tolist()
        bucket._frozen_ids = ids
        if hashes is not None and ids.size > bucket.lazy_threshold:
            bucket._materialise_sketch(hashes)
        return bucket

    # ------------------------------------------------------------------
    # Query path (Algorithm 2)
    # ------------------------------------------------------------------
    @property
    def ids(self) -> np.ndarray:
        """Point ids in this bucket as an int64 array (cached)."""
        if self._frozen_ids is None:
            self._frozen_ids = np.asarray(self._ids, dtype=np.int64)
        return self._frozen_ids

    @property
    def size(self) -> int:
        """Number of points in the bucket (duplicates impossible by construction)."""
        return len(self._ids)

    @property
    def has_sketch(self) -> bool:
        """Whether the sketch is materialised (False for lazy small buckets)."""
        return self.sketch is not None

    def contribute_to(self, merged: HyperLogLog, hashes: PrecomputedHllHashes) -> None:
        """Fold this bucket into a merged query-time sketch.

        Sketched buckets merge in ``O(m)``; lazy buckets insert their
        raw ids (``O(size)``, by definition ``<= lazy_threshold``).
        """
        if self.sketch is not None:
            merged.merge_in_place(self.sketch)
        elif self._ids:
            ids = self.ids
            merged.add_precomputed_batch(hashes.registers[ids], hashes.ranks[ids])

    @property
    def sketch_memory_bytes(self) -> int:
        """Memory held by the materialised sketch (0 when lazy)."""
        return self.sketch.memory_bytes if self.sketch is not None else 0

    def __len__(self) -> int:
        return len(self._ids)

    def __repr__(self) -> str:
        mode = "sketched" if self.has_sketch else "lazy"
        return f"Bucket(size={self.size}, {mode})"
