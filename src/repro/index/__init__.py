"""Hash-table index substrate.

Implements Algorithm 1 of the paper ("Construct LSH hash tables"):
``L`` hash tables, each bucket holding point ids *and* a HyperLogLog
sketch of those ids, plus the small-bucket optimisation from the
complexity analysis (buckets with fewer than ``m`` points skip the
sketch; their raw ids are folded into the merged sketch on demand at
query time).

* :class:`Bucket` — ids + optional sketch;
* :class:`HashTable` — one composite hash function and its buckets;
* :class:`LSHIndex` — the ``L``-table index with the query-side
  primitives Algorithm 2 needs (``#collisions``, merged sketch,
  candidate set);
* :class:`FrozenLSHIndex` — the same index compacted into contiguous
  CSR arrays (``LSHIndex.freeze()``): vectorised batch primitives,
  zero per-bucket Python objects, mmap-able persistence;
* :class:`MultiProbeLSHIndex` — the multi-probe extension the paper
  names as future work (and :class:`FrozenMultiProbeLSHIndex`, its
  frozen CSR counterpart);
* :class:`CoveringLSHIndex` — the no-false-negative covering scheme
  (and :class:`FrozenCoveringLSHIndex`, its frozen CSR counterpart).
"""

from repro.index.bucket import Bucket
from repro.index.covering import CoveringLSHIndex
from repro.index.frozen import FrozenLSHIndex, FrozenQueryLookup, FrozenTables
from repro.index.frozen_probing import (
    FrozenCoveringLSHIndex,
    FrozenMultiProbeLSHIndex,
)
from repro.index.lsh_index import LSHIndex, QueryLookup
from repro.index.multiprobe_index import MultiProbeLSHIndex
from repro.index.table import HashTable

__all__ = [
    "Bucket",
    "HashTable",
    "LSHIndex",
    "QueryLookup",
    "FrozenLSHIndex",
    "FrozenQueryLookup",
    "FrozenTables",
    "MultiProbeLSHIndex",
    "FrozenMultiProbeLSHIndex",
    "CoveringLSHIndex",
    "FrozenCoveringLSHIndex",
]
