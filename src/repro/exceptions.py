"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to distinguish configuration
mistakes from runtime state problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DimensionMismatchError",
    "EmptyIndexError",
    "UnknownMetricError",
    "SketchError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied.

    Raised eagerly at construction time (for instance a non-positive
    number of hash tables, a ``delta`` outside ``(0, 1)``, or an HLL
    precision outside the supported range) so that misconfiguration
    never surfaces as a confusing downstream failure.
    """


class DimensionMismatchError(ReproError, ValueError):
    """Query or data dimensionality disagrees with the indexed data."""


class EmptyIndexError(ReproError, RuntimeError):
    """A query was issued against an index with no points inserted."""


class UnknownMetricError(ReproError, KeyError):
    """A metric name was requested that is not in the distance registry."""


class SketchError(ReproError, ValueError):
    """A sketch operation received incompatible operands.

    The canonical example is merging two HyperLogLog sketches that were
    created with different register counts: their registers are not
    comparable, so the merge is refused rather than silently corrupted.
    """
