"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to distinguish configuration
mistakes from runtime state problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CorruptArtifactError",
    "DeadlineExceededError",
    "DimensionMismatchError",
    "EmptyIndexError",
    "ShardUnavailableError",
    "UnknownMetricError",
    "SketchError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied.

    Raised eagerly at construction time (for instance a non-positive
    number of hash tables, a ``delta`` outside ``(0, 1)``, or an HLL
    precision outside the supported range) so that misconfiguration
    never surfaces as a confusing downstream failure.
    """


class DimensionMismatchError(ReproError, ValueError):
    """Query or data dimensionality disagrees with the indexed data."""


class EmptyIndexError(ReproError, RuntimeError):
    """A query was issued against an index with no points inserted."""


class UnknownMetricError(ReproError, KeyError):
    """A metric name was requested that is not in the distance registry."""


class CorruptArtifactError(ReproError, RuntimeError):
    """A saved index artifact is truncated, missing files, or unreadable.

    Raised by the persistence loaders (:func:`repro.api.persist.open_index`,
    :func:`repro.index.frozen.load_frozen_index`) instead of leaking raw
    numpy/json tracebacks, so operators can tell a damaged artifact from
    a code bug and restore from a good copy.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A blocking worker-pool operation missed its per-op deadline.

    The pool treats a breach as a hang: the worker is killed and
    respawned, and the operation retried within the retry budget.  The
    error only escapes to callers once the budget is exhausted (wrapped
    in :class:`ShardUnavailableError` on the query paths).
    """


class ShardUnavailableError(ReproError, RuntimeError):
    """One or more shards stayed unavailable past the retry budget.

    Carries the shard ids that could not be served.  Query paths raise
    it when ``allow_partial`` is off; with ``allow_partial`` on, the
    caller instead receives partial results tagged ``degraded`` with the
    same shard list.
    """

    def __init__(self, message: str, shards: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.shards = tuple(int(s) for s in shards)


class SketchError(ReproError, ValueError):
    """A sketch operation received incompatible operands.

    The canonical example is merging two HyperLogLog sketches that were
    created with different register counts: their registers are not
    comparable, so the merge is refused rather than silently corrupted.
    """
