"""``reprolint``: repo-specific static analysis for the serving stack.

Every layer of this package rests on invariants that the Hypothesis
property suites enforce only *at runtime* — frozen layouts bit-identical
to dict layouts, traced execution bit-identical to untraced, processes
bit-identical to threads.  This package rejects the hazard classes that
break those properties at lint time, before a test ever runs:

``unseeded-rng``
    No nondeterministic randomness in library code (legacy
    ``np.random`` globals, the stdlib ``random`` module, or
    ``default_rng()`` without a seed).
``set-iteration``
    No iteration over set expressions or ``.keys()`` views feeding
    result construction — set order is hash-randomised across
    processes, which silently breaks processes==threads bit-identity.
``lock-discipline``
    An attribute mutated under ``with self._lock:`` anywhere in a class
    is shared state; mutating it outside a lock elsewhere in that class
    is flagged (a lightweight lexical race detector).
``dtype-contract``
    The frozen CSR arrays have declared dtypes (offsets int64, members
    intp, HLL registers uint8, ...); every ``np.empty``/``np.zeros``/
    ``astype``/``np.asarray`` site in ``index/`` is checked against the
    one contract table.
``trace-stage``
    ``stage_timer(...)`` stage names must be string literals from the
    closed :data:`repro.observability.tracing.STAGES` vocabulary.
``spec-plumb``
    Every :class:`repro.api.spec.IndexSpec` field must be consumed by
    the facade / persistence / serialisation layers — an added field
    that none of them reads is dead configuration.

Run it over the library source::

    python -m repro.analysis check src/

Findings are suppressed per line with ``# reprolint: disable=<rule-id>``
(comma-separate several ids); suppressions are for documented
exceptions, not for silencing real findings.
"""

from repro.analysis.core import (
    Finding,
    ProjectRule,
    Rule,
    SourceFile,
    all_rules,
    register,
    run_check,
)

__all__ = [
    "Finding",
    "Rule",
    "ProjectRule",
    "SourceFile",
    "all_rules",
    "register",
    "run_check",
]
