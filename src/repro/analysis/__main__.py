"""Command-line front-end: ``python -m repro.analysis check src/``."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.core import all_rules, run_check


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: repo-specific static analysis "
        "(determinism, lock discipline, dtype contracts, ...)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run all rules over paths")
    check.add_argument("paths", nargs="+", help="files or directories to analyse")
    check.add_argument(
        "--enable",
        action="append",
        default=None,
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    check.add_argument(
        "--disable",
        action="append",
        default=None,
        metavar="RULE",
        help="skip these rule ids (repeatable)",
    )

    sub.add_parser("list-rules", help="print the registered rule ids")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list-rules":
        for rule in all_rules().values():
            print(f"{rule.id:16} {rule.description}")
        return 0

    findings = run_check(args.paths, enabled=args.enable, disabled=args.disable)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"reprolint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
