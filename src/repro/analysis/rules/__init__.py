"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    deadlines,
    determinism,
    dtypes,
    locks,
    spec_fields,
    stages,
)
