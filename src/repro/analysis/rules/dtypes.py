"""Dtype-contract rule: the frozen CSR arrays' declared dtypes.

The whole frozen layout (PR 3..5) hangs off a handful of array-dtype
invariants — CSR offsets and bucket sizes are int64, member ids are the
platform index dtype ``intp`` (every consumer is a fancy index; any
other integer dtype is converted per call), HLL registers and raw key
bytes are uint8.  They are declared once in :data:`DTYPE_CONTRACTS` and
checked at every allocation / cast site under ``index/``: an
``np.empty``/``np.zeros``/``np.full``/``astype``/``np.asarray`` whose
result lands in a contracted name (or re-materialises a contracted
array) must use the contracted dtype.  Platform-equal drifts —
``int64`` for ``intp`` on 64-bit linux — are exactly what the runtime
bit-identity properties can never catch, and what this rule exists for.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import Finding, Rule, SourceFile, register
from repro.analysis.rules._ast_util import (
    attr_chain,
    dtype_name,
    numpy_aliases,
    terminal_names,
)

__all__ = ["DTYPE_CONTRACTS", "DtypeContractRule"]

#: The single declaration table: array-name suffix -> required dtype.
#: A name matches when it equals the key or ends with ``_<key>``
#: (``members``, ``o_members``, ``merged_members`` all bind to the
#: ``members`` contract).
DTYPE_CONTRACTS: dict[str, str] = {
    "offsets": "int64",
    "table_slices": "int64",
    "sizes": "int64",
    "sketch_rows": "int64",
    "members": "intp",
    "registers": "uint8",
    "keys_raw": "uint8",
}

#: allocation constructors whose dtype keyword is checked.
_ALLOCATORS = {"empty", "zeros", "ones", "full", "asarray", "ascontiguousarray"}


def _contract_for(name: str) -> tuple[str, str] | None:
    for key, dtype in DTYPE_CONTRACTS.items():
        if name == key or name.endswith("_" + key):
            return key, dtype
    return None


def _call_dtype(node: ast.Call, np_names: set[str]) -> ast.AST | None:
    """The dtype expression of an allocator / ``astype`` call, if any."""
    for keyword in node.keywords:
        if keyword.arg == "dtype":
            return keyword.value
    chain = attr_chain(node.func)
    if chain and chain[-1] == "astype" and node.args:
        return node.args[0]
    return None


def _is_allocator(node: ast.Call, np_names: set[str]) -> bool:
    chain = attr_chain(node.func)
    return (
        chain is not None
        and len(chain) == 2
        and chain[0] in np_names
        and chain[1] in _ALLOCATORS
    )


def _is_astype(node: ast.Call) -> bool:
    return isinstance(node.func, ast.Attribute) and node.func.attr == "astype"


@register
class DtypeContractRule(Rule):
    """Frozen CSR arrays keep their declared dtypes at every site."""

    id = "dtype-contract"
    description = (
        "CSR arrays have one declared dtype each (offsets/sizes int64, "
        "members intp, registers/keys uint8); allocations and casts "
        "must match the table in repro.analysis.rules.dtypes"
    )
    path_suffixes = ("index/",)

    def applies_to(self, sf: SourceFile) -> bool:
        return "/index/" in sf.posix_path or sf.posix_path.startswith("index/")

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        np_names = numpy_aliases(sf.tree)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Assign):
                yield from self._check_assign(sf, node, np_names)
            elif isinstance(node, ast.Call):
                yield from self._check_rematerialise(sf, node, np_names)

    def _check_assign(
        self, sf: SourceFile, node: ast.Assign, np_names: set[str]
    ) -> Iterator[Finding]:
        """``<contracted name> = np.zeros(..., dtype=...)`` sites."""
        value = node.value
        if not isinstance(value, ast.Call):
            return
        if not (_is_allocator(value, np_names) or _is_astype(value)):
            return
        dtype_expr = _call_dtype(value, np_names)
        if dtype_expr is None:
            return
        actual = dtype_name(dtype_expr, np_names)
        if actual is None:  # dynamic dtype (e.g. members.dtype) — trust it
            return
        for target in node.targets:
            name = self._target_name(target)
            if name is None:
                continue
            contract = _contract_for(name)
            if contract is not None and actual != contract[1]:
                key, expected = contract
                yield self.finding(
                    sf,
                    value,
                    f"{name} is a {key!r} array (contract dtype "
                    f"{expected}) but is allocated/cast as {actual}",
                )

    def _check_rematerialise(
        self, sf: SourceFile, node: ast.Call, np_names: set[str]
    ) -> Iterator[Finding]:
        """``np.asarray(<reads a contracted array>, dtype=...)`` sites.

        Re-materialising a stored CSR array under another dtype is the
        silent-drift path the assignment check cannot see (the result
        is often passed straight into a constructor).  ``astype`` is
        deliberately *not* source-checked: an explicit value conversion
        (``registers.astype(float64)`` for estimation math) is fine.
        """
        chain = attr_chain(node.func)
        if not (
            chain is not None
            and len(chain) == 2
            and chain[0] in np_names
            and chain[1] in ("asarray", "ascontiguousarray")
            and node.args
        ):
            return
        dtype_expr = _call_dtype(node, np_names)
        if dtype_expr is None:
            return
        actual = dtype_name(dtype_expr, np_names)
        if actual is None:
            return
        for name in terminal_names(node.args[0]):
            contract = _contract_for(name)
            if contract is not None and actual != contract[1]:
                key, expected = contract
                yield self.finding(
                    sf,
                    node,
                    f"re-materialising {key!r} data (contract dtype "
                    f"{expected}) as {actual}; keep the stored dtype",
                )
                return

    @staticmethod
    def _target_name(target: ast.AST) -> str | None:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None
