"""Spec-field plumb-through rule: no dead ``IndexSpec`` configuration.

Every field declared on :class:`repro.api.spec.IndexSpec` must be
consumed somewhere in the layers that act on a spec — the facade build
path, the persistence layer, or the dict-layout serialiser.  A field
none of them reads is configuration that silently does nothing: the
spec validates it, round-trips it through JSON, and then it falls on
the floor (the exact failure mode this rule exists to catch when a new
knob is added to the spec but not wired through).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence

from repro.analysis.core import Finding, ProjectRule, SourceFile, register

#: where the spec is declared / where its fields must be consumed.
SPEC_FILE = "api/spec.py"
CONSUMER_FILES = ("api/facade.py", "api/persist.py", "index/serialize.py")
SPEC_CLASS = "IndexSpec"


def _spec_fields(sf: SourceFile) -> list[tuple[str, ast.AnnAssign]]:
    """The declared dataclass fields of ``IndexSpec``, in order."""
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ClassDef) and node.name == SPEC_CLASS:
            return [
                (stmt.target.id, stmt)
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
            ]
    return []


def _consumed_names(files: Sequence[SourceFile]) -> set[str]:
    """Attribute names and string keys the consumer files read."""
    names: set[str] = set()
    for sf in files:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.add(node.value)
            elif isinstance(node, ast.keyword) and node.arg is not None:
                names.add(node.arg)
    return names


@register
class SpecPlumbThroughRule(ProjectRule):
    """Every ``IndexSpec`` field is consumed by facade/persist/serialize."""

    id = "spec-plumb"
    description = (
        "every IndexSpec field must be read by the facade, persistence, "
        "or serialisation layer; a field none of them consumes is dead "
        "configuration"
    )
    path_suffixes = (SPEC_FILE,) + CONSUMER_FILES

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        spec_files = [sf for sf in files if sf.matches((SPEC_FILE,))]
        consumers = [sf for sf in files if sf.matches(CONSUMER_FILES)]
        if not spec_files or not consumers:
            # Partial invocations (e.g. a single-file check) cannot
            # evaluate plumb-through; stay silent rather than guess.
            return
        consumed = _consumed_names(consumers)
        for sf in spec_files:
            for name, node in _spec_fields(sf):
                if name not in consumed:
                    yield self.finding(
                        sf,
                        node,
                        f"IndexSpec.{name} is validated and persisted but "
                        f"never consumed by {', '.join(CONSUMER_FILES)}; "
                        f"wire it through or remove it",
                    )
