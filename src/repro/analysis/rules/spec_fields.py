"""Spec-field plumb-through rule: no dead spec configuration.

Every field declared on :class:`repro.api.spec.IndexSpec` and
:class:`repro.api.spec.QuerySpec` must be consumed somewhere in the
layers that act on a spec — for ``IndexSpec`` the facade build path,
the persistence layer, or the dict-layout serialiser; for ``QuerySpec``
the facade query path or the JSON-lines stream front-end.  A field no
consumer reads is configuration that silently does nothing: the spec
validates it, round-trips it through JSON, and then it falls on the
floor (the exact failure mode this rule exists to catch when a new
knob is added to a spec but not wired through).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence

from repro.analysis.core import Finding, ProjectRule, SourceFile, register

#: where the specs are declared.
SPEC_FILE = "api/spec.py"

#: spec class -> the files at least one of which must read each field.
SPEC_CONSUMERS: dict[str, tuple[str, ...]] = {
    "IndexSpec": ("api/facade.py", "api/persist.py", "index/serialize.py"),
    "QuerySpec": ("api/facade.py", "service/stream.py"),
}


def _spec_fields(
    sf: SourceFile, spec_class: str
) -> list[tuple[str, ast.AnnAssign]]:
    """The declared dataclass fields of ``spec_class``, in order."""
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ClassDef) and node.name == spec_class:
            return [
                (stmt.target.id, stmt)
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
            ]
    return []


def _consumed_names(files: Sequence[SourceFile]) -> set[str]:
    """Attribute names and string keys the consumer files read."""
    names: set[str] = set()
    for sf in files:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.add(node.value)
            elif isinstance(node, ast.keyword) and node.arg is not None:
                names.add(node.arg)
    return names


@register
class SpecPlumbThroughRule(ProjectRule):
    """Every ``IndexSpec``/``QuerySpec`` field reaches a consumer layer."""

    id = "spec-plumb"
    description = (
        "every IndexSpec field must be read by the facade, persistence, "
        "or serialisation layer and every QuerySpec field by the facade "
        "or the stream front-end; a field no consumer reads is dead "
        "configuration"
    )
    path_suffixes = (SPEC_FILE,) + tuple(
        sorted({f for consumers in SPEC_CONSUMERS.values() for f in consumers})
    )

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        spec_files = [sf for sf in files if sf.matches((SPEC_FILE,))]
        if not spec_files:
            return
        for spec_class, consumer_paths in SPEC_CONSUMERS.items():
            consumers = [sf for sf in files if sf.matches(consumer_paths)]
            if not consumers:
                # Partial invocations (e.g. a single-file check) cannot
                # evaluate plumb-through; stay silent rather than guess.
                continue
            consumed = _consumed_names(consumers)
            for sf in spec_files:
                for name, node in _spec_fields(sf, spec_class):
                    if name not in consumed:
                        yield self.finding(
                            sf,
                            node,
                            f"{spec_class}.{name} is validated and "
                            f"persisted but never consumed by "
                            f"{', '.join(consumer_paths)}; wire it "
                            f"through or remove it",
                        )
