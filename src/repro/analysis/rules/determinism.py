"""Determinism rules: no unseeded randomness, no set-order iteration.

The repo's reproducibility contract (``utils/rng.py``) is that every
stochastic component threads a seedable ``numpy.random.Generator``;
bit-identity properties (frozen==dict, processes==threads) additionally
require that no result construction depends on set iteration order,
which is hash-randomised across python processes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import Finding, Rule, SourceFile, register
from repro.analysis.rules._ast_util import attr_chain, numpy_aliases

#: ``np.random`` members that are deterministic plumbing, not draws.
_ALLOWED_NP_RANDOM = {"Generator", "SeedSequence", "BitGenerator", "default_rng"}


def _random_module_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names bound to the stdlib ``random`` module / imported from it."""
    modules: set[str] = set()
    members: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    modules.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                members.add(alias.asname or alias.name)
    return modules, members


def _is_unseeded_call(node: ast.Call) -> bool:
    """``default_rng()`` / ``default_rng(None)`` — OS-entropy streams."""
    seed_args = list(node.args) + [kw.value for kw in node.keywords if kw.arg == "seed"]
    if not seed_args:
        return True
    first = seed_args[0]
    return isinstance(first, ast.Constant) and first.value is None


@register
class UnseededRngRule(Rule):
    """Library code must thread seedable generators, never global RNG."""

    id = "unseeded-rng"
    description = (
        "no unseeded or global randomness in library code: legacy "
        "np.random.* calls, the stdlib random module, and "
        "default_rng()/default_rng(None) are all nondeterministic "
        "across runs; thread a seeded Generator (utils/rng.py)"
    )

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        np_names = numpy_aliases(sf.tree)
        rand_modules, rand_members = _random_module_aliases(sf.tree)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Attribute):
                chain = attr_chain(node)
                if chain is None:
                    continue
                if (
                    len(chain) >= 3
                    and chain[0] in np_names
                    and chain[1] == "random"
                    and chain[2] not in _ALLOWED_NP_RANDOM
                ):
                    yield self.finding(
                        sf,
                        node,
                        f"legacy global-state numpy RNG "
                        f"({'.'.join(chain[:3])}); use a seeded "
                        f"np.random.Generator via repro.utils.rng",
                    )
                elif len(chain) == 2 and chain[0] in rand_modules:
                    yield self.finding(
                        sf,
                        node,
                        f"stdlib random module ({'.'.join(chain)}) is "
                        f"process-global and unseeded here; use a seeded "
                        f"np.random.Generator via repro.utils.rng",
                    )
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain is None:
                    continue
                is_default_rng = (
                    len(chain) >= 3
                    and chain[0] in np_names
                    and chain[1] == "random"
                    and chain[2] == "default_rng"
                ) or (len(chain) == 1 and chain[0] == "default_rng")
                if is_default_rng and _is_unseeded_call(node):
                    yield self.finding(
                        sf,
                        node,
                        "default_rng() without a seed draws OS entropy; "
                        "accept and pass through a seed argument",
                    )
                elif len(chain) == 1 and chain[0] in rand_members:
                    yield self.finding(
                        sf,
                        node,
                        f"stdlib random function {chain[0]}() is "
                        f"process-global and unseeded; use a seeded "
                        f"np.random.Generator via repro.utils.rng",
                    )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set | ast.SetComp):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


@register
class SetIterationRule(Rule):
    """Result construction must not iterate sets (hash-randomised order)."""

    id = "set-iteration"
    description = (
        "iteration order of a set (and list()/tuple() of one) is "
        "hash-randomised across processes, breaking processes==threads "
        "bit-identity when it feeds result construction; sort it "
        "(sorted(...)) or keep an ordered container"
    )

    #: ordering-sensitive wrappers whose first argument we also check.
    _ORDER_SENSITIVE_CALLS = ("list", "tuple", "enumerate")

    def _iterables(self, tree: ast.Module) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, ast.For | ast.AsyncFor):
                yield node.iter
            elif isinstance(node, ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp):
                for gen in node.generators:
                    yield gen.iter
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_SENSITIVE_CALLS
                and node.args
            ):
                yield node.args[0]

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        for iterable in self._iterables(sf.tree):
            if _is_set_expr(iterable):
                yield self.finding(
                    sf,
                    iterable,
                    "iterating a set in hash-randomised order; wrap in "
                    "sorted(...) or restructure around an ordered container",
                )
            elif _is_keys_call(iterable):
                yield self.finding(
                    sf,
                    iterable,
                    "iterating .keys() — iterate the mapping itself (its "
                    "insertion order is the contract), or sorted(...) if "
                    "the order must be value-stable",
                )
