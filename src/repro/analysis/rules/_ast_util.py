"""Small shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast

__all__ = [
    "attr_chain",
    "numpy_aliases",
    "dtype_name",
    "terminal_names",
]


def attr_chain(node: ast.AST) -> list[str] | None:
    """``np.random.default_rng`` -> ``["np", "random", "default_rng"]``.

    Returns None for anything that is not a plain dotted name chain
    (calls, subscripts, literals, ...).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def numpy_aliases(tree: ast.Module) -> set[str]:
    """Module-level names bound to the numpy module (``np``, ``numpy``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


#: bare names accepted as literal dtypes (``from numpy import int64``
#: style); any other bare name is a dynamic dtype the rule trusts.
_SCALAR_TYPE_NAMES = {
    "bool_", "int8", "int16", "int32", "int64", "intp",
    "uint8", "uint16", "uint32", "uint64", "uintp",
    "float16", "float32", "float64", "complex64", "complex128",
}


def dtype_name(node: ast.AST, np_names: set[str]) -> str | None:
    """The dtype a literal dtype expression denotes, or None if dynamic.

    Recognises ``np.int64`` attribute access, bare names imported from
    numpy (rare here), string dtype codes (``"uint8"``), and the
    little-endian struct codes the hot paths use (``"<i8"``).
    """
    chain = attr_chain(node)
    if chain is not None:
        if len(chain) == 2 and chain[0] in np_names:
            return chain[1]
        if len(chain) == 1 and chain[0] in _SCALAR_TYPE_NAMES:
            return chain[0]
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        codes = {"<i8": "int64", "<u1": "uint8", "|u1": "uint8"}
        return codes.get(node.value, node.value)
    return None


def terminal_names(node: ast.AST) -> set[str]:
    """Every dotted-name terminal mentioned in an expression.

    ``self._frozen.members[a:b]`` -> ``{"self", "members", ...}`` —
    used to ask "does this expression read a contracted array?".
    """
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Name):
            names.add(sub.id)
    return names
