"""Deadline rule: no unbounded pipe or socket waits in the serving layer.

The fault-tolerance contract (PR 8) is that every blocking wait on a
worker connection is bounded — a hung or killed worker must surface as
a :class:`~repro.exceptions.DeadlineExceededError` within the policy
deadline, never as a serving thread parked forever inside ``recv()``.
The runtime chaos tests exercise that for the schedules they script;
this rule makes the *pattern* load-bearing: inside ``service/``,

* every ``<receiver>.recv()`` call must be preceded (in the same
  function) by a bounded ``<receiver>.poll(<timeout>)`` guard on the
  textually identical receiver — the ``recv_within`` shape the
  transports use — or, for sockets, by a bounded
  ``<receiver>.settimeout(<seconds>)``;
* ``.poll(None)`` / ``.poll(timeout=None)`` is flagged outright, since
  an explicit ``None`` timeout is just ``recv()`` with extra steps, and
  ``.settimeout(None)`` is flagged for the same reason (it switches the
  socket back to blocking mode);
* the socket rendezvous calls ``.accept()`` and ``.connect()`` need the
  same bounded ``settimeout`` guard — an unbounded accept parks the
  listener thread, an unbounded connect parks a reconnect attempt on a
  black-holed peer.  (``socket.create_connection`` takes an explicit
  ``timeout=`` and is the preferred connect spelling.)

A no-argument ``poll()`` is non-blocking and therefore counts as a
guard.  Guards are matched per function scope (nested functions are
separate scopes), so a guard in one code path cannot launder a wait in
an unrelated one elsewhere in the file.  Queue waits
(``queue.Queue.get``) are out of scope — they take ``timeout=``
kwargs the runtime code already uses — as is everything outside
``service/``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import Finding, Rule, SourceFile, register

__all__ = ["DeadlineRequiredRule"]

#: attribute names treated as blocking reads (pipe or socket).
_RECV_NAMES = ("recv", "recv_bytes")

#: socket rendezvous calls that block until the peer shows up.
_RENDEZVOUS_NAMES = ("accept", "connect")


def _scope_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _poll_timeout(node: ast.Call) -> ast.AST | None:
    """The timeout expression of a ``poll`` call, or None for no-arg."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "timeout":
            return keyword.value
    return None


def _is_none_literal(node: ast.AST | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register
class DeadlineRequiredRule(Rule):
    """Every pipe/socket wait in service/ sits behind a bounded guard."""

    id = "deadline-required"
    description = (
        "serving-layer pipe and socket waits must be deadline-bounded: "
        "recv() only behind a bounded poll(timeout) or settimeout(s) on "
        "the same receiver, accept()/connect() only behind a bounded "
        "settimeout(s), and poll(None)/settimeout(None) are forbidden"
    )
    path_suffixes = ("service/",)

    def applies_to(self, sf: SourceFile) -> bool:
        return "/service/" in sf.posix_path or sf.posix_path.startswith("service/")

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(sf, node)

    def _check_function(self, sf: SourceFile, fn: ast.AST) -> Iterator[Finding]:
        # Receivers with a bounded poll() guard (pipes) and with a
        # bounded settimeout() guard (sockets); recv accepts either,
        # the rendezvous calls require the socket one.
        polled: set[str] = set()
        timed: set[str] = set()
        recv_sites: list[tuple[ast.Call, str]] = []
        rendezvous_sites: list[tuple[ast.Call, str]] = []
        for node in _scope_nodes(fn):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            receiver = ast.unparse(node.func.value)
            if node.func.attr == "poll":
                timeout = _poll_timeout(node)
                if _is_none_literal(timeout):
                    yield self.finding(
                        sf,
                        node,
                        f"{receiver}.poll(None) blocks without a deadline; "
                        "pass a bounded timeout",
                    )
                    continue
                polled.add(receiver)
            elif node.func.attr == "settimeout":
                timeout = node.args[0] if node.args else None
                if timeout is None or _is_none_literal(timeout):
                    yield self.finding(
                        sf,
                        node,
                        f"{receiver}.settimeout(None) puts the socket back "
                        "in unbounded blocking mode; pass a bounded timeout",
                    )
                    continue
                timed.add(receiver)
            elif node.func.attr in _RECV_NAMES:
                recv_sites.append((node, receiver))
            elif node.func.attr in _RENDEZVOUS_NAMES:
                rendezvous_sites.append((node, receiver))
        for node, receiver in recv_sites:
            if receiver not in polled and receiver not in timed:
                yield self.finding(
                    sf,
                    node,
                    f"{receiver}.{node.func.attr}() has no bounded "
                    f"{receiver}.poll(timeout) or {receiver}.settimeout(s) "
                    "guard in this function; a dead or hung peer would "
                    "block the serving thread forever",
                )
        for node, receiver in rendezvous_sites:
            if receiver not in timed:
                yield self.finding(
                    sf,
                    node,
                    f"{receiver}.{node.func.attr}() has no bounded "
                    f"{receiver}.settimeout(s) guard in this function; an "
                    "absent peer would block the serving thread forever",
                )
