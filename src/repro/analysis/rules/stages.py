"""Trace-stage rule: ``stage_timer`` uses the closed stage vocabulary.

Dashboards and the Prometheus exposition rely on the stage label being
one of :data:`repro.observability.tracing.STAGES`; a typo'd or ad-hoc
stage would silently create a new label series.  The vocabulary is
imported from the tracing module itself, so extending it there is the
one place to do it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import Finding, Rule, SourceFile, register
from repro.observability.tracing import STAGES


def _stage_argument(node: ast.Call) -> ast.AST | None:
    """The stage expression of a ``stage_timer(trace, stage)`` call."""
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "stage":
            return keyword.value
    return None


@register
class TraceStageRule(Rule):
    """``stage_timer(...)`` stages are literals from ``STAGES``."""

    id = "trace-stage"
    description = (
        "stage_timer(trace, stage) requires a string literal from the "
        "closed observability.tracing.STAGES vocabulary so metric "
        "labels stay a stable, enumerable set"
    )
    #: the vocabulary's defining module is the one place allowed to
    #: mention stages dynamically.
    exempt_suffixes = ("observability/tracing.py",)

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name != "stage_timer":
                continue
            stage = _stage_argument(node)
            if stage is None:
                continue  # malformed call; python itself will complain
            if not (isinstance(stage, ast.Constant) and isinstance(stage.value, str)):
                yield self.finding(
                    sf,
                    stage,
                    "stage must be a string literal (a computed stage "
                    "name defeats the closed-vocabulary guarantee)",
                )
            elif stage.value not in STAGES:
                yield self.finding(
                    sf,
                    stage,
                    f"unknown trace stage {stage.value!r}; the closed "
                    f"vocabulary is {', '.join(STAGES)} "
                    f"(extend observability.tracing.STAGES first)",
                )
