"""Lock-discipline rule: a lexical race detector for shared attributes.

Within one class, any instance attribute mutated under a
``with self.<lock>:`` block is declared shared state; mutating it
anywhere else in the class without holding a lock is flagged.  The rule
is purely lexical — it cannot see callers — so two idioms mark a method
as lock-exempt:

* a ``_locked`` name suffix (the repo convention for helpers whose
  contract says "caller holds the lock"), and
* assigning any lock attribute in the method body (``__init__`` and
  friends: the object is not shared while its locks are being created).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.core import Finding, Rule, SourceFile, register
from repro.analysis.rules._ast_util import attr_chain

#: method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
}

#: constructor names whose result marks an attribute as a lock.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


@dataclass
class _Mutation:
    attr: str
    node: ast.AST
    locked: bool


def _own_attr(node: ast.AST, inst: str) -> str | None:
    """``self.x`` / ``self.x[i]`` / ``self.x[i].y``? -> ``"x"`` (one level).

    Subscripts are stripped so ``self._shard_gids[s] = ...`` counts as a
    mutation of ``_shard_gids``; deeper attribute chains (``self.a.b``)
    are out of scope — the rule tracks the instance's own slots.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == inst
    ):
        return node.attr
    return None


def _contains_lock_factory(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            chain = attr_chain(sub.func)
            if chain and chain[-1] in _LOCK_FACTORIES:
                return True
    return False


class _MethodScan:
    """All instance-attribute mutations of one method, lock-annotated."""

    def __init__(self, method: ast.FunctionDef, inst: str, lock_attrs: set[str]) -> None:
        self.method = method
        self.inst = inst
        self.lock_attrs = lock_attrs
        self.mutations: list[_Mutation] = []
        self.assigns_lock = False
        for stmt in method.body:
            self._walk(stmt, locked=False)

    def _is_lock_item(self, expr: ast.AST) -> bool:
        return _own_attr(expr, self.inst) in self.lock_attrs

    def _record(self, attr: str | None, node: ast.AST, locked: bool) -> None:
        if attr is None:
            return
        if attr in self.lock_attrs:
            self.assigns_lock = True
            return
        self.mutations.append(_Mutation(attr=attr, node=node, locked=locked))

    def _walk(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            inner = locked or any(
                self._is_lock_item(item.context_expr) for item in node.items
            )
            for item in node.items:
                self._walk(item.context_expr, locked)
            for stmt in node.body:
                self._walk(stmt, inner)
            return
        if isinstance(node, ast.Assign | ast.AugAssign | ast.AnnAssign):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for leaf in self._target_leaves(target):
                    self._record(_own_attr(leaf, self.inst), node, locked)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            self._record(_own_attr(node.func.value, self.inst), node, locked)
        for child in ast.iter_child_nodes(node):
            self._walk(child, locked)

    @staticmethod
    def _target_leaves(target: ast.AST) -> Iterator[ast.AST]:
        if isinstance(target, ast.Tuple | ast.List):
            for element in target.elts:
                yield from _MethodScan._target_leaves(element)
        elif isinstance(target, ast.Starred):
            yield target.value
        else:
            yield target


@register
class LockDisciplineRule(Rule):
    """Attributes mutated under a class's lock must always be locked."""

    id = "lock-discipline"
    description = (
        "an attribute mutated under `with self.<lock>:` anywhere in a "
        "class is shared state; every other mutation of it must hold a "
        "lock too (or live in a `*_locked` helper whose caller does)"
    )

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(sf, node)

    def _check_class(self, sf: SourceFile, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef | ast.AsyncFunctionDef)
        ]
        insts = {m.name: self._receiver(m) for m in methods}
        lock_attrs = {
            attr
            for method in methods
            if insts[method.name]
            for stmt in ast.walk(method)
            if isinstance(stmt, ast.Assign) and _contains_lock_factory(stmt.value)
            for target in stmt.targets
            if (attr := _own_attr(target, insts[method.name])) is not None
        }
        if not lock_attrs:
            return
        scans = [
            _MethodScan(method, insts[method.name], lock_attrs)
            for method in methods
            if insts[method.name]
        ]
        guarded: dict[str, str] = {}
        for scan in scans:
            for mutation in scan.mutations:
                if mutation.locked:
                    guarded.setdefault(mutation.attr, scan.method.name)
        if not guarded:
            return
        for scan in scans:
            if (
                scan.method.name == "__init__"
                or scan.method.name.endswith("_locked")
                or scan.assigns_lock
            ):
                continue
            for mutation in scan.mutations:
                if not mutation.locked and mutation.attr in guarded:
                    yield self.finding(
                        sf,
                        mutation.node,
                        f"{cls.name}.{mutation.attr} is mutated under a lock "
                        f"in {guarded[mutation.attr]}() but mutated here "
                        f"without one; take the lock or rename the helper "
                        f"to *_locked if the caller holds it",
                    )

    @staticmethod
    def _receiver(method: ast.FunctionDef) -> str | None:
        """The instance parameter name, or None for static/classmethods."""
        for decorator in method.decorator_list:
            chain = attr_chain(decorator)
            if chain and chain[-1] in ("staticmethod", "classmethod"):
                return None
        if not method.args.args:
            return None
        return method.args.args[0].arg
