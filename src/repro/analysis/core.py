"""The ``reprolint`` framework: findings, rule registry, suppression, runner.

A rule is a singleton object registered with :func:`register`.  Per-file
rules implement :meth:`Rule.check_file`; cross-file rules subclass
:class:`ProjectRule` and implement :meth:`ProjectRule.check_project`
over every parsed file at once (the spec plumb-through check needs to
see the spec *and* its consumers).

Files are parsed once into :class:`SourceFile` values — AST, raw lines,
and the per-line suppression table (``# reprolint: disable=<id>``) —
and shared across rules.  :func:`run_check` applies every enabled rule,
drops suppressed findings, and returns the rest sorted by location.
"""

from __future__ import annotations

import ast
import os
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

__all__ = [
    "Finding",
    "Rule",
    "ProjectRule",
    "SourceFile",
    "register",
    "all_rules",
    "run_check",
    "iter_python_files",
]

#: ``# reprolint: disable=rule-a,rule-b`` anywhere in a line suppresses
#: those rules' findings on that line.
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class SourceFile:
    """One parsed python file: AST, lines, and suppression table."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        #: forward-slash path for rule scoping (``index/frozen.py``).
        self.posix_path = path.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.suppressed: dict[int, set[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                self.suppressed[lineno] = {part for part in ids if part}

    @classmethod
    def load(cls, path: str) -> SourceFile:
        with open(path, encoding="utf-8") as fh:
            return cls(path, fh.read())

    def matches(self, suffixes: Sequence[str]) -> bool:
        """Whether this file's path ends with any of the given suffixes."""
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)

    def is_suppressed(self, finding: Finding) -> bool:
        ids = self.suppressed.get(finding.line)
        return ids is not None and finding.rule in ids

    def __repr__(self) -> str:
        return f"SourceFile({self.posix_path!r})"


class Rule:
    """A per-file rule.  Subclass, set ``id``/``description``, register."""

    id: str = ""
    description: str = ""
    #: path suffixes this rule is scoped to; empty = every file.
    path_suffixes: tuple[str, ...] = ()
    #: path suffixes never checked (sanctioned wrappers, fixtures).
    exempt_suffixes: tuple[str, ...] = ()

    def applies_to(self, sf: SourceFile) -> bool:
        if self.exempt_suffixes and sf.matches(self.exempt_suffixes):
            return False
        return not self.path_suffixes or sf.matches(self.path_suffixes)

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        return iter(())

    def finding(self, sf: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=sf.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that inspects the whole file set at once."""

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        return iter(())


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """The registry (importing the rule modules populates it)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                out.extend(
                    os.path.join(dirpath, name)
                    for name in filenames
                    if name.endswith(".py")
                )
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(dict.fromkeys(out))


def run_check(
    paths: Iterable[str],
    enabled: Iterable[str] | None = None,
    disabled: Iterable[str] | None = None,
) -> list[Finding]:
    """Run every (enabled) registered rule over ``paths``.

    ``enabled``/``disabled`` filter the registry by rule id — the test
    suite uses them to prove each fixture finding comes from exactly the
    rule under test.  Suppressed findings are dropped here, so rules
    never need to know about the comment syntax.
    """
    rules = all_rules()
    requested = set(enabled or ()) | set(disabled or ())
    unknown = sorted(requested - set(rules))
    if unknown:
        raise ValueError(f"unknown rule ids: {unknown}")
    chosen = set(rules) if enabled is None else set(enabled)
    chosen -= set(disabled or ())
    files = [SourceFile.load(path) for path in iter_python_files(paths)]
    by_path = {sf.path: sf for sf in files}
    findings: list[Finding] = []
    for rule_id in sorted(chosen):
        rule = rules[rule_id]
        scoped = [sf for sf in files if rule.applies_to(sf)]
        for sf in scoped:
            findings.extend(rule.check_file(sf))
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(scoped))
    return sorted(
        f for f in findings
        if f.path not in by_path or not by_path[f.path].is_suppressed(f)
    )
