"""Result and statistics types returned by the search strategies.

Every searcher returns a :class:`QueryResult`; hybrid search fills in
the decision diagnostics (:class:`QueryStats`) that the Figure 3 and
Table 1 experiments aggregate — which strategy ran, the exact collision
count, and the estimated vs. exact candidate-set size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Strategy", "QueryStats", "QueryResult"]


class Strategy(str, enum.Enum):
    """Which search strategy answered a query."""

    LSH = "lsh"
    LINEAR = "linear"
    HYBRID = "hybrid"  # used only as a label for the dispatching searcher


@dataclass
class QueryStats:
    """Decision diagnostics for one query.

    Attributes
    ----------
    num_collisions:
        Exact total occupancy of the query's buckets (Step S2 driver).
    estimated_candidates:
        HLL estimate of ``candSize``; ``nan`` when not computed (pure
        linear or pure LSH runs).
    exact_candidates:
        True distinct candidate count; filled only when LSH-based
        search actually ran (it materialises the candidate set anyway)
        or when explicitly requested by an experiment.
    estimated_lsh_cost / linear_cost:
        The two sides of the Algorithm 2 comparison, in cost-model
        units.
    strategy:
        The strategy that produced the answer.
    elapsed_seconds:
        Wall-clock time of the query (set by the evaluation runner).
    probes_used:
        Probe rings examined per table beyond the home bucket; -1 when
        the path does not track probing (plain layouts, pure linear).
        Under an adaptive probe budget this is the per-query stopping
        ring; fixed-budget paths report the configured ``num_probes``.
    exact:
        True when the answer is exact by construction (linear scan or
        exact top-k selection) — the certification bit the adaptive
        top-k path keys its quality floor on.
    """

    num_collisions: int = 0
    estimated_candidates: float = float("nan")
    exact_candidates: int = -1
    estimated_lsh_cost: float = float("nan")
    linear_cost: float = float("nan")
    strategy: Strategy = Strategy.LSH
    elapsed_seconds: float = 0.0
    probes_used: int = -1
    exact: bool = False


@dataclass
class QueryResult:
    """Answer to one rNNR query.

    Attributes
    ----------
    ids:
        Indices of the reported points, sorted ascending.
    distances:
        Distances of the reported points, aligned with ``ids``.
    radius:
        The query radius ``r``.
    stats:
        Decision diagnostics (see :class:`QueryStats`).
    degraded:
        True when the answer is partial: one or more shards stayed
        unavailable past the serving layer's retry budget and the
        caller opted into partial results (``allow_partial``).
    missing_shards:
        The shard ids whose contribution is absent from a degraded
        answer (empty for complete answers).
    """

    ids: np.ndarray
    distances: np.ndarray
    radius: float
    stats: QueryStats = field(default_factory=QueryStats)
    degraded: bool = False
    missing_shards: tuple[int, ...] = ()

    @property
    def output_size(self) -> int:
        """Number of reported near neighbors."""
        return int(self.ids.shape[0])

    def recall_against(self, true_ids: np.ndarray) -> float:
        """Fraction of ``true_ids`` present in this result.

        An empty ground truth yields recall 1.0 by convention (there
        was nothing to miss).
        """
        true_ids = np.asarray(true_ids)
        if true_ids.size == 0:
            return 1.0
        return float(np.isin(true_ids, self.ids).mean())

    def __repr__(self) -> str:
        return (
            f"QueryResult(r={self.radius}, found={self.output_size}, "
            f"strategy={self.stats.strategy.value})"
        )
