"""The paper's primary contribution: cost-model-driven hybrid search.

Layered as:

* :class:`LinearScan` — the brute-force baseline (Equation 2 cost);
* :class:`LSHSearch` — classic LSH-based rNNR reporting (Equation 1
  cost);
* :class:`CostModel` — Equations (1) and (2) with the ``alpha``
  (duplicate removal) and ``beta`` (distance computation) constants;
* :func:`calibrate_cost_model` — the Section 4.2 procedure measuring
  ``alpha`` and ``beta`` on a sample (paper: 100 queries x 10,000
  points);
* :class:`HybridSearcher` — Algorithm 2: estimate ``LSHCost`` from the
  exact ``#collisions`` and the HLL-estimated ``candSize``, compare
  with ``LinearCost``, and dispatch to the cheaper strategy;
* :class:`HybridLSH` — the one-call public facade that picks the LSH
  family for a metric, applies the paper's parameter rules, builds the
  sketched index, calibrates the cost model, and answers queries.
"""

from repro.core.calibration import CalibrationReport, calibrate_cost_model
from repro.core.cost_model import CostModel
from repro.core.hybrid import HybridLSH, HybridSearcher
from repro.core.linear_scan import LinearScan
from repro.core.lsh_search import LSHSearch
from repro.core.presets import PaperParameters, paper_parameters
from repro.core.results import QueryResult, QueryStats, Strategy

__all__ = [
    "LinearScan",
    "LSHSearch",
    "HybridSearcher",
    "HybridLSH",
    "CostModel",
    "CalibrationReport",
    "calibrate_cost_model",
    "QueryResult",
    "QueryStats",
    "Strategy",
    "PaperParameters",
    "paper_parameters",
]
