"""Query-adaptive execution policy and online cost-model recalibration.

The hybrid searcher of Algorithm 2 already consults per-bucket HLL
estimates and a :class:`~repro.core.cost_model.CostModel` per query, but
three of its inputs are frozen at build time: the multi-probe fan-out
(``num_probes``), the radius a top-k query would need to ride the LSH
path, and the cost model's ``alpha``/``beta`` coefficients.  This module
holds the one configuration value that unfreezes all three:

* :class:`AdaptivePolicy` — declarative knobs for per-query probe
  budgets (stop probing once the merged HLL estimate of the collected
  candidates reaches ``target_candidates``), radius-from-k estimation
  (ride the hybrid path for top-k when the calibration distance profile
  can certify at least ``1 - delta`` recall against ``quality_floor``),
  and online recalibration.  The policy is carried by
  :class:`~repro.api.spec.IndexSpec` (per index) and overridable per
  request through :class:`~repro.api.spec.QuerySpec`.

* :class:`CostModelTuner` — EWMA-updated ``alpha``/``beta`` from
  observed per-stage timings, reusing the ``StageTrace`` stage
  vocabulary (``linear`` seconds per distance -> ``beta``,
  ``candidates`` seconds per examined candidate -> ``alpha``), so the
  dispatch decision tracks drift as inserts and overflow re-freezes
  reshape bucket statistics.

Recalibration is off by default (``recalibrate=False``): with a fixed
model the adaptive paths stay property-testable bit-identically against
the fixed-budget reference, which is this repo's house quality gate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any

from repro.core.cost_model import CostModel
from repro.exceptions import ConfigurationError

__all__ = ["AdaptivePolicy", "CostModelTuner"]

#: StageTrace stages the tuner maps onto cost-model coefficients.
_BETA_STAGE = "linear"
_ALPHA_STAGE = "candidates"


@dataclass(frozen=True)
class AdaptivePolicy:
    """Immutable, validated adaptive-execution configuration.

    Attributes
    ----------
    enabled:
        Master switch; a disabled policy behaves exactly like having no
        policy at all (fixed probe budgets, exact top-k fallback).
    target_candidates:
        Per-query probe budget: keep probing rings beyond the home
        bucket only while the merged HLL estimate of the candidates
        collected so far stays below this count.  ``None`` keeps the
        full fixed ``num_probes`` fan-out (bit-identical answers).
    quality_floor:
        Minimum certified recall for an adaptive (LSH-path) top-k
        answer.  The hybrid path carries the paper's ``1 - delta``
        guarantee at the tuned radius, so a floor above ``1 - delta``
        (the default 1.0) restricts certification to exactly-answered
        rows — adaptive top-k is then provably bit-identical to the
        exact reference.
    k_safety:
        Oversampling factor for radius-from-k estimation: the estimated
        radius targets the distance profile's ``k_safety * k / n``
        quantile, so the first radius pass usually returns >= k hits.
    radius_growth:
        Multiplier applied to the estimated radius when a pass returns
        fewer than ``k`` hits.
    max_escalations:
        Radius-growth rounds before falling back to the exact top-k
        path.
    min_probes:
        Probe rings always examined per table regardless of the
        estimate (ring 0 — the home buckets — is always probed).
    recalibrate:
        Feed observed per-stage timings into a :class:`CostModelTuner`
        and dispatch future batches with the recalibrated model.
    ewma_weight:
        Smoothing weight of the tuner's EWMA updates (0 < w <= 1).
    """

    enabled: bool = True
    target_candidates: int | None = None
    quality_floor: float = 1.0
    k_safety: float = 2.0
    radius_growth: float = 2.0
    max_escalations: int = 3
    min_probes: int = 0
    recalibrate: bool = False
    ewma_weight: float = 0.2

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "enabled", bool(self.enabled))
        if self.target_candidates is not None:
            if (
                isinstance(self.target_candidates, bool)
                or not isinstance(self.target_candidates, int)
                or self.target_candidates <= 0
            ):
                raise ConfigurationError(
                    f"target_candidates must be a positive int or None, "
                    f"got {self.target_candidates!r}"
                )
        if not 0.0 <= float(self.quality_floor) <= 1.0:
            raise ConfigurationError(
                f"quality_floor must be in [0, 1], got {self.quality_floor!r}"
            )
        set_(self, "quality_floor", float(self.quality_floor))
        if not float(self.k_safety) >= 1.0:
            raise ConfigurationError(
                f"k_safety must be >= 1, got {self.k_safety!r}"
            )
        set_(self, "k_safety", float(self.k_safety))
        if not float(self.radius_growth) > 1.0:
            raise ConfigurationError(
                f"radius_growth must be > 1, got {self.radius_growth!r}"
            )
        set_(self, "radius_growth", float(self.radius_growth))
        if (
            isinstance(self.max_escalations, bool)
            or not isinstance(self.max_escalations, int)
            or self.max_escalations < 0
        ):
            raise ConfigurationError(
                f"max_escalations must be a non-negative int, "
                f"got {self.max_escalations!r}"
            )
        if (
            isinstance(self.min_probes, bool)
            or not isinstance(self.min_probes, int)
            or self.min_probes < 0
        ):
            raise ConfigurationError(
                f"min_probes must be a non-negative int, got {self.min_probes!r}"
            )
        set_(self, "recalibrate", bool(self.recalibrate))
        if not 0.0 < float(self.ewma_weight) <= 1.0:
            raise ConfigurationError(
                f"ewma_weight must be in (0, 1], got {self.ewma_weight!r}"
            )
        set_(self, "ewma_weight", float(self.ewma_weight))

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable document; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> AdaptivePolicy:
        """Validate and build a policy from a (parsed) JSON document."""
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"adaptive policy document must be an object, got {doc!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(f"unknown adaptive-policy keys: {unknown}")
        return cls(**doc)

    def with_overrides(self, **overrides: Any) -> AdaptivePolicy:
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **overrides)

    def resolve(
        self,
        adaptive: bool | None = None,
        target_candidates: int | None = None,
        quality_floor: float | None = None,
    ) -> AdaptivePolicy:
        """Fold per-request :class:`~repro.api.spec.QuerySpec` overrides in.

        ``None`` means "follow the index policy" for every field; the
        returned value is what one request actually executes under.
        """
        overrides: dict[str, Any] = {}
        if adaptive is not None:
            overrides["enabled"] = bool(adaptive)
        if target_candidates is not None:
            overrides["target_candidates"] = target_candidates
        if quality_floor is not None:
            overrides["quality_floor"] = quality_floor
        return self.with_overrides(**overrides) if overrides else self

    @property
    def bounds_probes(self) -> bool:
        """True when the policy actually trims probe rings."""
        return self.enabled and self.target_candidates is not None


class CostModelTuner:
    """Online EWMA recalibration of the Equation (1)/(2) coefficients.

    Observes ``(stage, ops, seconds)`` samples in the ``StageTrace``
    vocabulary — ``"linear"`` seconds per distance computation update
    ``beta``, ``"candidates"`` seconds per examined candidate update
    ``alpha`` — and maintains a :class:`~repro.core.cost_model.CostModel`
    whose coefficients track the exponentially weighted averages.  The
    number of completed coefficient updates is exposed as
    :attr:`recalibrations` (surfaced in serving telemetry).

    The tuner is deliberately wall-clock free: callers hand it measured
    seconds (from a real trace in production, synthetic values in the
    deterministic property tests).
    """

    def __init__(self, model: CostModel, ewma_weight: float = 0.2) -> None:
        if not 0.0 < float(ewma_weight) <= 1.0:
            raise ConfigurationError(
                f"ewma_weight must be in (0, 1], got {ewma_weight!r}"
            )
        self._alpha = float(model.alpha)
        self._beta = float(model.beta)
        self.ewma_weight = float(ewma_weight)
        self.recalibrations = 0
        self._model = model

    @property
    def model(self) -> CostModel:
        """The current recalibrated cost model."""
        return self._model

    def observe(self, stage: str, ops: int, seconds: float) -> None:
        """Fold one per-stage timing sample into the coefficients.

        ``stage`` follows the ``StageTrace`` vocabulary; stages other
        than ``"linear"``/``"candidates"`` are ignored, as are empty or
        non-positive samples (a zero-op stage carries no rate).
        """
        if ops <= 0 or not seconds > 0.0:
            return
        sample = float(seconds) / float(ops)
        w = self.ewma_weight
        if stage == _BETA_STAGE:
            self._beta = (1.0 - w) * self._beta + w * sample
        elif stage == _ALPHA_STAGE:
            self._alpha = (1.0 - w) * self._alpha + w * sample
        else:
            return
        self._model = CostModel(alpha=self._alpha, beta=self._beta)
        self.recalibrations += 1

    def observe_batch(
        self, linear_ops: int, linear_seconds: float,
        candidate_ops: int, candidate_seconds: float,
    ) -> None:
        """Convenience wrapper: one batch's linear + candidates samples."""
        self.observe(_BETA_STAGE, linear_ops, linear_seconds)
        self.observe(_ALPHA_STAGE, candidate_ops, candidate_seconds)

    def __repr__(self) -> str:
        return (
            f"CostModelTuner(alpha={self._alpha:.3g}, beta={self._beta:.3g}, "
            f"recalibrations={self.recalibrations})"
        )
