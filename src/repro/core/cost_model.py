"""The computational cost model — Equations (1) and (2) of the paper.

For a query against an index of ``n`` points:

    ``LSHCost    = alpha * #collisions + beta * candSize``      (1)
    ``LinearCost = beta * n``                                   (2)

``alpha`` is the average cost of removing one duplicate in Step S2 and
``beta`` the cost of one distance computation in Step S3.  Only the
*ratio* ``beta / alpha`` matters for the decision (both sides can be
divided by ``alpha``), which is why the paper reports the ratios 10,
10, 6, 1 for Webspam, CoverType, Corel and MNIST rather than absolute
constants.  :class:`CostModel` stores both constants so the costs keep
a physical unit (seconds) when produced by calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import Strategy
from repro.exceptions import ConfigurationError

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Equations (1)/(2) with fixed constants.

    Attributes
    ----------
    alpha:
        Cost of removing one duplicate (Step S2), > 0.
    beta:
        Cost of one distance computation (Step S3), > 0.

    Examples
    --------
    >>> model = CostModel(alpha=1.0, beta=10.0)
    >>> model.lsh_cost(num_collisions=100, cand_size=30.0)
    400.0
    >>> model.linear_cost(n=50)
    500.0
    >>> model.choose(num_collisions=100, cand_size=30.0, n=50)
    <Strategy.LSH: 'lsh'>
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if not self.alpha > 0:
            raise ConfigurationError(f"alpha must be > 0, got {self.alpha}")
        if not self.beta > 0:
            raise ConfigurationError(f"beta must be > 0, got {self.beta}")

    @classmethod
    def from_ratio(cls, beta_over_alpha: float, alpha: float = 1.0) -> CostModel:
        """Build a model from the paper's ``beta / alpha`` ratio.

        The paper uses ratios 10 (Webspam), 10 (CoverType), 6 (Corel)
        and 1 (MNIST); with ``alpha = 1`` costs are then expressed in
        "duplicate-removal operations".
        """
        if not beta_over_alpha > 0:
            raise ConfigurationError(
                f"beta_over_alpha must be > 0, got {beta_over_alpha}"
            )
        return cls(alpha=alpha, beta=alpha * beta_over_alpha)

    @property
    def beta_over_alpha(self) -> float:
        """The decision-relevant ratio."""
        return self.beta / self.alpha

    def lsh_cost(self, num_collisions: int, cand_size: float) -> float:
        """Equation (1): ``alpha * #collisions + beta * candSize``."""
        if num_collisions < 0:
            raise ConfigurationError(f"num_collisions must be >= 0, got {num_collisions}")
        if cand_size < 0:
            raise ConfigurationError(f"cand_size must be >= 0, got {cand_size}")
        return self.alpha * num_collisions + self.beta * cand_size

    def linear_cost(self, n: int) -> float:
        """Equation (2): ``beta * n``.

        Memoised on the last ``n`` seen: the per-query dispatch
        evaluates this for the same index size until the next insert,
        so the hot path does no redundant arithmetic or validation.
        """
        cached = getattr(self, "_linear_cache", None)
        if cached is not None and cached[0] == n:
            return cached[1]
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        value = self.beta * n
        object.__setattr__(self, "_linear_cache", (n, value))
        return value

    def choose(self, num_collisions: int, cand_size: float, n: int) -> Strategy:
        """Algorithm 2, line 4: LSH iff ``LSHCost < LinearCost``."""
        lsh = self.lsh_cost(num_collisions, cand_size)
        linear = self.linear_cost(n)
        return Strategy.LSH if lsh < linear else Strategy.LINEAR

    def __repr__(self) -> str:
        return (
            f"CostModel(alpha={self.alpha:.3g}, beta={self.beta:.3g}, "
            f"beta/alpha={self.beta_over_alpha:.3g})"
        )
