"""Linear search — the exact baseline of Equation (2).

A linear scan computes the distance from the query to every one of the
``n`` points (cost ``beta * n``) and reports those within ``r``.  It is
exact (recall 1.0 by construction) and, as the paper's Figure 1 argues,
it *beats* LSH-based search on "hard" queries in dense regions — the
observation that motivates hybrid search.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import QueryResult, QueryStats, Strategy
from repro.distances import Metric, get_metric
from repro.utils.validation import check_matrix, check_positive, check_vector

__all__ = ["LinearScan", "exact_topk_results"]


def exact_topk_results(
    all_ids: np.ndarray, distance_blocks: list[np.ndarray], k: int, n: int
) -> list[QueryResult]:
    """Exact top-k selection with deterministic ``(distance, id)`` tie-breaking.

    ``distance_blocks`` holds one ``(q, n_b)`` distance block per data
    partition (a single block for an unpartitioned scan) and ``all_ids``
    the concatenated global ids those columns refer to.  Shared by the
    sharded index and the single-index facade so both layouts select —
    and tie-break — identically; results are ordered by ascending
    distance (ties by id) and ``result.radius`` reports the k-th distance.
    """
    num_queries = distance_blocks[0].shape[0]
    results = []
    for qi in range(num_queries):
        distances = np.concatenate([block[qi] for block in distance_blocks])
        order = np.lexsort((all_ids, distances))[:k]
        ids = all_ids[order]
        dists = distances[order]
        stats = QueryStats(strategy=Strategy.LINEAR, linear_cost=float(n), exact=True)
        results.append(
            QueryResult(ids=ids, distances=dists, radius=float(dists[-1]), stats=stats)
        )
    return results


class LinearScan:
    """Brute-force rNNR over a fixed point set.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    metric:
        Metric name or :class:`~repro.distances.base.Metric`.

    Examples
    --------
    >>> import numpy as np
    >>> scan = LinearScan(np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]]), "l2")
    >>> scan.query(np.array([0.0, 0.0]), radius=5.0).ids.tolist()
    [0, 1]
    """

    def __init__(self, points: np.ndarray, metric: str | Metric) -> None:
        self.metric = get_metric(metric)
        self.points = check_matrix(points, name="points")
        self.n = int(self.points.shape[0])
        self.dim = int(self.points.shape[1])
        # Lazily computed metric state (e.g. squared norms for L2),
        # shared by every batch call; the scan object is rebuilt on
        # insert, so the state can never go stale.
        self._prepared_state = None
        self._prepared_ready = False

    def _prepared(self):
        if not self._prepared_ready:
            self._prepared_state = self.metric.prepare_points(self.points)
            self._prepared_ready = True
        return self._prepared_state

    def query(self, query: np.ndarray, radius: float) -> QueryResult:
        """Report every point within ``radius`` of ``query`` (exact)."""
        query = check_vector(query, dim=self.dim, name="query")
        radius = check_positive(radius, "radius")
        distances = self.metric.distances_to(self.points, query)
        mask = distances <= radius
        ids = np.flatnonzero(mask)
        stats = QueryStats(
            strategy=Strategy.LINEAR, linear_cost=float(self.n), exact=True
        )
        return QueryResult(ids=ids, distances=distances[mask], radius=radius, stats=stats)

    def query_batch(self, queries: np.ndarray, radius: float) -> list[QueryResult]:
        """Answer a query set with one distance-matrix pass.

        Computes the full ``(q, n)`` distance matrix with one batch
        kernel call per row — bit-identical to looping :meth:`query`
        (the prepared kernel reuses the query-independent terms but
        reproduces the plain kernel's floats exactly) — and thresholds
        each row.
        """
        queries = check_matrix(queries, dim=self.dim, name="queries")
        radius = check_positive(radius, "radius")
        state = self._prepared()
        distance_matrix = np.empty((queries.shape[0], self.n), dtype=np.float64)
        for i, q in enumerate(queries):
            distance_matrix[i] = self.metric.distances_to_prepared(
                self.points, q, state
            )
        results = []
        for row in distance_matrix:
            mask = row <= radius
            stats = QueryStats(
                strategy=Strategy.LINEAR, linear_cost=float(self.n), exact=True
            )
            results.append(
                QueryResult(
                    ids=np.flatnonzero(mask),
                    distances=row[mask],
                    radius=radius,
                    stats=stats,
                )
            )
        return results

    def query_ids(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Just the neighbor ids (used as ground truth by the evaluator)."""
        return self.query(query, radius).ids

    def __repr__(self) -> str:
        return f"LinearScan(n={self.n}, dim={self.dim}, metric={self.metric.name})"
