"""Classic LSH-based rNNR search — the Equation (1) strategy.

Runs the three steps of the paper's cost model:

* **S1** hash the query into its bucket in each of the ``L`` tables;
* **S2** union the buckets, removing duplicates (we use the paper's
  n-bit bitvector technique, cost ``alpha * #collisions``);
* **S3** compute the distance to every distinct candidate and report
  those within ``r`` (cost ``beta * candSize``).

Recall is probabilistic: a true ``r``-near neighbor is reported with
probability at least ``1 - delta`` when ``k`` was chosen by the
paper's parameter rule.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import QueryResult, QueryStats, Strategy
from repro.index.lsh_index import LSHIndex, QueryLookup
from repro.utils.validation import check_positive, check_vector

__all__ = ["LSHSearch"]


class LSHSearch:
    """Classic multi-table LSH reporting over a built index.

    Parameters
    ----------
    index:
        A built :class:`~repro.index.lsh_index.LSHIndex` (sketches are
        not required; this searcher never touches them).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.hashing import SimHashLSH
    >>> from repro.index import LSHIndex
    >>> rng = np.random.default_rng(0)
    >>> points = rng.normal(size=(500, 16))
    >>> index = LSHIndex(SimHashLSH(16, seed=1), k=2, num_tables=20).build(points)
    >>> searcher = LSHSearch(index)
    >>> result = searcher.query(points[0], radius=0.05)
    >>> 0 in result.ids  # the point itself is at distance 0
    True
    """

    def __init__(self, index: LSHIndex) -> None:
        self.index = index
        # Metric state (e.g. squared norms for L2) over the full point
        # matrix, gathered per candidate set in Step S3; refreshed when
        # insert() replaces the points array.
        self._prepared_points: np.ndarray | None = None
        self._prepared_state = None
        # Last candidate gather, keyed by array identity: batched
        # serving hands queries with identical bucket sets the *same*
        # candidates object, and the (points, norms) gather is
        # query-independent, so it is reused verbatim.
        self._gather_key: np.ndarray | None = None
        self._gather_value = None

    def _prepared(self):
        points = self.index.points
        if self._prepared_points is not points:
            self._prepared_state = self.index.family.metric.prepare_points(points)
            self._prepared_points = points
        return self._prepared_state

    def query(self, query: np.ndarray, radius: float) -> QueryResult:
        """Report near neighbors via bucket lookup + candidate verification."""
        query = check_vector(query, dim=self.index.dim, name="query")
        radius = check_positive(radius, "radius")
        lookup = self.index.lookup(query)
        return self.query_from_lookup(query, radius, lookup)

    def query_batch(self, queries: np.ndarray, radius: float) -> list[QueryResult]:
        """Answer a query set; Step S1 is one fused hashing pass.

        Identical results to ``[self.query(q, radius) for q in queries]``.
        """
        radius = check_positive(radius, "radius")
        queries = np.asarray(queries)
        lookups = self.index.lookup_batch(queries)
        return [
            self.query_from_lookup(query, radius, lookup)
            for query, lookup in zip(queries, lookups)
        ]

    def query_from_lookup(
        self,
        query: np.ndarray,
        radius: float,
        lookup: QueryLookup,
        dedup: str | None = None,
        candidates: np.ndarray | None = None,
    ) -> QueryResult:
        """Steps S2+S3 given an existing lookup (hybrid search reuses S1).

        ``dedup`` is forwarded to
        :meth:`~repro.index.lsh_index.LSHIndex.candidate_ids`; both
        implementations yield the identical candidate array, so the
        answer never depends on it.  A precomputed ``candidates`` array
        (from a batched Step-S2 pass) skips the per-query dedup.
        """
        if candidates is None:
            candidates = self.index.candidate_ids(lookup, dedup=dedup)
        metric = self.index.family.metric
        if candidates.size:
            if candidates is self._gather_key:
                gathered, state_sub = self._gather_value
            else:
                state = self._prepared()
                gathered = self.index.points[candidates]
                state_sub = None if state is None else state[candidates]
                self._gather_key = candidates
                self._gather_value = (gathered, state_sub)
            distances = metric.distances_to_prepared(gathered, query, state_sub)
            within = distances <= radius
            ids = candidates[within]
            dists = distances[within]
        else:
            ids = np.empty(0, dtype=np.int64)
            dists = np.empty(0, dtype=np.float64)
        stats = QueryStats(
            strategy=Strategy.LSH,
            num_collisions=lookup.num_collisions,
            exact_candidates=int(candidates.size),
        )
        return QueryResult(ids=ids, distances=dists, radius=radius, stats=stats)

    def __repr__(self) -> str:
        return f"LSHSearch(index={self.index!r})"
